"""Table 1: promising-arguments selector performance.

Paper: PMM F1 84.2 / P 91.2 / R 81.2 / Jaccard 76.1 versus
Rand.8 ≈ 30.3 / 36.6 / 37.0 / 19.9.  The shape to reproduce: PMM beats
the random-K baseline by a large factor on every metric (paper ratios:
2.7x F1, 3.8x Jaccard).
"""

import numpy as np

from benchmarks.conftest import write_metrics, write_result
from repro.fuzzer import RandomLocalizer
from repro.graphs import GraphEncoder
from repro.pmm import Trainer, TrainConfig, evaluate_selector
from repro.rng import make_rng
from repro.snowplow import format_table1


def test_bench_table1_selector(benchmark, kernel_68, trained_68):
    dataset = trained_68.dataset
    holdout = dataset.evaluation[:300]
    avg_label = float(np.mean([len(e.labels) for e in dataset.train]))
    k = max(1, int(round(avg_label)))

    def evaluate():
        trainer = Trainer(
            trained_68.model, dataset, kernel_68, trained_68.encoder,
            TrainConfig(epochs=0),
        )
        pmm_metrics = trainer.evaluate(holdout)
        localizer = RandomLocalizer(k)
        rng = make_rng(9)
        predictions, truths = [], []
        for example in holdout:
            program = dataset.programs[example.base_index]
            predictions.append(
                set(localizer.localize(program, None, None, rng))
            )
            truths.append(set(example.labels))
        return pmm_metrics, evaluate_selector(predictions, truths)

    pmm_metrics, baseline = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    table = format_table1(pmm_metrics, baseline, f"Rand.{k}")
    ratios = (
        f"\nratios (PMM / Rand.{k}): "
        f"F1 {pmm_metrics.f1 / max(baseline.f1, 1e-9):.1f}x "
        f"(paper 2.7x), Jaccard "
        f"{pmm_metrics.jaccard / max(baseline.jaccard, 1e-9):.1f}x "
        f"(paper 3.8x)"
    )
    write_result("table1_selector.txt", table + ratios)
    write_metrics("table1_selector.json", {
        "table1.pmm.f1": pmm_metrics.f1,
        "table1.pmm.precision": pmm_metrics.precision,
        "table1.pmm.recall": pmm_metrics.recall,
        "table1.pmm.jaccard": pmm_metrics.jaccard,
        "table1.baseline.f1": baseline.f1,
        "table1.baseline.jaccard": baseline.jaccard,
    })
    # The paper's shape: the learned selector dominates on every metric.
    assert pmm_metrics.f1 > baseline.f1 * 1.5
    assert pmm_metrics.precision > baseline.precision
    assert pmm_metrics.recall > baseline.recall
    assert pmm_metrics.jaccard > baseline.jaccard * 1.5
