"""PR 9 trajectory gate: corpus lineage and coverage attribution.

Headline groups feeding the committed ``BENCH_PR9.json`` baseline:

- attribution completeness on the traced tiny/6.8 campaign: the
  fraction of bugs with complete reproduction chains (must be 1.0) and
  the fraction of final edges with a first-cover owner (floor 0.95),
  both direction-tagged so a drop fails ``flag_regressions``;
- per-engine earnings from the oracle-steered run: mutations spent,
  edges/bugs earned, and the dead-mutation share per engine/slot;
- the continuous-profiling gauges: virtual executions per virtual
  second (the vectorization baseline for later perf work, tagged
  lower-is-worse) plus the per-phase time shares
  (mutate/exec/triage/hub_sync) — deterministic because they derive
  from the virtual clock's charge ledger, not wall time.
"""

import json
import os

from benchmarks.conftest import RESULTS_DIR, write_metrics, write_result
from repro.cluster import ClusterConfig
from repro.kernel import build_kernel
from repro.observe import (
    Observer,
    ProvenanceLog,
    attribution_table,
    flag_regressions,
    resolve_target,
)
from repro.snowplow import CampaignConfig, build_cluster
from repro.snowplow.campaign import (
    build_fuzz_loop,
    fuzz_campaign_config,
    fuzz_run_seed,
)

BASELINE = os.path.join(RESULTS_DIR, "BENCH_PR9.json")
MIN_EDGE_ATTRIBUTION = 0.95
PHASES = ("mutation", "execution", "triage", "hub_sync")


def _traced_campaign():
    """The tiny/6.8 oracle campaign the explain-gate replays."""
    kernel = build_kernel("6.8", seed=1, size="tiny")
    config = fuzz_campaign_config(0.5, 0, 100)
    loop = build_fuzz_loop(
        kernel, None, fuzz_run_seed(0, kernel.version), config,
        oracle=True, observer=Observer(),
    )
    loop.run()
    stats = loop.finalize()
    return kernel, loop, stats


def _fleet_campaign(kernel):
    """A small supervised-free fleet for the hub_sync phase share and
    subsumption accounting."""
    config = CampaignConfig(
        horizon=900.0, runs=1, seed=5, seed_corpus_size=20,
        sample_interval=300.0,
    )
    cluster = build_cluster(
        kernel, None, 21, config,
        cluster_config=ClusterConfig(workers=4, sync_interval=300.0),
        baseline=True,
    )
    result = cluster.run()
    merged = ProvenanceLog.merge(
        [worker.loop.provenance for worker in cluster.workers]
        + [cluster.hub.provenance]
    )
    return cluster, result, merged


def _phase_shares(clock) -> dict:
    charges = dict(clock.charges)
    total = sum(charges.values())
    return {
        phase: (charges.get(phase, 0.0) / total if total else 0.0)
        for phase in PHASES
    }


def test_bench_pr9_provenance_gate(benchmark):
    kernel, loop, stats = benchmark.pedantic(
        _traced_campaign, rounds=1, iterations=1
    )
    log = loop.provenance

    bug_chains = {
        crash.signature: resolve_target(log, f"bug:{crash.signature}")[2]
        for crash in stats.crashes
    }
    bugs_complete = (
        sum(1 for chain in bug_chains.values() if chain) / len(bug_chains)
        if bug_chains else 1.0
    )
    edge_fraction = (
        len(log.edge_owner) / stats.final_edges if stats.final_edges else 0.0
    )
    shares = _phase_shares(loop.clock)
    execs_per_vsecond = stats.executions / loop.clock.now

    cluster, _, fleet_log = _fleet_campaign(kernel)
    fleet_shares = _phase_shares(cluster.workers[0].loop.clock)

    baseline = None
    if os.path.exists(BASELINE):
        with open(BASELINE) as handle:
            baseline = json.load(handle)

    metrics = {
        # Direction-tagged: losing attribution coverage is a regression.
        "bench.provenance.bugs_attributed_fraction": round(bugs_complete, 4),
        "bench.provenance.edges_attributed_fraction": round(
            edge_fraction, 4
        ),
        # The vectorization baseline: virtual executions per virtual
        # second, a pure function of the seed (tagged lower-is-worse
        # via the execs_per_vsecond key).
        "bench.provenance.execs_per_vsecond": round(execs_per_vsecond, 4),
        "bench.provenance.entries": float(len(log.records)),
        "bench.provenance.bugs": float(len(bug_chains)),
        "bench.provenance.fleet_subsumed": float(
            cluster.hub.stats.subsumed_entries
        ),
        "bench.provenance.fleet_superseded_records": float(
            fleet_log.superseded_count
        ),
    }
    for phase, share in shares.items():
        metrics[f"bench.provenance.time_fraction_{phase}"] = round(share, 4)
    metrics["bench.provenance.fleet_time_fraction_hub_sync"] = round(
        fleet_shares["hub_sync"], 4
    )
    rows = attribution_table(log)
    for row in rows:
        tag = f"{row['engine']}_{row['slot'].strip('-') or 'seed'}"
        metrics[f"bench.provenance.mutations_{tag}"] = float(
            row["mutations"]
        )
        metrics[f"bench.provenance.edges_{tag}"] = float(row["edges"])
        metrics[f"bench.provenance.bugs_{tag}"] = float(row["bugs"])
        metrics[f"bench.provenance.dead_share_{tag}"] = row["dead_share"]
    fresh_path = write_metrics("BENCH_PR9.json", metrics)
    with open(fresh_path) as handle:
        fresh = json.load(handle)

    lines = [
        "PR 9 provenance gate (tiny/6.8, oracle-steered, 0.5h virtual).",
        "",
        f"bugs: {len(bug_chains)} found, "
        f"{bugs_complete:.0%} with complete chains; "
        f"edges: {len(log.edge_owner)}/{stats.final_edges} attributed "
        f"({edge_fraction:.1%}, floor {MIN_EDGE_ATTRIBUTION:.0%})",
        f"execs/vsecond: {execs_per_vsecond:.4f}  phase shares: "
        + "  ".join(f"{p}={shares[p]:.1%}" for p in PHASES),
        f"fleet: hub_sync share {fleet_shares['hub_sync']:.2%}, "
        f"subsumed {cluster.hub.stats.subsumed_entries}, "
        f"superseded records {fleet_log.superseded_count}",
        "",
        f"{'engine':<10} {'slot':<10} {'mutations':>10} {'edges':>7} "
        f"{'bugs':>5} {'dead_share':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['engine']:<10} {row['slot']:<10} "
            f"{row['mutations']:>10} {row['edges']:>7} {row['bugs']:>5} "
            f"{row['dead_share']:>11.4f}"
        )
    write_result("BENCH_PR9.txt", "\n".join(lines))

    # The ISSUE acceptance bounds: every bug explains, >=95% of edges
    # carry a first-cover owner, and the subsumption ledger closes.
    assert bug_chains, "campaign found no bugs — gate untested"
    assert bugs_complete == 1.0
    assert edge_fraction >= MIN_EDGE_ATTRIBUTION
    assert execs_per_vsecond > 0
    assert cluster.hub.stats.pushes == (
        cluster.hub.stats.accepted + cluster.hub.stats.duplicates
    )
    subsumed = cluster.hub.stats.subsumed_entries
    assert fleet_log.superseded_count <= subsumed
    assert subsumed == 0 or fleet_log.superseded_count > 0

    if baseline is None:
        baseline = fresh
    assert flag_regressions(baseline, fresh) == []
