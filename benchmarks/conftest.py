"""Shared, expensively-built artifacts for the experiment benches.

The kernels and the trained PMM are session-scoped: Table 1, Fig. 6, and
Tables 2-5 all reuse the same §5.1 training run, exactly as the paper
trains once on 6.8 and deploys everywhere.  Every bench writes the
table/figure it regenerates to ``benchmarks/results/`` so the output
survives the pytest run.
"""

from __future__ import annotations

import os

import pytest

from repro.kernel import build_kernel
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.snowplow import train_pmm

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Laptop-scale experiment sizing (paper values in DESIGN.md's table).
TRAIN_CORPUS = 60
MUTATIONS_PER_TEST = 120
TRAIN_EPOCHS = 2


def write_result(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def write_metrics(name: str, metrics) -> str:
    """Dump a metrics snapshot as canonical JSON next to the text table.

    ``metrics`` is either a :class:`~repro.observe.MetricsRegistry` or a
    plain ``{series: number}`` dict (folded into gauges).  The output is
    the same ``{counters, gauges, histograms}`` shape ``--observe-dir``
    exports, so two bench runs compare with ``repro observe diff``.
    """
    from repro.observe import MetricsRegistry

    if not isinstance(metrics, MetricsRegistry):
        registry = MetricsRegistry()
        for key, value in metrics.items():
            registry.gauge(str(key)).set(value)
        metrics = registry
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(metrics.to_json() + "\n")
    print(f"[metrics written to {path}]")
    return path


@pytest.fixture(scope="session")
def kernel_68():
    return build_kernel("6.8", seed=1, size="large")


@pytest.fixture(scope="session")
def kernel_69():
    return build_kernel("6.9", seed=1, size="large")


@pytest.fixture(scope="session")
def kernel_610():
    return build_kernel("6.10", seed=1, size="large")


@pytest.fixture(scope="session")
def trained_68(kernel_68):
    """PMM trained on kernel 6.8 (the paper trains on 6.8 only)."""
    return train_pmm(
        kernel_68,
        seed=0,
        corpus_size=TRAIN_CORPUS,
        dataset_config=DatasetConfig(
            mutations_per_test=MUTATIONS_PER_TEST, seed=3
        ),
        pmm_config=PMMConfig(dim=32, gnn_layers=2, asm_layers=1, seed=5),
        train_config=TrainConfig(
            epochs=TRAIN_EPOCHS, batch_size=8,
            max_examples_per_epoch=500, max_validation_examples=60,
        ),
    )
