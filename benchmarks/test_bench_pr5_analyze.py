"""PR 5 trajectory gate: the static-analysis stack.

Three deterministic headline groups feed the committed ``BENCH_PR5.json``
baseline:

- analysis cost: wall-time (untagged, machine-dependent, never gated)
  plus dead-block and finding counts per stock release;
- the Table-1 upper bound: the static oracle scores 1.0 against its own
  ground truth by construction, the trained PMM lands below it, and the
  PMM score is direction-tagged so drops fail ``flag_regressions``;
- directed steering: oracle-augmented SyzDirect must reach its targets
  with no more executions than the plain heuristic.
"""

import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, write_metrics, write_result
from repro.analyze import (
    DependencyOracle,
    ReachabilityAnalysis,
    StaticOracleLocalizer,
    run_kernel_checks,
    static_truths,
    strict_failures,
)
from repro.fuzzer import RandomLocalizer
from repro.fuzzer.directed import DirectedFuzzer, SyzDirectLocalizer
from repro.kernel import Executor, build_kernel
from repro.observe import flag_regressions
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig, evaluate_selector
from repro.rng import derive_seed, make_rng, split
from repro.snowplow import CampaignConfig, format_table1, train_pmm
from repro.snowplow.campaign import default_directed_targets
from repro.syzlang import ProgramGenerator
from repro.vclock import VirtualClock

BASELINE = os.path.join(RESULTS_DIR, "BENCH_PR5.json")
RELEASES = ("6.8", "6.9", "6.10")


def _analysis_pass():
    """Full static pass over each stock release (tiny scale)."""
    rows = {}
    for version in RELEASES:
        kernel = build_kernel(version, seed=1, size="tiny")
        start = time.perf_counter()
        reach = ReachabilityAnalysis(kernel)
        oracle = DependencyOracle(kernel)
        dead = reach.dead_blocks()
        findings = run_kernel_checks(kernel, reach, oracle)
        wall = time.perf_counter() - start
        rows[version] = {
            "kernel": kernel,
            "wall": wall,
            "blocks": len(kernel.blocks),
            "dead": len(dead),
            "warnings": sum(1 for f in findings if f.severity == "warning"),
            "errors": len(strict_failures(findings)),
        }
    return rows


def _oracle_gap(kernel):
    """Static oracle vs trained PMM vs random on the eval split."""
    trained = train_pmm(
        kernel,
        seed=0,
        corpus_size=30,
        dataset_config=DatasetConfig(
            mutations_per_test=60, seed=derive_seed(0, "d")
        ),
        pmm_config=PMMConfig(dim=32, seed=derive_seed(0, "m")),
        train_config=TrainConfig(epochs=2, seed=derive_seed(0, "t")),
    )
    dataset = trained.dataset
    holdout = dataset.evaluation[:150]
    localizer = StaticOracleLocalizer(kernel)
    truths = static_truths(localizer, dataset.programs, holdout)
    oracle_metrics = evaluate_selector(
        [
            set(localizer.target_paths(
                dataset.programs[e.base_index], e.targets
            ))
            for e in holdout
        ],
        truths,
    )
    pmm_metrics = evaluate_selector(
        [
            set(trained.model.predict_paths(
                dataset.encode_example(e, kernel, trained.encoder)
            ))
            for e in holdout
        ],
        truths,
    )
    rng = make_rng(9)
    random_metrics = evaluate_selector(
        [
            set(RandomLocalizer(3).localize(
                dataset.programs[e.base_index], None, None, rng
            ))
            for e in holdout
        ],
        truths,
    )
    return oracle_metrics, pmm_metrics, random_metrics, len(holdout)


def _directed_executions(kernel, reach, oracle):
    """Executions-to-target for plain vs oracle-steered SyzDirect.

    Both modes share each run's seed corpus and RNG streams, so the only
    difference is the localizer (plus the shared distance maps)."""
    config = CampaignConfig(horizon=4 * 3600.0, seed=5)
    targets = default_directed_targets(kernel, count=6)
    runs = 3
    totals = {"plain": 0, "oracle": 0}
    reached = {"plain": 0, "oracle": 0}
    for target in targets:
        syscall = kernel.handler_of_block.get(target, "")
        for run in range(runs):
            run_seed = derive_seed(config.seed, "pr5-directed", target, run)
            seeds = ProgramGenerator(
                kernel.table, split(run_seed, "seed-corpus")
            ).seed_corpus(10)
            for mode in ("plain", "oracle"):
                localizer = SyzDirectLocalizer(
                    syscall, oracle=oracle if mode == "oracle" else None
                )
                fuzzer = DirectedFuzzer(
                    kernel=kernel,
                    target_block=target,
                    executor=Executor(
                        kernel, seed=derive_seed(run_seed, "exec")
                    ),
                    generator=ProgramGenerator(
                        kernel.table, split(run_seed, "gen")
                    ),
                    localizer=localizer,
                    clock=VirtualClock(horizon=config.horizon),
                    cost=config.cost,
                    rng=split(run_seed, "loop"),
                    analysis=reach if mode == "oracle" else None,
                )
                fuzzer.seed([program.clone() for program in seeds])
                result = fuzzer.run()
                totals[mode] += result.executions
                reached[mode] += int(result.reached)
    return targets, totals, reached


def test_bench_pr5_analyze_gate(benchmark):
    rows = benchmark.pedantic(_analysis_pass, rounds=1, iterations=1)
    kernel_68 = rows["6.8"]["kernel"]
    reach_68 = ReachabilityAnalysis(kernel_68)
    oracle_68 = DependencyOracle(kernel_68)

    oracle_m, pmm_m, random_m, examples = _oracle_gap(kernel_68)
    targets, totals, reached = _directed_executions(
        kernel_68, reach_68, oracle_68
    )

    baseline = None
    if os.path.exists(BASELINE):
        with open(BASELINE) as handle:
            baseline = json.load(handle)

    metrics = {}
    for version, row in rows.items():
        tag = version.replace(".", "_")
        # Wall time is machine-dependent: recorded for trend reading,
        # untagged so flag_regressions never gates on it.
        metrics[f"bench.analyze.wall_seconds_{tag}"] = round(row["wall"], 3)
        metrics[f"bench.analyze.blocks_{tag}"] = float(row["blocks"])
        metrics[f"bench.analyze.dead_blocks_{tag}"] = float(row["dead"])
        metrics[f"bench.analyze.warnings_{tag}"] = float(row["warnings"])
    # "productive" marks the PMM score lower-is-worse for the gate.
    metrics["bench.analyze.pmm_productive_f1"] = round(pmm_m.f1, 4)
    metrics["bench.analyze.oracle_gap_f1"] = round(
        oracle_m.f1 - pmm_m.f1, 4
    )
    metrics["bench.analyze.directed_execs_plain"] = float(totals["plain"])
    metrics["bench.analyze.directed_execs_oracle"] = float(totals["oracle"])
    fresh_path = write_metrics("BENCH_PR5.json", metrics)
    with open(fresh_path) as handle:
        fresh = json.load(handle)

    table = format_table1(pmm_m, random_m, "Rand.3", static_oracle=oracle_m)
    lines = [
        "PR 5 static-analysis gate.",
        "",
        f"{'Release':<8} {'Blocks':>7} {'Dead':>5} {'Warn':>5} "
        f"{'Err':>4} {'Wall(s)':>8}",
    ]
    for version, row in rows.items():
        lines.append(
            f"{version:<8} {row['blocks']:>7} {row['dead']:>5} "
            f"{row['warnings']:>5} {row['errors']:>4} {row['wall']:>8.3f}"
        )
    lines += [
        "",
        f"{table}",
        f"(static truth over {examples} eval examples)",
        "",
        f"Directed (targets {targets}, 3 runs each): "
        f"plain SyzDirect {totals['plain']} execs "
        f"({reached['plain']}/{3 * len(targets)} reached), "
        f"oracle-steered {totals['oracle']} execs "
        f"({reached['oracle']}/{3 * len(targets)} reached)",
    ]
    write_result("BENCH_PR5.txt", "\n".join(lines))

    # Stock releases must be --strict clean.
    assert all(row["errors"] == 0 for row in rows.values())
    # Dead blocks exist and the analysis sees every block.
    assert all(row["dead"] > 0 for row in rows.values())
    # The oracle is exact against the static truth; the PMM is not.
    assert oracle_m.precision == oracle_m.recall == 1.0
    assert pmm_m.f1 < 1.0
    assert pmm_m.f1 > random_m.f1
    # Exact steering slots must not cost executions.
    assert reached["oracle"] >= reached["plain"]
    assert totals["oracle"] <= totals["plain"]

    if baseline is None:
        baseline = fresh
    assert flag_regressions(baseline, fresh) == []
