"""PR 8 trajectory gate: the spec-inference subsystem.

Headline groups feeding the committed ``BENCH_PR8.json`` baseline:

- inference cost: wall-time per stock release (untagged,
  machine-dependent, never gated) plus inferred-surface counts and a
  hard round-trip assert on the emitted syzlang;
- fidelity vs. the hand-written stdlib: argument-kind accuracy,
  flag-domain recall, and resource-edge recall per release, all
  direction-tagged so a drop fails ``flag_regressions``;
- the no-ground-truth cost: inferred-vs-truth coverage ratio on the
  seeded 6.8 evaluation campaign, direction-tagged and floored at the
  ISSUE acceptance bound of 0.70.
"""

import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, write_metrics, write_result
from repro.analyze import strict_failures, table_mismatch_findings
from repro.kernel import build_kernel
from repro.observe import flag_regressions
from repro.specgen import (
    diff_tables,
    infer_specs,
    parse_table,
    run_specgen_campaign,
    serialize_table,
)
from repro.syzlang import build_standard_table

BASELINE = os.path.join(RESULTS_DIR, "BENCH_PR8.json")
RELEASES = ("6.8", "6.9", "6.10")
MIN_COVERAGE_RATIO = 0.70


def _inference_pass():
    """Infer + emit + round-trip + score every stock release (tiny)."""
    rows = {}
    for version in RELEASES:
        kernel = build_kernel(version, seed=1, size="tiny")
        start = time.perf_counter()
        table, report = infer_specs(kernel)
        text = serialize_table(table)
        round_trips = parse_table(text) == table
        wall = time.perf_counter() - start
        fidelity = diff_tables(
            table, build_standard_table(version), version=version
        )
        rows[version] = {
            "kernel": kernel,
            "table": table,
            "report": report,
            "fidelity": fidelity,
            "wall": wall,
            "round_trips": round_trips,
        }
    return rows


def test_bench_pr8_specgen_gate(benchmark):
    rows = benchmark.pedantic(_inference_pass, rounds=1, iterations=1)

    campaign = run_specgen_campaign(
        versions=("6.8",), seed=0, kernel_seed=1, size="tiny",
        hours=0.3, seed_corpus=10,
    )
    run_68 = campaign.run_for("6.8")

    baseline = None
    if os.path.exists(BASELINE):
        with open(BASELINE) as handle:
            baseline = json.load(handle)

    metrics = {}
    for version, row in rows.items():
        tag = version.replace(".", "_")
        fidelity = row["fidelity"]
        report = row["report"]
        # Wall time is machine-dependent: recorded for trend reading,
        # untagged so flag_regressions never gates on it.
        metrics[f"bench.specgen.wall_seconds_{tag}"] = round(row["wall"], 3)
        metrics[f"bench.specgen.syscalls_{tag}"] = float(report.syscalls)
        metrics[f"bench.specgen.flag_bits_{tag}"] = float(report.flag_bits)
        # "productive" marks fidelity lower-is-worse for the gate.
        metrics[f"bench.specgen.kind_accuracy_productive_{tag}"] = round(
            fidelity.kind_accuracy, 4
        )
        metrics[f"bench.specgen.flag_recall_productive_{tag}"] = round(
            fidelity.flag_recall, 4
        )
        metrics[f"bench.specgen.resource_recall_productive_{tag}"] = round(
            fidelity.resource_recall, 4
        )
    metrics["bench.specgen.coverage_ratio_productive_6_8"] = round(
        run_68.coverage_ratio, 4
    )
    metrics["bench.specgen.inferred_edges_6_8"] = float(
        run_68.inferred_edges
    )
    fresh_path = write_metrics("BENCH_PR8.json", metrics)
    with open(fresh_path) as handle:
        fresh = json.load(handle)

    lines = [
        "PR 8 spec-inference gate.",
        "",
        f"{'Release':<8} {'Specs':>6} {'Bits':>5} {'KindAcc':>8} "
        f"{'FlagRec':>8} {'ResRec':>7} {'RT':>3} {'Wall(s)':>8}",
    ]
    for version, row in rows.items():
        fidelity = row["fidelity"]
        lines.append(
            f"{version:<8} {row['report'].syscalls:>6} "
            f"{row['report'].flag_bits:>5} "
            f"{fidelity.kind_accuracy:>8.3f} {fidelity.flag_recall:>8.3f} "
            f"{fidelity.resource_recall:>7.3f} "
            f"{'ok' if row['round_trips'] else 'NO':>3} {row['wall']:>8.3f}"
        )
    lines += [
        "",
        f"Seeded 6.8 campaign ({campaign.hours:.1f}h virtual): "
        f"truth {run_68.truth_edges} edges, inferred "
        f"{run_68.inferred_edges} edges "
        f"(ratio {run_68.coverage_ratio:.1%}, floor "
        f"{MIN_COVERAGE_RATIO:.0%}); bugs truth={list(run_68.truth_bugs)} "
        f"inferred={list(run_68.inferred_bugs)}",
    ]
    write_result("BENCH_PR8.txt", "\n".join(lines))

    for version, row in rows.items():
        # Emitted syzlang must round-trip losslessly on every release.
        assert row["round_trips"], version
        # Every handler gets a spec; the inferred table is lint-clean
        # against its own kernel.
        assert row["fidelity"].syscall_coverage == 1.0
        assert not strict_failures(
            table_mismatch_findings(row["kernel"], row["table"])
        )
    # The ISSUE acceptance bound: inferred-spec fuzzing keeps >= 70%
    # of ground-truth coverage on the seeded 6.8 campaign.
    assert run_68.coverage_ratio >= MIN_COVERAGE_RATIO

    if baseline is None:
        baseline = fresh
    assert flag_regressions(baseline, fresh) == []
