"""Table 4: the diagnosed bug reports.

The paper diagnoses 7 crashes; bug #1 — an out-of-bounds write in
``ata_pio_sector`` reachable only through an ioctl with
SCSI_IOCTL_SEND_COMMAND, CDB = {ATA_16 PASS-THROUGH, protocol PIO,
command NOP} and an oversized data length — explains 45 of the 57
reproducible crashes as downstream memory-corruption manifestations.

The bench verifies each planted Table 4 bug end to end: trigger it,
triage it, minimise a reproducer, and attribute corruption crashes back
to the ATA bug by inspecting reproducers for the SCSI ioctl — the
paper's own attribution method (§5.3.2).
"""

from benchmarks.conftest import write_metrics, write_result
from repro.fuzzer.crash import CrashTriage
from repro.kernel import Executor
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator, serialize_program
from repro.syzlang.program import Call, Program, zero_value
from repro.syzlang.stdlib import ATA_16, ATA_NOP, ATA_PROT_PIO

# Table 4 rows: bug id -> (paper description, syscall context).
_TABLE4 = {
    "ata-oob": ("Out of bound access in ata_pio_sector", "ioctl()"),
    "uring-tss-gpf": (
        "GPF in native_tss_update_io_bitmap", "io_uring()"
    ),
    "rcu-stall-cov": ("RCU stall in __sanitizer_cov_trace_pc", "timer"),
    "gup-stack": ("GUP no longer grows the stack", "mmap()"),
    "ext4-iomap-warn": ("WARNING in ext4_iomap_begin", "pwrite64()"),
    "ext4-writepages-bug": ("kernel BUG in ext4_do_writepages", "fs bg op"),
    "ext4-search-dir-uaf": (
        "KASAN slab-use-after-free in ext4_search_dir", "open()"
    ),
}


def _ata_program(kernel) -> Program:
    open_spec = kernel.table.lookup("open$scsi")
    ioctl_spec = kernel.table.lookup("ioctl$SCSI_IOCTL_SEND_COMMAND")
    program = Program([
        Call(open_spec, [zero_value(t) for _, t in open_spec.args]),
        Call(ioctl_spec, [zero_value(t) for _, t in ioctl_spec.args]),
    ])
    ioctl = program.calls[1]
    ioctl.args[0].producer = 0
    command = ioctl.args[2].pointee
    command.fields[1].value = 0x10000
    cdb = command.fields[2]
    cdb.fields[0].value = ATA_16
    cdb.fields[1].value = ATA_PROT_PIO
    cdb.fields[3].value = ATA_NOP
    return program


def _trigger_program(kernel, bug_id: str, rng) -> Program | None:
    """Synthesise a trigger for a planted bug by reading its guard
    conditions off the CFG (the experiment harness may cheat; fuzzers
    may not)."""
    if bug_id == "ata-oob":
        return _ata_program(kernel)
    from repro.kernel.blocks import BlockRole
    from repro.kernel.conditions import ArgCondition, CondOp

    block_id = kernel.bug_blocks[bug_id]
    handler = kernel.handler_of_block[block_id]
    spec = kernel.table.lookup(handler)
    generator = ProgramGenerator(kernel.table, rng)
    # Walk conditional predecessors to collect the guard chain.
    conditions = []
    current = block_id
    seen = set()
    while True:
        preds = [
            p for p in kernel.preds.get(current, ())
            if kernel.blocks[p].role is BlockRole.CONDITION
            and p not in seen
        ]
        if not preds:
            break
        pred = preds[0]
        seen.add(pred)
        condition = kernel.blocks[pred].condition
        if isinstance(condition, ArgCondition):
            conditions.append(condition)
        current = pred
    for _ in range(300):
        program = generator.random_program(length=2)
        producers = {}
        for index, call in enumerate(program.calls):
            produced = call.spec.produces
            kind = produced
            while kind is not None:
                producers.setdefault(kind.name, []).append(index)
                kind = kind.parent
        for needed in spec.consumes():
            if needed.name not in producers:
                producer_specs = kernel.table.producers_of(needed)
                if producer_specs:
                    call = generator.random_call(producer_specs[0], producers)
                    program.calls.append(call)
                    producers.setdefault(needed.name, []).append(
                        len(program.calls) - 1
                    )
        program.calls.append(generator.random_call(spec, producers))
        from repro.syzlang.program import ArgPath, BufferValue, IntValue

        call_index = len(program.calls) - 1
        satisfiable = True
        for condition in conditions:
            path = ArgPath(call_index, condition.path_elements)
            try:
                value = program.get(path)
            except Exception:
                satisfiable = False
                break
            if isinstance(value, IntValue):
                if condition.op is CondOp.EQ:
                    value.value = condition.operand
                elif condition.op is CondOp.GT:
                    value.value = condition.operand + 1
                elif condition.op is CondOp.LT:
                    value.value = max(condition.operand - 1, 0)
                elif condition.op is CondOp.MASK_SET:
                    value.value |= condition.operand
                elif condition.op is CondOp.MASK_CLEAR:
                    value.value &= ~condition.operand
                elif condition.op is CondOp.NE:
                    value.value = condition.operand + 1
            elif isinstance(value, BufferValue):
                if condition.op is CondOp.GT:
                    pad = condition.operand + 1 - len(value.data)
                    if pad > 0:
                        value.data = value.data + b"\x00" * pad
        if not satisfiable:
            continue
        result = Executor(kernel).run(program)
        # Reaching the bug block counts even when the crash is racy
        # (non-reproducible bugs fire probabilistically).
        if kernel.bug_blocks[bug_id] in result.coverage.blocks:
            return program
    return None


def test_bench_table4_reports(benchmark, kernel_68):
    def verify_all():
        rng = make_rng(77)
        triage = CrashTriage(Executor(kernel_68, seed=5), set())
        rows = []
        for bug_id, (description, context) in _TABLE4.items():
            program = _trigger_program(kernel_68, bug_id, rng)
            if program is None:
                rows.append((bug_id, description, context, "NOT TRIGGERED"))
                continue
            executor = Executor(kernel_68, seed=9)
            crash = None
            for _ in range(10):
                result = executor.run(program)
                if result.crash is not None:
                    crash = triage.observe(program, result.crash)
                    break
            if crash is None:
                status = "reached (crash is concurrency-dependent)"
            else:
                reproducer = triage.reproduce(crash)
                if reproducer is not None:
                    status = f"reproduced ({len(reproducer)} calls)"
                else:
                    status = "triggered (no reproducer)"
            rows.append((bug_id, description, context, status))
        return rows

    rows = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    lines = ["Table 4. Diagnosed bug reports (paper bug -> this repo)"]
    for bug_id, description, context, status in rows:
        lines.append(f"  {bug_id:<22} {description:<48} [{context}] {status}")

    # ATA attribution: the memory corruptor produces many signatures;
    # reproducers containing the SCSI ioctl are attributed to it.
    ata = _ata_program(kernel_68)
    executor = Executor(kernel_68, seed=31)
    signatures = {executor.run(ata).crash.description for _ in range(30)}
    lines.append(
        f"  ATA memory corruption manifests as {len(signatures)} distinct "
        "crash signatures (paper: 45/57 crashes attributed via the "
        "SCSI_IOCTL_SEND_COMMAND reproducer test)"
    )
    lines.append("  reproducer (syz format):")
    for line in serialize_program(ata).splitlines():
        lines.append(f"    {line}")
    write_result("table4_reports.txt", "\n".join(lines))

    triggered = [row for row in rows if row[3] != "NOT TRIGGERED"]
    write_metrics("table4_reports.json", {
        "table4.bugs": len(_TABLE4),
        "table4.triggered": len(triggered),
        "table4.reproduced": sum(
            1 for row in rows if row[3].startswith("reproduced")
        ),
        "table4.ata_signatures": len(signatures),
    })
    assert len(triggered) == len(_TABLE4), rows
    assert len(signatures) >= 3
