"""Cluster bench: coverage vs fleet size, and the batching win.

Three acceptance experiments for `repro.cluster`:

- the scaling sweep must show a 4-worker fleet reaching strictly more
  fleet-union coverage than a single worker at the same per-worker
  virtual budget (the hub actually pools progress);
- the dynamically batched serving tier must complete more requests than
  an unbatched service with the same single-request latency and slot
  count under saturating load (batching actually raises throughput
  above ``servers / latency``);
- the PR-6 fleet gate: a 64-worker / 4-shard fleet whose per-worker hub
  cost stays flat as the fleet widens (the sharded hub scales
  sublinearly) and whose serving tier, under load shedding, keeps the
  p95 queue delay no worse than the PR-4 single-loop figure (~2260
  virtual seconds), all pinned by the committed ``BENCH_PR6.json``
  baseline via ``flag_regressions``.

Runs on small/tiny kernels with the oracle localizer so the CI smoke
job can afford it; the shapes, not the absolute numbers, are the claims.
"""

import json
import os

import pytest

from benchmarks.conftest import RESULTS_DIR, write_metrics, write_result
from repro.cluster import ClusterConfig
from repro.kernel import build_kernel
from repro.observe import flag_regressions
from repro.pmm.serve import BatchingInferenceService, InferenceService
from repro.snowplow import (
    CampaignConfig,
    SnowplowConfig,
    format_scaling,
    run_scaling_campaign,
)

HORIZON = 2400.0
PR6_BASELINE = os.path.join(RESULTS_DIR, "BENCH_PR6.json")
# PR-4's measured serve.queue_delay/p95 — the shedding tier must hold
# the fleet at or below the single-loop era's tail latency.
PR4_QUEUE_DELAY_P95 = 2260.5


@pytest.fixture(scope="module")
def small_kernel():
    return build_kernel("6.8", seed=1, size="small")


def test_bench_cluster_scaling(benchmark, small_kernel):
    config = CampaignConfig(
        horizon=HORIZON, runs=1, seed=11, seed_corpus_size=12,
        sample_interval=300.0,
    )

    def run():
        return run_scaling_campaign(
            small_kernel, None, config, worker_counts=(1, 2, 4),
            cluster_config=ClusterConfig(workers=4, sync_interval=300.0),
            oracle=True, observe=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    edges = result.final_edges()
    # The acceptance claim: fleet width buys coverage at equal
    # per-worker budget.
    assert edges[4] > edges[1]
    assert edges[2] > edges[1]
    write_result("cluster_scaling.txt", format_scaling(result))
    # Full telemetry (Chrome trace, spans, flame, profile) for the
    # widest fleet, plus its metrics snapshot in diff-able form.
    widest = result.points[-1]
    write_metrics("cluster_scaling.json", widest.observer.registry)
    exported = widest.observer.export(
        os.path.join(RESULTS_DIR, "cluster_scaling_telemetry")
    )
    assert "trace.json" in exported


def test_bench_batching_throughput(benchmark):
    latency = 10.0
    servers = 4

    def saturate(service):
        """Closed-loop load: keep the queue topped up, count completions
        over a fixed virtual window."""
        done = 0
        step = 0
        for tick in range(2000):
            now = tick * 0.5
            while service.pending_count() < 24:
                service.submit(f"q{step}", now)
                step += 1
            done += len(service.poll(now))
        return done

    def run():
        batched = BatchingInferenceService(
            predict_fn=lambda q: q,
            base_latency=0.75 * latency,
            marginal_latency=0.25 * latency,
            max_batch_size=8,
            batch_timeout=0.25 * latency,
            servers=servers,
        )
        plain = InferenceService(
            lambda q: q, latency=latency, servers=servers
        )
        assert batched.latency_of(1) == latency
        return saturate(batched), saturate(plain), batched, plain

    batched_done, plain_done, batched, plain = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # The structural claim and the measured one, both strictly.
    assert batched.saturation_throughput > plain.saturation_throughput
    assert batched_done > plain_done
    window = 2000 * 0.5
    write_result(
        "cluster_batching_throughput.txt",
        "\n".join([
            "Dynamic batching vs unbatched serving "
            f"({servers} slots, single-request latency {latency:.0f}s, "
            f"{window:.0f} virtual s of saturating load)",
            f"  unbatched: {plain_done} completed "
            f"({plain_done / window:.2f}/s; theoretical cap "
            f"{plain.saturation_throughput:.2f}/s)",
            f"  batched:   {batched_done} completed "
            f"({batched_done / window:.2f}/s; theoretical cap "
            f"{batched.saturation_throughput:.2f}/s, "
            f"mean batch {batched.stats.mean_batch_size:.2f})",
            f"  speedup:   {batched_done / max(plain_done, 1):.2f}x",
        ]),
    )
    write_metrics("cluster_batching_throughput.json", {
        "bench.completed.batched": batched_done,
        "bench.completed.unbatched": plain_done,
        "bench.mean_batch_size": batched.stats.mean_batch_size,
        "bench.cap_qps.batched": batched.saturation_throughput,
        "bench.cap_qps.unbatched": plain.saturation_throughput,
    })


def test_bench_pr6_fleet_scaling(benchmark):
    """PR 6 gate: 64 workers, 4 hub shards, shedding serving tier."""
    kernel = build_kernel("6.8", seed=1, size="tiny")
    config = CampaignConfig(
        horizon=HORIZON, runs=1, seed=11, seed_corpus_size=10,
        sample_interval=300.0,
        snowplow=SnowplowConfig(shed_timeout_factor=2.8),
    )
    counts = (1, 8, 64)

    def run():
        return run_scaling_campaign(
            kernel, None, config, worker_counts=counts,
            cluster_config=ClusterConfig(
                workers=64, sync_interval=300.0, shards=4,
            ),
            oracle=True, observe=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    edges = result.final_edges()
    by_count = {point.workers: point.result for point in result.points}

    def sync_seconds_per_worker(count):
        cluster = by_count[count]
        total = sum(stats.hub_syncs for stats in cluster.worker_stats)
        return total * config.cost.hub_sync / count

    widest = by_count[64]
    service = widest.service_stats
    per_worker_8 = sync_seconds_per_worker(8)
    per_worker_64 = sync_seconds_per_worker(64)

    baseline = None
    if os.path.exists(PR6_BASELINE):
        with open(PR6_BASELINE) as handle:
            baseline = json.load(handle)

    metrics = {
        # "delay" marks this higher-is-worse for flag_regressions.
        "bench.fleet.queue_delay_p95": round(
            service.queue_delay.p95, 3
        ),
        "bench.fleet.final_edges_1": float(edges[1]),
        "bench.fleet.final_edges_8": float(edges[8]),
        "bench.fleet.final_edges_64": float(edges[64]),
        "bench.fleet.hub_sync_seconds_per_worker_8": round(per_worker_8, 3),
        "bench.fleet.hub_sync_seconds_per_worker_64": round(
            per_worker_64, 3
        ),
        "bench.fleet.shed_requests_64": float(service.shed),
        "bench.fleet.bloom_skips_64": float(widest.hub_stats.bloom_skips),
    }
    fresh_path = write_metrics("BENCH_PR6.json", metrics)
    with open(fresh_path) as handle:
        fresh = json.load(handle)

    write_result(
        "BENCH_PR6.txt",
        "\n".join([
            "PR 6 fleet gate (64 workers, 4 hub shards, shedding tier).",
            "",
            format_scaling(result),
            "",
            f"hub sync s/worker: {per_worker_8:.1f} @8 -> "
            f"{per_worker_64:.1f} @64 "
            f"(x{per_worker_64 / max(per_worker_8, 1e-9):.2f})",
            f"serve queue delay p95: {service.queue_delay.p95:.1f}s "
            f"(PR-4 figure {PR4_QUEUE_DELAY_P95:.1f}s), "
            f"{service.shed} request(s) shed",
            f"bloom pre-dedup skips: {widest.hub_stats.bloom_skips}",
        ]),
    )

    # Fleet width keeps buying coverage, monotonically.
    assert edges[8] > edges[1]
    assert edges[64] >= edges[8]
    # Sharded hub: per-worker sync cost stays flat as the fleet widens
    # 8x (sublinear total cost in fleet size).
    assert per_worker_64 <= 1.1 * per_worker_8
    # Admission control holds the tail: no worse than the PR-4 figure.
    assert service.queue_delay.p95 <= PR4_QUEUE_DELAY_P95
    # The bloom pre-dedup path is actually exercised at fleet scale.
    assert widest.hub_stats.bloom_skips > 0

    if baseline is None:
        baseline = fresh
    assert flag_regressions(baseline, fresh) == []
