"""Cluster bench: coverage vs fleet size, and the batching win.

Two acceptance experiments for `repro.cluster`:

- the scaling sweep must show a 4-worker fleet reaching strictly more
  fleet-union coverage than a single worker at the same per-worker
  virtual budget (the hub actually pools progress);
- the dynamically batched serving tier must complete more requests than
  an unbatched service with the same single-request latency and slot
  count under saturating load (batching actually raises throughput
  above ``servers / latency``).

Runs on a small kernel with the oracle localizer so the CI smoke job
can afford it; the shapes, not the absolute numbers, are the claims.
"""

import os

import pytest

from benchmarks.conftest import RESULTS_DIR, write_metrics, write_result
from repro.cluster import ClusterConfig
from repro.kernel import build_kernel
from repro.pmm.serve import BatchingInferenceService, InferenceService
from repro.snowplow import CampaignConfig, format_scaling, run_scaling_campaign

HORIZON = 2400.0


@pytest.fixture(scope="module")
def small_kernel():
    return build_kernel("6.8", seed=1, size="small")


def test_bench_cluster_scaling(benchmark, small_kernel):
    config = CampaignConfig(
        horizon=HORIZON, runs=1, seed=11, seed_corpus_size=12,
        sample_interval=300.0,
    )

    def run():
        return run_scaling_campaign(
            small_kernel, None, config, worker_counts=(1, 2, 4),
            cluster_config=ClusterConfig(workers=4, sync_interval=300.0),
            oracle=True, observe=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    edges = result.final_edges()
    # The acceptance claim: fleet width buys coverage at equal
    # per-worker budget.
    assert edges[4] > edges[1]
    assert edges[2] > edges[1]
    write_result("cluster_scaling.txt", format_scaling(result))
    # Full telemetry (Chrome trace, spans, flame, profile) for the
    # widest fleet, plus its metrics snapshot in diff-able form.
    widest = result.points[-1]
    write_metrics("cluster_scaling.json", widest.observer.registry)
    exported = widest.observer.export(
        os.path.join(RESULTS_DIR, "cluster_scaling_telemetry")
    )
    assert "trace.json" in exported


def test_bench_batching_throughput(benchmark):
    latency = 10.0
    servers = 4

    def saturate(service):
        """Closed-loop load: keep the queue topped up, count completions
        over a fixed virtual window."""
        done = 0
        step = 0
        for tick in range(2000):
            now = tick * 0.5
            while service.pending_count() < 24:
                service.submit(f"q{step}", now)
                step += 1
            done += len(service.poll(now))
        return done

    def run():
        batched = BatchingInferenceService(
            predict_fn=lambda q: q,
            base_latency=0.75 * latency,
            marginal_latency=0.25 * latency,
            max_batch_size=8,
            batch_timeout=0.25 * latency,
            servers=servers,
        )
        plain = InferenceService(
            lambda q: q, latency=latency, servers=servers
        )
        assert batched.latency_of(1) == latency
        return saturate(batched), saturate(plain), batched, plain

    batched_done, plain_done, batched, plain = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # The structural claim and the measured one, both strictly.
    assert batched.saturation_throughput > plain.saturation_throughput
    assert batched_done > plain_done
    window = 2000 * 0.5
    write_result(
        "cluster_batching_throughput.txt",
        "\n".join([
            "Dynamic batching vs unbatched serving "
            f"({servers} slots, single-request latency {latency:.0f}s, "
            f"{window:.0f} virtual s of saturating load)",
            f"  unbatched: {plain_done} completed "
            f"({plain_done / window:.2f}/s; theoretical cap "
            f"{plain.saturation_throughput:.2f}/s)",
            f"  batched:   {batched_done} completed "
            f"({batched_done / window:.2f}/s; theoretical cap "
            f"{batched.saturation_throughput:.2f}/s, "
            f"mean batch {batched.stats.mean_batch_size:.2f})",
            f"  speedup:   {batched_done / max(plain_done, 1):.2f}x",
        ]),
    )
    write_metrics("cluster_batching_throughput.json", {
        "bench.completed.batched": batched_done,
        "bench.completed.unbatched": plain_done,
        "bench.mean_batch_size": batched.stats.mean_batch_size,
        "bench.cap_qps.batched": batched.saturation_throughput,
        "bench.cap_qps.unbatched": plain.saturation_throughput,
    })
