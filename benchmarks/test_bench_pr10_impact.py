"""PR 10 patch-impact gate: directed-vs-plain time-to-changed-surface.

The seeded campaign pair behind the committed ``BENCH_PR10.json``
baseline: both arms run the identical oracle Snowplow loop on tiny/6.9
from the same seed corpus, the plain arm carrying an observe-only
:class:`~repro.analyze.impact.PatchDirector` (bit-identical to an
undirected run) that merely records when each changed block of the
6.8→6.9 diff is first covered, the directed arm actively scheduling
distance-ranked targets with pending-slot steering.

Headline metrics, direction-tagged for ``flag_regressions``:

- ``directed_latency_vseconds`` — virtual time until the directed arm
  has covered every fuzzable changed block ("latency": higher is
  worse);
- ``directed_plain_latency_ratio`` — directed over plain time-to-all;
  the ISSUE acceptance bound pins it at <= 0.5 ("latency" again);
- ``targets_completed_fraction`` — share of fuzzable changed blocks
  the directed arm reached ("completed": lower is worse).
"""

import json
import os

from benchmarks.conftest import RESULTS_DIR, write_metrics, write_result
from repro.analyze import (
    DependencyOracle,
    DistanceField,
    ReachabilityAnalysis,
    build_target_manifest,
    compute_impact,
    run_impact_checks,
    strict_failures,
)
from repro.kernel import build_kernel
from repro.observe import flag_regressions
from repro.snowplow import run_patch_campaign
from repro.snowplow.campaign import fuzz_campaign_config

BASELINE = os.path.join(RESULTS_DIR, "BENCH_PR10.json")
MAX_DIRECTED_RATIO = 0.5
HOURS = 2.0


def _patch_campaign():
    old = build_kernel("6.8", seed=1, size="tiny")
    new = build_kernel("6.9", seed=1, size="tiny")
    report = compute_impact(old, new)
    reach = ReachabilityAnalysis(new)
    oracle = DependencyOracle(new)
    manifest = build_target_manifest(
        old, new, report=report, reach=reach, oracle=oracle
    )
    config = fuzz_campaign_config(HOURS, 0, 50)
    result = run_patch_campaign(old, new, config, manifest=manifest)
    findings = run_impact_checks(report, manifest, old, new)
    return old, new, report, manifest, result, findings


def test_bench_pr10_impact_gate(benchmark):
    old, new, report, manifest, result, findings = benchmark.pedantic(
        _patch_campaign, rounds=1, iterations=1
    )

    counts = manifest.counts()
    field = DistanceField(new, manifest.fuzzable_blocks())
    ratio = (
        result.directed_time / result.plain_time
        if result.plain_time else float("inf")
    )

    baseline = None
    if os.path.exists(BASELINE):
        with open(BASELINE) as handle:
            baseline = json.load(handle)

    metrics = {
        # Direction-tagged headline numbers.
        "bench.impact.directed_latency_vseconds": round(
            result.directed_time, 1
        ),
        "bench.impact.directed_plain_latency_ratio": round(ratio, 4),
        "bench.impact.targets_completed_fraction": round(
            result.targets_reached_fraction(), 4
        ),
        # Untracked shape-of-the-diff context.
        "bench.impact.changed_blocks": float(len(report.changed_blocks())),
        "bench.impact.changed_predicates": float(
            len(report.changed_predicates)
        ),
        "bench.impact.targets_solvable": float(counts["solvable"]),
        "bench.impact.targets_unsteerable": float(counts["unsteerable"]),
        "bench.impact.targets_unreachable": float(counts["unreachable"]),
        "bench.impact.distance_finite_fraction": round(
            field.finite_fraction(), 4
        ),
        "bench.impact.plain_time_vseconds": round(result.plain_time, 1),
        "bench.impact.lint_findings": float(len(findings)),
    }
    fresh_path = write_metrics("BENCH_PR10.json", metrics)
    with open(fresh_path) as handle:
        fresh = json.load(handle)

    write_result("BENCH_PR10.txt", "\n".join([
        f"PR 10 patch-impact gate (tiny/{old.version}->{new.version}, "
        f"oracle-steered, {HOURS:.1f}h virtual per arm).",
        "",
        f"diff: {len(report.changed_blocks())} changed blocks in "
        f"{len(report.added_handlers)} added + "
        f"{sum(1 for d in report.handlers if d.status == 'modified')} "
        f"modified handlers; {len(report.changed_predicates)} changed "
        f"predicates, {len(report.touched_bugs)} touched bug chain(s)",
        f"manifest: {counts['solvable']} solvable, "
        f"{counts['unsteerable']} unsteerable, "
        f"{counts['unreachable']} unreachable "
        f"(distance field sees {field.finite_fraction():.1%} of the "
        f"kernel)",
        f"directed: all targets by t={result.directed_time:,.0f}s "
        f"(complete={result.directed_complete}); plain: "
        f"t={result.plain_time:,.0f}s (complete={result.plain_complete})",
        f"ratio: {ratio:.3f} (bound {MAX_DIRECTED_RATIO})",
    ]))

    # The ISSUE acceptance bounds: every changed block classified, the
    # stock diff lints clean under --strict, the directed arm reaches
    # the whole fuzzable changed surface, and it does so in at most
    # half the plain arm's virtual time.
    assert {t.block_id for t in manifest.targets} == set(
        report.changed_blocks()
    )
    assert not strict_failures(findings)
    assert result.directed_complete
    assert result.targets_reached_fraction() == 1.0
    assert ratio <= MAX_DIRECTED_RATIO

    if baseline is None:
        baseline = fresh
    assert flag_regressions(baseline, fresh) == []
