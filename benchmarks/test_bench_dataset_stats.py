"""§5.1 dataset characterisation bench.

Regenerates the paper's data-collection statistics: arguments available
for mutation per test (paper: >60 nodes), successful mutations per base
test (paper: ~45 per 1000 mutations), and the query-graph size profile
(paper: 2372 vertices / 2989 edges on average).  Absolute numbers scale
with the synthetic kernel; the bench reports them side by side.
"""

import numpy as np

from benchmarks.conftest import MUTATIONS_PER_TEST, write_metrics, write_result
from repro.graphs import build_query_graph
from repro.kernel import Executor


def test_bench_dataset_stats(benchmark, kernel_68, trained_68):
    dataset = trained_68.dataset

    def compute():
        stats = dataset.stats()
        executor = Executor(kernel_68)
        graph_nodes, graph_edges, arg_nodes = [], [], []
        for index in range(min(len(dataset.programs), 40)):
            program = dataset.programs[index]
            coverage = dataset.coverages[index]
            frontier = kernel_68.frontier(coverage.blocks)
            graph = build_query_graph(
                program, coverage, kernel_68, set(list(frontier)[:8])
            )
            graph_nodes.append(len(graph.nodes))
            graph_edges.append(len(graph.edges))
            arg_nodes.append(
                len([n for n in graph.nodes if n.arg_path is not None])
            )
        return stats, graph_nodes, graph_edges, arg_nodes

    stats, graph_nodes, graph_edges, arg_nodes = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    success_rate = (
        stats["avg_samples_per_base"] / MUTATIONS_PER_TEST * 1000.0
    )
    lines = [
        "§5.1 Dataset statistics (paper -> measured)",
        f"  base tests: 0.98M -> {stats['base_tests']}",
        "  args available for mutation per test: >60 -> "
        f"{stats['avg_mutation_sites']:.1f} mutable sites "
        f"({np.mean(arg_nodes):.1f} argument graph nodes)",
        "  successful mutations per 1000: ~45 -> "
        f"{success_rate:.1f}",
        f"  avg ground-truth label size: 8 -> {stats['avg_label_size']:.1f}",
        f"  graph vertices: 2372 -> {np.mean(graph_nodes):.0f}",
        f"  graph edges: 2989 -> {np.mean(graph_edges):.0f}",
        f"  examples: train {stats['train_examples']}, "
        f"val {stats['validation_examples']}, "
        f"eval {stats['evaluation_examples']}",
    ]
    write_result("dataset_stats.txt", "\n".join(lines))
    write_metrics("dataset_stats.json", {
        "dataset.base_tests": stats["base_tests"],
        "dataset.avg_mutation_sites": stats["avg_mutation_sites"],
        "dataset.success_per_1000": success_rate,
        "dataset.avg_label_size": stats["avg_label_size"],
        "dataset.graph_nodes": float(np.mean(graph_nodes)),
        "dataset.graph_edges": float(np.mean(graph_edges)),
    })
    assert stats["avg_mutation_sites"] > 10
    assert success_rate > 5
