"""PR 4 trajectory gate: the analytics stack on a tiny traced campaign.

One fully-observed oracle campaign on the "tiny" kernel produces the
three headline numbers the CI bench-gate tracks across PRs —
tests/virtual-second, p95 inference queue delay, and coverage at a
fixed virtual budget.  The run is deterministic, so the committed
``BENCH_PR4.json`` baseline must reproduce byte-for-byte; any drift
beyond the ``flag_regressions`` threshold in the bad direction fails
the bench.
"""

import json
import os

from benchmarks.conftest import RESULTS_DIR, write_metrics, write_result
from repro.kernel import build_kernel
from repro.observe import (
    Observer,
    SLOEngine,
    campaign_report,
    default_rules,
    flag_regressions,
)
from repro.rng import split
from repro.snowplow import CampaignConfig
from repro.snowplow.campaign import _build_snowplow_loop
from repro.syzlang import ProgramGenerator

BASELINE = os.path.join(RESULTS_DIR, "BENCH_PR4.json")


def _traced_campaign():
    """The tiny observed campaign the CI bench-gate re-runs."""
    kernel = build_kernel("6.8", seed=1, size="tiny")
    config = CampaignConfig(
        horizon=2400.0, runs=1, seed=11, seed_corpus_size=12,
        sample_interval=300.0,
    )
    observer = Observer(slo=SLOEngine(default_rules()))
    loop = _build_snowplow_loop(
        kernel, None, 7, config, oracle=True, observer=observer
    )
    seeds = ProgramGenerator(
        kernel.table, split(7, "seed-corpus")
    ).seed_corpus(config.seed_corpus_size)
    loop.seed(seeds)
    stats = loop.run()
    return loop, stats, observer


def test_bench_pr4_analytics_gate(benchmark):
    loop, stats, observer = benchmark.pedantic(
        _traced_campaign, rounds=1, iterations=1
    )
    throughput = stats.executions / loop.clock.now
    queue_delay_p95 = loop.service.stats.queue_delay.p95
    new_edges = len(loop.accumulated.edges)

    # Read the committed baseline before write_metrics replaces it.
    baseline = None
    if os.path.exists(BASELINE):
        with open(BASELINE) as handle:
            baseline = json.load(handle)

    # Series names reuse the diff heuristics' direction tags:
    # "executions"/"new_edges" are lower-is-worse, "delay" higher-is-worse.
    fresh_path = write_metrics("BENCH_PR4.json", {
        "bench.executions_per_second": round(throughput, 3),
        "bench.queue_delay_p95": round(queue_delay_p95, 3),
        "bench.new_edges_at_budget": float(new_edges),
    })
    with open(fresh_path) as handle:
        fresh = json.load(handle)

    alerts = observer.evaluate_slo()
    report = campaign_report(
        observer.registry.snapshot(), store=observer.timeseries,
        alerts=alerts, rules=observer.slo.rules,
        title="PR 4 bench-gate campaign",
    )
    write_result("BENCH_PR4.txt", report.rstrip("\n"))

    # The campaign itself must stay healthy: no critical alerts.
    assert not [alert for alert in alerts if alert.severity == "critical"]

    # Trajectory gate: compare against the committed baseline.  (A
    # first run with no baseline seeds it and trivially passes.)
    if baseline is None:
        baseline = fresh
    assert flag_regressions(baseline, fresh) == []
