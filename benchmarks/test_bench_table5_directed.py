"""Table 5: directed kernel fuzzing, SyzDirect vs Snowplow-D.

Paper shape: on bug-related target code locations, most easy targets are
reached quickly by both systems (speedups near 1x, sometimes slightly
below due to inference overhead); the hard, deeply-guarded targets are
where PMM shines — 8.5x faster on the 19 mutually-reached targets, plus
2 targets only Snowplow-D reaches and 3 reached by neither.
"""

import numpy as np

from benchmarks.conftest import write_metrics, write_result
from repro.snowplow import CampaignConfig, format_table5, run_directed_campaign
from repro.snowplow.campaign import default_directed_targets

HOUR = 3600.0


def test_bench_table5_directed(benchmark, kernel_68, trained_68):
    targets = default_directed_targets(kernel_68, count=10)
    config = CampaignConfig(
        horizon=2 * HOUR, runs=2, seed=41, seed_corpus_size=30,
    )

    results = benchmark.pedantic(
        run_directed_campaign,
        args=(kernel_68, trained_68, targets, config),
        rounds=1, iterations=1,
    )
    text = format_table5(results, kernel_68.version) + (
        "\npaper: 8.5x subtotal speedup on 19 common targets, "
        "2 Snowplow-D-only targets, 3 unreached"
    )
    write_result("table5_directed.txt", text)

    both_syz, both_snow = [], []
    snow_only = 0
    reached_any = 0
    for modes in results.values():
        syz_times = [
            r.time_to_target for r in modes["syzdirect"] if r.reached
        ]
        snow_times = [
            r.time_to_target for r in modes["snowplow_d"] if r.reached
        ]
        if syz_times or snow_times:
            reached_any += 1
        if syz_times and snow_times:
            both_syz.append(np.mean(syz_times))
            both_snow.append(np.mean(snow_times))
        elif snow_times:
            snow_only += 1
    # Shape: both reach a majority of targets; on common targets
    # Snowplow-D is at least competitive in aggregate (the paper's 8.5x
    # comes from a few very hard targets; at this scale we assert the
    # ordering with a noise margin).
    write_metrics("table5_directed.json", {
        "table5.targets": len(targets),
        "table5.reached_any": reached_any,
        "table5.common_targets": len(both_snow),
        "table5.snowplow_only": snow_only,
        "table5.mean_time.syzdirect": float(sum(both_syz)),
        "table5.mean_time.snowplow_d": float(sum(both_snow)),
    })
    assert reached_any >= len(targets) // 2
    assert both_snow, "no commonly-reached targets"
    assert sum(both_snow) <= sum(both_syz) * 1.2
