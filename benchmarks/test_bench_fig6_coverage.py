"""Figure 6: edge coverage over 24 virtual hours, Snowplow vs Syzkaller.

Paper shape to reproduce, per kernel release (6.8 trained-on, 6.9/6.10
generalization):

- Snowplow's final mean edge coverage exceeds Syzkaller's
  (paper: +7.0 % / +8.6 % / +7.7 %),
- Snowplow reaches Syzkaller's final coverage early
  (paper: 4.8x-5.2x speedup),
- the min/max bands separate after the early hours.

Scale: 12 virtual hours (before the synthetic kernel saturates),
fewer repeats than the paper's 5.
"""

import pytest

from benchmarks.conftest import write_metrics, write_result
from repro.snowplow import (
    CampaignConfig,
    format_fig6,
    run_coverage_campaign,
)

HOUR = 3600.0
RUNS = 2
HORIZON = 12 * HOUR
SEED_CORPUS = 500


def _campaign(kernel, trained, oracle=False):
    config = CampaignConfig(
        horizon=HORIZON, runs=RUNS, seed=7,
        seed_corpus_size=SEED_CORPUS, sample_interval=1800.0,
    )
    return run_coverage_campaign(kernel, trained, config, oracle=oracle)


@pytest.mark.parametrize("version", ["6.8", "6.9", "6.10"])
def test_bench_fig6_coverage(
    benchmark, version, kernel_68, kernel_69, kernel_610, trained_68
):
    kernel = {"6.8": kernel_68, "6.9": kernel_69, "6.10": kernel_610}[version]
    result = benchmark.pedantic(
        _campaign, args=(kernel, trained_68), rounds=1, iterations=1
    )
    paper = {"6.8": (7.0, 5.2), "6.9": (8.6, 4.8), "6.10": (7.7, 4.8)}
    improvement, speedup = paper[version]
    text = format_fig6([result]) + (
        f"\ndiscovery AUC ratio (Snowplow/Syzkaller): "
        f"{result.discovery_auc_ratio():.3f}"
        f"\npaper: +{improvement}% final coverage, {speedup}x speedup"
    )
    write_result(f"fig6_{version.replace('.', '_')}.txt", text)
    write_metrics(f"fig6_{version.replace('.', '_')}.json", {
        "fig6.final_mean.syzkaller": result.syzkaller_final_mean,
        "fig6.final_mean.snowplow": result.snowplow_final_mean,
        "fig6.improvement_pct": result.coverage_improvement,
        "fig6.speedup": result.speedup,
        "fig6.auc_ratio": result.discovery_auc_ratio(),
    })
    # At laptop training scale the learned model's F1 (~0.36 vs the
    # paper's 84) captures only part of the white-box effect; assert
    # that Snowplow is at least competitive throughout, and see
    # test_bench_fig6_oracle_upper_bound for the asserted paper shape.
    assert result.discovery_auc_ratio() > 0.97
    assert result.snowplow_final_mean > result.syzkaller_final_mean * 0.95


def test_bench_fig6_oracle_upper_bound(benchmark, kernel_68, trained_68):
    """The white-box localization mechanism itself (perfect localizer):
    this is where the paper's Fig. 6 shape must appear — higher final
    coverage and a clear speedup to Syzkaller's final level."""
    result = benchmark.pedantic(
        _campaign, args=(kernel_68, trained_68),
        kwargs={"oracle": True}, rounds=1, iterations=1,
    )
    text = format_fig6([result]) + (
        f"\ndiscovery AUC ratio (oracle/Syzkaller): "
        f"{result.discovery_auc_ratio():.3f}"
        "\n(upper bound: perfect argument localization; the paper's "
        "trained PMM approaches this with 44M samples)"
    )
    write_result("fig6_oracle_upper_bound.txt", text)
    write_metrics("fig6_oracle_upper_bound.json", {
        "fig6.final_mean.syzkaller": result.syzkaller_final_mean,
        "fig6.final_mean.oracle": result.snowplow_final_mean,
        "fig6.improvement_pct": result.coverage_improvement,
        "fig6.speedup": result.speedup,
        "fig6.auc_ratio": result.discovery_auc_ratio(),
    })
    assert result.snowplow_final_mean > result.syzkaller_final_mean
    assert result.coverage_improvement > 2.0
    assert result.speedup > 1.5
