"""Robustness bench: coverage under faults vs fault-free.

The acceptance experiment for the failure model (DESIGN.md, "Failure
model & graceful degradation"): one fixed seed run twice — clean, and
under a fault plan combining a serving outage, random VM hangs, flaky
corpus writes and a mid-run worker kill with checkpoint/resume.  At
bench scale the faulted run must finish within 15% of the fault-free
coverage while the failure ledger shows every fault class actually
fired.
"""

from benchmarks.conftest import write_metrics, write_result
from repro.faults import FaultPlan
from repro.snowplow import CampaignConfig, run_fault_tolerance_campaign

HORIZON = 2400.0


def test_bench_fault_tolerance(benchmark, kernel_68, trained_68, tmp_path):
    config = CampaignConfig(
        horizon=HORIZON, runs=1, seed=11, seed_corpus_size=40,
        sample_interval=300.0,
    )
    plan = (
        FaultPlan(seed=42)
        .with_rate("executor", 0.01)
        .with_rate("corpus_store", 0.05)
        .with_window("inference", 600.0, 1200.0)
        .with_window("campaign_crash", 1500.0, 1501.0)
    )

    def run():
        return run_fault_tolerance_campaign(
            kernel_68, trained_68, config, plan,
            checkpoint_interval=600.0,
            checkpoint_dir=str(tmp_path / "ckpts"),
            observe=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    faulted = result.faulted
    lines = [
        "Robustness: coverage under faults vs fault-free "
        f"({HORIZON:.0f} virtual s, plan seed {plan.seed})",
        f"  fault-free final edges : {result.fault_free.final_edges}",
        f"  faulted final edges    : {faulted.final_edges}",
        f"  coverage ratio         : {result.coverage_ratio:.3f} "
        f"({result.degradation_pct:.1f}% degradation)",
        f"  VM restarts            : {faulted.vm_restarts}",
        f"  lost/failed inferences : {faulted.inference_failures}",
        f"  heuristic fallbacks    : {faulted.heuristic_fallbacks}",
        f"  corpus write retries   : {faulted.corpus_write_retries}",
        f"  checkpoints / resumes  : {result.checkpoints_taken} / "
        f"{faulted.resumes}",
    ]
    write_result("faults_degradation.txt", "\n".join(lines))
    # The faulted run's live registry, topped up with the headline
    # comparison numbers, in the same shape `--observe-dir` exports.
    registry = result.observer.registry
    registry.gauge("bench.fault_free_edges").set(
        float(result.fault_free.final_edges)
    )
    registry.gauge("bench.coverage_ratio").set(result.coverage_ratio)
    write_metrics("faults_degradation.json", registry)

    # The faults really happened ...
    assert result.resumed and faulted.resumes >= 1
    assert faulted.vm_restarts >= 1
    assert faulted.inference_failures > 0
    assert faulted.corpus_write_retries > 0
    # ... and the campaign degraded gracefully (ISSUE acceptance: 15%).
    assert result.degraded_gracefully(tolerance_pct=15.0), (
        f"degradation {result.degradation_pct:.1f}% exceeds 15%"
    )
