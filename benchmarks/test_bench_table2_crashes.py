"""Tables 2 & 3: the exhaustive crash campaign.

Paper shape (7-day, 2 runs): Snowplow finds a substantial set of NEW
crashes (67 and 46; 86 unique) while Syzkaller finds none — only known
(Syzbot-backlog) crashes are rediscovered by both, with Snowplow finding
at least as many known ones.  ~66 % of Snowplow's new crashes get a
reproducer; categories are dominated by serious manifestations (GPF,
paging fault, KASAN OOB).

Scale: 24 virtual hours per run instead of 7 days, 2 runs.
"""

import pytest

from benchmarks.conftest import write_metrics, write_result
from repro.snowplow import (
    CampaignConfig,
    SnowplowConfig,
    format_table2,
    format_table3,
    run_crash_campaign,
)

HOUR = 3600.0

_RESULT_CACHE: dict = {}


@pytest.fixture(scope="module")
def crash_campaign(kernel_68, trained_68):
    if "result" not in _RESULT_CACHE:
        config = CampaignConfig(
            horizon=24 * HOUR, runs=2, seed=23,
            seed_corpus_size=400, sample_interval=4 * HOUR, snowplow=SnowplowConfig(),
        )
        _RESULT_CACHE["result"] = run_crash_campaign(
            kernel_68, trained_68, config, reproduce=True
        )
    return _RESULT_CACHE["result"]


def test_bench_table2_crashes(benchmark, crash_campaign):
    result = benchmark.pedantic(
        lambda: crash_campaign, rounds=1, iterations=1
    )
    rows = result.table2_rows()
    text = format_table2(result) + (
        "\npaper: Snowplow new 67/46, known 14/13; "
        "Syzkaller new 0/0, known 8/11"
    )
    write_result("table2_crashes.txt", text)
    write_metrics("table2_crashes.json", {
        "table2.snowplow.new_crashes": sum(rows["snowplow_new"]),
        "table2.snowplow.known_crashes": sum(rows["snowplow_known"]),
        "table2.syzkaller.new_crashes": sum(rows["syzkaller_new"]),
        "table2.syzkaller.known_crashes": sum(rows["syzkaller_known"]),
    })
    # Shape: Snowplow surfaces previously-unknown crashes, and both
    # fuzzers rediscover the known backlog.  (The Snowplow-vs-Syzkaller
    # new-crash comparison is recorded in the table; at laptop scale and
    # 2 seeds it is too noisy to gate on.)
    assert sum(rows["snowplow_new"]) >= 1
    assert sum(rows["snowplow_known"]) >= 1
    assert sum(rows["syzkaller_known"]) >= 1


def test_bench_table3_categories(benchmark, crash_campaign):
    crashes = benchmark.pedantic(
        crash_campaign.unique_new_crashes, rounds=1, iterations=1
    )
    text = format_table3(crashes) + (
        "\npaper: 57 with reproducer / 30 without; GPF and paging "
        "faults dominate"
    )
    write_result("table3_categories.txt", text)
    assert crashes, "the campaign must surface new crashes"
    with_repro = sum(1 for crash in crashes if crash.has_reproducer)
    write_metrics("table3_categories.json", {
        "table3.unique_new_crashes": len(crashes),
        "table3.with_reproducer": with_repro,
    })
    # Most (but not all) crashes should reproduce, as in the paper's 66%.
    assert with_repro >= 1
