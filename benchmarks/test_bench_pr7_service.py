"""PR 7 service gate: multiplexing overhead and per-campaign isolation.

One campaign spec (tiny kernel, 0.2 virtual hours, two workers over a
sharded corpus hub, oracle localizer) is run standalone and then
multiplexed with 1, 3, and 7 other tenants on a shared fleet.
Isolation means the tracked campaign's results — edges,
executions, hub syncs, its full signature — must be *identical* at every
concurrency level, so the committed ``BENCH_PR7.json`` baseline
reproduces byte-for-byte and ``flag_regressions`` gates the rest.  The
orchestrator's wall-clock overhead versus running the loops directly is
recorded as a diagnostic (untagged name, so nondeterministic timing
never trips the gate).
"""

import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, write_metrics, write_result
from repro.cluster import ClusterConfig
from repro.kernel import build_kernel
from repro.observe import flag_regressions
from repro.service import Request, ServiceServer, encode_signature
from repro.snowplow import build_cluster, fuzz_campaign_config, fuzz_run_seed

BASELINE = os.path.join(RESULTS_DIR, "BENCH_PR7.json")

HOURS = 0.2
SEED_CORPUS = 8
CONCURRENCY = (2, 4, 8)


def _spec(seed):
    return {
        "tenant": f"tenant-{seed}", "size": "tiny", "mode": "oracle",
        "hours": HOURS, "seed": seed, "seed_corpus": SEED_CORPUS,
        "workers": 2, "shards": 2,
    }


def _multiplexed(campaigns):
    """Run ``campaigns`` concurrent tenants; per-campaign payloads for
    the tracked seed-1 job plus its final hub-sync count."""
    server = ServiceServer(fleet_size=16, time_slice=120.0)
    job_ids = {}
    for seed in range(1, campaigns + 1):
        response = server.handle(
            Request("POST", "/campaigns", _spec(seed))
        )
        assert response.status == 201, response.body
        job_ids[seed] = response.body["job"]["job_id"]
    started = time.perf_counter()
    server.handle(Request("POST", "/advance", {}))
    elapsed = time.perf_counter() - started
    tracked = server.handle(
        Request("GET", f"/campaigns/{job_ids[1]}/result")
    ).body["result"]
    return tracked, tracked["hub"]["accepted"], elapsed


def _standalone():
    kernel = build_kernel("6.8", seed=1, size="tiny")
    config = fuzz_campaign_config(HOURS, 1, SEED_CORPUS)
    run_seed = fuzz_run_seed(1, kernel.version)
    cluster = build_cluster(
        kernel, None, run_seed, config,
        ClusterConfig(workers=2, shards=2), oracle=True,
    )
    started = time.perf_counter()
    result = cluster.run()
    return result, time.perf_counter() - started


def _bench_service():
    stats, solo_wall = _standalone()
    solo_signature = encode_signature(stats.signature())
    by_level = {n: _multiplexed(n) for n in CONCURRENCY}
    return stats, solo_wall, solo_signature, by_level


def test_bench_pr7_service_gate(benchmark):
    stats, solo_wall, solo_signature, by_level = benchmark.pedantic(
        _bench_service, rounds=1, iterations=1
    )

    # Isolation: the tracked campaign is bit-identical at every
    # concurrency level and identical to the standalone loop.
    for result, _, _ in by_level.values():
        assert result["signature"] == solo_signature
    executions = {r["executions"] for r, _, _ in by_level.values()}
    syncs = {s for _, s, _ in by_level.values()}
    assert len(executions) == 1 and len(syncs) == 1

    tracked = by_level[CONCURRENCY[0]][0]
    # Overhead: multiplexing 8 campaigns vs running 8 standalone loops
    # (approximated by 8x the measured solo wall time).
    wall_x8 = by_level[8][2]
    overhead_pct = 100.0 * (wall_x8 - 8 * solo_wall) / (8 * solo_wall)

    baseline = None
    if os.path.exists(BASELINE):
        with open(BASELINE) as handle:
            baseline = json.load(handle)

    # Deterministic series carry direction tags ("executions",
    # "new_edges", "corpus_size" are lower-is-worse); the wall-clock
    # overhead series is deliberately untagged so timing noise is
    # reported but never gates.
    fresh_path = write_metrics("BENCH_PR7.json", {
        "bench.service.executions": float(tracked["executions"]),
        "bench.service.new_edges_at_budget": float(tracked["final_edges"]),
        "bench.service.corpus_size": float(tracked["corpus_size"]),
        "bench.service.hub_accepted_per_campaign": float(
            by_level[CONCURRENCY[0]][1]
        ),
        "bench.service.isolation_holds": 1.0,
        "bench.service.orchestrator_overhead_pct": round(overhead_pct, 1),
    })
    with open(fresh_path) as handle:
        fresh = json.load(handle)

    lines = [
        "PR 7 service bench: one tracked campaign, multiplexed.",
        f"{'concurrency':>12} {'edges':>8} {'executions':>11} "
        f"{'hub accept':>10} {'identical':>10}",
        f"{'standalone':>12} {stats.merged.final_edges:>8} "
        f"{stats.merged.executions:>11} {stats.hub_stats.accepted:>10} "
        f"{'yes':>10}",
    ]
    for n, (result, sync_count, _) in sorted(by_level.items()):
        identical = "yes" if result["signature"] == solo_signature else "NO"
        lines.append(
            f"{n:>12} {result['final_edges']:>8} "
            f"{result['executions']:>11} {sync_count:>10.0f} "
            f"{identical:>10}"
        )
    lines.append(
        f"orchestrator overhead at x8: {overhead_pct:+.1f}% wall "
        f"(diagnostic, not gated)"
    )
    write_result("BENCH_PR7.txt", "\n".join(lines))

    if baseline is None:
        baseline = fresh
    assert flag_regressions(baseline, fresh) == []
