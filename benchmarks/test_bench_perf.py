"""§5.5 performance characteristics.

Paper numbers: the inference machine saturates at ~57 queries/second
with 0.69 s mean latency; fuzzing throughput is essentially unchanged by
the integration (Snowplow 383 vs Syzkaller 390 tests/s) because
inference runs off the critical path.  The bench reproduces both using
the paper-rate cost model.
"""

import numpy as np

from benchmarks.conftest import write_metrics, write_result
from repro.pmm.serve import InferenceService
from repro.rng import derive_seed, split
from repro.snowplow import CampaignConfig
from repro.snowplow.campaign import (
    _build_snowplow_loop,
    _build_syzkaller_loop,
)
from repro.syzlang import ProgramGenerator
from repro.vclock import CostModel


def test_bench_inference_saturation(benchmark):
    """Drive the serving simulation to saturation."""

    def saturate():
        service = InferenceService(
            lambda query: query, latency=0.69, servers=39, max_queue=10_000
        )
        now = 0.0
        horizon = 60.0
        submitted = 0
        # Clients submit far faster than the pool can serve.
        while now < horizon:
            for _ in range(4):
                service.submit(submitted, now)
                submitted += 1
            now += 0.01
        completed = len(service.poll(now))
        remaining_capacity = service.pending_count()
        throughput = completed / now
        return throughput, service.saturation_throughput

    measured, theoretical = benchmark.pedantic(
        saturate, rounds=1, iterations=1
    )
    lines = [
        "§5.5 Inference performance (paper -> measured)",
        f"  saturation throughput: ~57 q/s -> {measured:.1f} q/s "
        f"(pool capacity {theoretical:.1f} q/s)",
        "  mean service latency: 0.69 s (configured)",
    ]
    write_result("perf_inference.txt", "\n".join(lines))
    write_metrics("perf_inference.json", {
        "perf.saturation_qps": measured,
        "perf.pool_capacity_qps": theoretical,
    })
    assert 50 < measured < 62


def test_bench_fuzzing_throughput(benchmark, kernel_68, trained_68):
    """Snowplow's loop throughput matches Syzkaller's (async inference).

    Run both loops for the same virtual horizon with the paper-rate cost
    model and compare tests/virtual-second.
    """
    config = CampaignConfig(
        horizon=30.0,  # 30 paper-seconds at 390 tests/s ≈ 11.7k tests
        runs=1, seed=3, seed_corpus_size=60,
        sample_interval=10.0, cost=CostModel.paper(),
    )

    def run_both():
        results = {}
        for mode in ("syzkaller", "snowplow"):
            run_seed = derive_seed(91, mode)
            if mode == "syzkaller":
                loop = _build_syzkaller_loop(kernel_68, run_seed, config)
            else:
                loop = _build_snowplow_loop(
                    kernel_68, trained_68, run_seed, config
                )
            seeds = ProgramGenerator(
                kernel_68.table, split(run_seed, "s")
            ).seed_corpus(config.seed_corpus_size)
            loop.seed(seeds)
            stats = loop.run()
            results[mode] = stats.executions / loop.clock.now
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    ratio = results["snowplow"] / results["syzkaller"]
    lines = [
        "§5.5 Fuzzing throughput (paper -> measured, tests per virtual s)",
        f"  Syzkaller: 390 -> {results['syzkaller']:.0f}",
        f"  Snowplow:  383 -> {results['snowplow']:.0f}",
        f"  ratio: 0.98 -> {ratio:.2f}",
    ]
    write_result("perf_throughput.txt", "\n".join(lines))
    write_metrics("perf_throughput.json", {
        "perf.tests_per_s.syzkaller": results["syzkaller"],
        "perf.tests_per_s.snowplow": results["snowplow"],
        "perf.throughput_ratio": ratio,
    })
    # Asynchronous inference must not cost more than a few percent.
    assert ratio > 0.90


def test_bench_async_vs_blocking_ablation(benchmark, kernel_68, trained_68):
    """DESIGN.md ablation: blocking inference collapses throughput."""

    def run_both():
        results = {}
        for label, cost in (
            ("async", CostModel.paper()),
            ("blocking", CostModel.paper().blocking_inference()),
        ):
            config = CampaignConfig(
                horizon=30.0, runs=1, seed=5, seed_corpus_size=40,
                sample_interval=10.0, cost=cost,
            )
            run_seed = derive_seed(93, label)
            loop = _build_snowplow_loop(
                kernel_68, trained_68, run_seed, config
            )
            seeds = ProgramGenerator(
                kernel_68.table, split(run_seed, "s")
            ).seed_corpus(config.seed_corpus_size)
            loop.seed(seeds)
            stats = loop.run()
            results[label] = stats.executions / loop.clock.now
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        "Ablation: asynchronous vs blocking inference "
        "(tests per virtual second)",
        f"  async:    {results['async']:.0f}",
        f"  blocking: {results['blocking']:.0f}",
        f"  slowdown: {results['async'] / max(results['blocking'], 1e-9):.0f}x",
    ]
    write_result("perf_ablation_async.txt", "\n".join(lines))
    write_metrics("perf_ablation_async.json", {
        "perf.tests_per_s.async": results["async"],
        "perf.tests_per_s.blocking": results["blocking"],
    })
    assert results["blocking"] < results["async"] / 5
