"""Design ablations called out in DESIGN.md.

- §3.1 target construction: the paper's noisy option (c) versus the
  rejected exact option (a);
- assembly-encoder masked-LM pretraining on versus off;
- the §3.4 fallback randomness (pure-PMM localization versus hybrid).
"""

import numpy as np

from benchmarks.conftest import write_metrics, write_result
from repro.graphs import AsmVocab, GraphEncoder
from repro.kernel import Executor
from repro.pmm import (
    PMM,
    PMMConfig,
    DatasetConfig,
    TrainConfig,
    Trainer,
    harvest_mutations,
    masked_lm_pretrain,
)
from repro.pmm.asm_encoder import AsmEncoder
from repro.pmm.pretrain import PretrainConfig
from repro.rng import make_rng
from repro.syzlang import ProgramGenerator

_SMALL_TRAIN = TrainConfig(
    epochs=2, batch_size=8, max_examples_per_epoch=300,
    max_validation_examples=60, seed=2,
)


def _dataset(kernel, strategy):
    generator = ProgramGenerator(kernel.table, make_rng(60))
    executor = Executor(kernel)
    corpus = generator.seed_corpus(50)
    return harvest_mutations(
        kernel, executor, generator, corpus,
        DatasetConfig(
            mutations_per_test=80, seed=6, target_strategy=strategy
        ),
    )


def _train(kernel, dataset, asm_encoder=None, seed=7):
    vocab = AsmVocab.build(kernel)
    encoder = GraphEncoder(vocab, kernel.table)
    model = PMM(
        len(vocab), encoder.num_syscalls,
        PMMConfig(dim=32, gnn_layers=2, asm_layers=1, seed=seed),
        asm_encoder=asm_encoder,
    )
    trainer = Trainer(model, dataset, kernel, encoder, _SMALL_TRAIN)
    trainer.train()
    holdout = (dataset.evaluation or dataset.validation)[:120]
    return trainer.evaluate(holdout)


def test_bench_ablation_target_noise(benchmark, kernel_68):
    """Option (c) noisy targets vs option (a) exact new coverage."""

    def run():
        noisy = _train(kernel_68, _dataset(kernel_68, "noisy"))
        exact = _train(kernel_68, _dataset(kernel_68, "exact"))
        return noisy, exact

    noisy, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: §3.1 target construction (held-out F1)",
        f"  noisy frontier sampling (option c, chosen): {noisy.f1:.3f}",
        f"  exact new coverage (option a, rejected):    {exact.f1:.3f}",
    ]
    write_result("ablation_target_noise.txt", "\n".join(lines))
    write_metrics("ablation_target_noise.json", {
        "ablation.f1.noisy": noisy.f1,
        "ablation.f1.exact": exact.f1,
    })
    # The paper argues (c) trains a more robust model; at minimum the
    # noisy variant must not be much worse.
    assert noisy.f1 > exact.f1 * 0.8


def test_bench_ablation_pretraining(benchmark, kernel_68):
    """BERT-style masked-LM pretraining of the assembly encoder."""

    def run():
        dataset = _dataset(kernel_68, "noisy")
        vocab = AsmVocab.build(kernel_68)
        scratch = _train(kernel_68, dataset, seed=8)
        pretrained_encoder = AsmEncoder(
            len(vocab), dim=32, heads=4, layers=1, rng=make_rng(9)
        )
        losses = masked_lm_pretrain(
            pretrained_encoder, kernel_68, vocab,
            PretrainConfig(steps=80, batch_size=32, seed=10),
        )
        warm = _train(kernel_68, dataset, asm_encoder=pretrained_encoder,
                      seed=8)
        return scratch, warm, losses

    scratch, warm, losses = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: assembly-encoder masked-LM pretraining",
        f"  MLM loss {losses[0]:.2f} -> {losses[-1]:.2f} over "
        f"{len(losses)} steps",
        f"  F1 from scratch:    {scratch.f1:.3f}",
        f"  F1 with pretraining: {warm.f1:.3f}",
    ]
    write_result("ablation_pretraining.txt", "\n".join(lines))
    write_metrics("ablation_pretraining.json", {
        "ablation.mlm_loss.first": losses[0],
        "ablation.mlm_loss.last": losses[-1],
        "ablation.f1.scratch": scratch.f1,
        "ablation.f1.pretrained": warm.f1,
    })
    assert losses[-1] < losses[0]  # the encoder does learn the corpus


def test_bench_ablation_fallback_probability(
    benchmark, kernel_68, trained_68
):
    """§3.4's fallback randomness: pure-PMM vs hybrid localization."""
    from repro.rng import derive_seed, split
    from repro.snowplow import CampaignConfig, SnowplowConfig
    from repro.snowplow.campaign import _build_snowplow_loop

    def run():
        results = {}
        for label, fallback in (("hybrid", 0.10), ("pure-pmm", 0.0)):
            config = CampaignConfig(
                horizon=4 * 3600.0, runs=1, seed=71, seed_corpus_size=200,
                sample_interval=1800.0,
                snowplow=SnowplowConfig(fallback_argument_prob=fallback),
            )
            run_seed = derive_seed(72, label)
            loop = _build_snowplow_loop(
                kernel_68, trained_68, run_seed, config
            )
            seeds = ProgramGenerator(
                kernel_68.table, split(run_seed, "s")
            ).seed_corpus(config.seed_corpus_size)
            loop.seed(seeds)
            results[label] = loop.run().final_edges
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: §3.4 fallback random argument localization "
        "(final edges, 4 virtual hours)",
        f"  hybrid (fallback prob 0.10): {results['hybrid']}",
        f"  pure PMM (no fallback):      {results['pure-pmm']}",
    ]
    write_result("ablation_fallback.txt", "\n".join(lines))
    write_metrics("ablation_fallback.json", {
        "ablation.final_edges.hybrid": results["hybrid"],
        "ablation.final_edges.pure_pmm": results["pure-pmm"],
    })
    assert results["hybrid"] > 0 and results["pure-pmm"] > 0
