#!/usr/bin/env python
"""Directed fuzzing: SyzDirect vs Snowplow-D (the §5.4 experiment).

Picks bug-related target code locations in the synthetic kernel and
measures the virtual time each directed fuzzer needs to *reach* (cover)
them, printing a Table 5-style summary.
"""

from repro.kernel import build_kernel
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.snowplow import (
    CampaignConfig,
    format_table5,
    run_directed_campaign,
    train_pmm,
)
from repro.snowplow.campaign import default_directed_targets


def main() -> None:
    kernel = build_kernel("6.8", seed=1, size="small")
    trained = train_pmm(
        kernel,
        seed=0,
        corpus_size=40,
        dataset_config=DatasetConfig(mutations_per_test=60, seed=3),
        pmm_config=PMMConfig(dim=32, gnn_layers=2, asm_layers=1, seed=5),
        train_config=TrainConfig(
            epochs=2, batch_size=8, max_examples_per_epoch=300,
            max_validation_examples=50,
        ),
    )

    targets = default_directed_targets(kernel, count=6)
    print(f"targets ({len(targets)}):")
    for target in targets:
        block = kernel.blocks[target]
        print(f"  block {target} — {block.label} "
              f"(handler {kernel.handler_of_block[target]})")

    config = CampaignConfig(
        horizon=2 * 3600.0, runs=2, seed=31, seed_corpus_size=20,
    )
    results = run_directed_campaign(kernel, trained, targets, config)
    print()
    print(format_table5(results, kernel.version))


if __name__ == "__main__":
    main()
