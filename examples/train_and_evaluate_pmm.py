#!/usr/bin/env python
"""The §5.1/§5.2 pipeline: harvest, train, and score PMM vs Rand.K.

Reproduces the Table 1 protocol at laptop scale: collect successful
argument mutations with random fuzzing, build the noisy-target training
examples, train PMM with validation-F1 model selection, then compare
against the random-K localizer on held-out base tests.  Optionally
pre-trains the assembly encoder with the BERT masked-token recipe first.
"""

import numpy as np

from repro.fuzzer import RandomLocalizer
from repro.graphs import AsmVocab, GraphEncoder
from repro.kernel import Executor, build_kernel
from repro.pmm import (
    DatasetConfig,
    PMM,
    PMMConfig,
    TrainConfig,
    Trainer,
    evaluate_selector,
    harvest_mutations,
    masked_lm_pretrain,
)
from repro.pmm.asm_encoder import AsmEncoder
from repro.pmm.pretrain import PretrainConfig
from repro.rng import make_rng
from repro.snowplow import format_table1
from repro.syzlang import ProgramGenerator


def main() -> None:
    kernel = build_kernel("6.8", seed=1, size="small")
    generator = ProgramGenerator(kernel.table, make_rng(2))
    executor = Executor(kernel)

    print("== Harvesting successful mutations (§3.1) ==")
    corpus = generator.seed_corpus(60)
    dataset = harvest_mutations(
        kernel, executor, generator, corpus,
        DatasetConfig(mutations_per_test=80, seed=3),
    )
    for key, value in dataset.stats().items():
        print(f"  {key}: {value}")

    print("\n== Pretraining the assembly encoder (BERT recipe) ==")
    vocab = AsmVocab.build(kernel)
    encoder = GraphEncoder(vocab, kernel.table)
    asm_encoder = AsmEncoder(
        len(vocab), dim=32, heads=4, layers=1, rng=make_rng(4)
    )
    losses = masked_lm_pretrain(
        asm_encoder, kernel, vocab, PretrainConfig(steps=60, seed=5)
    )
    print(f"  MLM loss: {losses[0]:.3f} -> {losses[-1]:.3f}")

    print("\n== Training PMM ==")
    model = PMM(
        len(vocab), encoder.num_syscalls,
        PMMConfig(dim=32, gnn_layers=2, asm_layers=1, seed=6),
        asm_encoder=asm_encoder,
    )
    trainer = Trainer(
        model, dataset, kernel, encoder,
        TrainConfig(epochs=3, batch_size=8, max_examples_per_epoch=500,
                    max_validation_examples=60),
    )
    for report in trainer.train():
        validation = report.validation
        print(f"  epoch {report.epoch}: loss {report.mean_loss:.4f}"
              + (f", val F1 {validation.f1:.3f}" if validation else ""))

    print("\n== Table 1: PMM vs Rand.K on held-out tests ==")
    holdout = dataset.evaluation[:150]
    pmm_metrics = trainer.evaluate(holdout)
    avg_label = float(np.mean([len(e.labels) for e in dataset.train]))
    k = max(1, int(round(avg_label)))
    localizer = RandomLocalizer(k)
    rng = make_rng(9)
    predictions, truths = [], []
    for example in holdout:
        program = dataset.programs[example.base_index]
        predictions.append(set(localizer.localize(program, None, None, rng)))
        truths.append(set(example.labels))
    baseline = evaluate_selector(predictions, truths)
    print(format_table1(pmm_metrics, baseline, f"Rand.{k}"))


if __name__ == "__main__":
    main()
