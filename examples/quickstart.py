#!/usr/bin/env python
"""Quickstart: build a kernel, train a small PMM, and fuzz with it.

Walks the full Snowplow pipeline at toy scale (a few minutes on a
laptop):

1. build a synthetic kernel release and look around,
2. run the §3.1 data pipeline and train a small PMM,
3. compare the learned localizer against random localization,
4. run a short side-by-side fuzzing campaign.
"""

from repro.kernel import Executor, build_kernel
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.rng import make_rng
from repro.snowplow import (
    CampaignConfig,
    format_fig6,
    run_coverage_campaign,
    train_pmm,
)
from repro.snowplow.fuzzer import PMMLocalizer
from repro.syzlang import ProgramGenerator, serialize_program


def main() -> None:
    print("== 1. The synthetic kernel ==")
    kernel = build_kernel("6.8", seed=1, size="small")
    print(f"kernel {kernel.version}: {kernel.block_count} blocks, "
          f"{kernel.static_edge_count} static edges, "
          f"{len(kernel.bugs)} planted bugs, "
          f"{len(kernel.table)} syscall variants")

    generator = ProgramGenerator(kernel.table, make_rng(7))
    executor = Executor(kernel)
    program = generator.random_program()
    print("\nA random kernel test (syz format):")
    print(serialize_program(program))
    result = executor.run(program)
    print(f"\nexecuted: {len(result.coverage.blocks)} blocks, "
          f"{len(result.coverage.edges)} edges covered")

    print("\n== 2. Train PMM (toy scale) ==")
    trained = train_pmm(
        kernel,
        seed=0,
        corpus_size=40,
        dataset_config=DatasetConfig(mutations_per_test=60, seed=3),
        pmm_config=PMMConfig(dim=32, gnn_layers=2, asm_layers=1, seed=5),
        train_config=TrainConfig(
            epochs=2, batch_size=8, max_examples_per_epoch=300,
            max_validation_examples=50,
        ),
    )
    print(f"dataset: {trained.dataset.stats()}")
    if trained.validation:
        print(f"validation F1: {trained.validation.f1:.3f}")

    print("\n== 3. Learned vs random localization ==")
    localizer = PMMLocalizer(
        trained.model, trained.encoder, kernel, executor
    )
    rng = make_rng(11)
    base = generator.random_program()
    coverage = executor.run(base).coverage
    frontier = sorted(kernel.frontier(coverage.blocks))[:4]
    predicted = localizer.localize(base, coverage, set(frontier), rng)
    print(f"targets: {frontier}")
    print(f"PMM says mutate: {[str(p) for p in predicted]}")

    print("\n== 4. Short side-by-side campaign (2 virtual hours) ==")
    config = CampaignConfig(
        horizon=2 * 3600.0, runs=1, seed=9, seed_corpus_size=60,
        sample_interval=600.0,
    )
    campaign = run_coverage_campaign(kernel, trained, config)
    print(format_fig6([campaign]))


if __name__ == "__main__":
    main()
