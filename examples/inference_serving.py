#!/usr/bin/env python
"""Serving-architecture exploration (§3.4 / §5.5).

Sweeps the inference pool size and compares asynchronous against
blocking integration, reproducing the two §5.5 measurements: saturation
throughput/latency of the model server, and the (non-)impact of
inference on fuzzing throughput.
"""

from repro.kernel import build_kernel
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.pmm.serve import InferenceService
from repro.rng import derive_seed, split
from repro.snowplow import CampaignConfig, train_pmm
from repro.snowplow.campaign import (
    _build_snowplow_loop,
    _build_syzkaller_loop,
)
from repro.syzlang import ProgramGenerator
from repro.vclock import CostModel


def sweep_pool_sizes() -> None:
    print("== Inference saturation vs pool size (0.69 s latency) ==")
    print(f"{'servers':>8} {'q/s':>8}")
    for servers in (1, 8, 20, 39, 64):
        service = InferenceService(
            lambda query: query, latency=0.69, servers=servers,
            max_queue=100_000,
        )
        now, horizon = 0.0, 30.0
        count = 0
        while now < horizon:
            for _ in range(4):
                service.submit(count, now)
                count += 1
            now += 0.01
        completed = len(service.poll(now))
        print(f"{servers:>8} {completed / now:>8.1f}")
    print("paper: 57 q/s at saturation (8 L4 GPUs)")


def compare_integration(kernel, trained) -> None:
    print("\n== Fuzzing throughput: async vs blocking inference ==")
    rows = []
    for label, cost in (
        ("syzkaller", CostModel.paper()),
        ("snowplow-async", CostModel.paper()),
        ("snowplow-blocking", CostModel.paper().blocking_inference()),
    ):
        config = CampaignConfig(
            horizon=20.0, runs=1, seed=3, seed_corpus_size=40,
            sample_interval=5.0, cost=cost,
        )
        run_seed = derive_seed(55, label)
        if label == "syzkaller":
            loop = _build_syzkaller_loop(kernel, run_seed, config)
        else:
            loop = _build_snowplow_loop(kernel, trained, run_seed, config)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "s")
        ).seed_corpus(config.seed_corpus_size)
        loop.seed(seeds)
        stats = loop.run()
        rows.append((label, stats.executions / loop.clock.now))
    for label, throughput in rows:
        print(f"  {label:<20} {throughput:7.0f} tests/s")
    print("paper: Syzkaller 390 vs Snowplow 383 tests/s (async)")


def main() -> None:
    sweep_pool_sizes()
    kernel = build_kernel("6.8", seed=1, size="small")
    trained = train_pmm(
        kernel,
        seed=0,
        corpus_size=30,
        dataset_config=DatasetConfig(mutations_per_test=40, seed=3),
        pmm_config=PMMConfig(dim=16, gnn_layers=1, asm_layers=1,
                             asm_heads=2, seed=5),
        train_config=TrainConfig(
            epochs=1, batch_size=8, max_examples_per_epoch=150,
            max_validation_examples=40,
        ),
    )
    compare_integration(kernel, trained)


if __name__ == "__main__":
    main()
