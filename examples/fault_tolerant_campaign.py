#!/usr/bin/env python
"""Fault-tolerant campaign demo: break everything, lose (almost) nothing.

Runs one fixed-seed Snowplow campaign twice — fault-free, then under a
fault plan that schedules an inference outage, random executor hangs,
flaky corpus writes, and a mid-run worker kill — and prints the failure
ledger next to the coverage the run kept anyway.  The faulted run
checkpoints periodically, is destroyed at the kill time exactly as a
dead worker would be, and resumes from its last checkpoint; the entire
fault schedule replays from the single plan seed.
"""

import tempfile

from repro.faults import FaultPlan
from repro.kernel import build_kernel
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.snowplow import (
    CampaignConfig,
    run_fault_tolerance_campaign,
    train_pmm,
)


def main() -> None:
    kernel = build_kernel("6.8", seed=1, size="small")
    print(f"kernel {kernel.version}: {len(kernel.table.specs)} syscalls")

    trained = train_pmm(
        kernel,
        seed=0,
        corpus_size=30,
        dataset_config=DatasetConfig(mutations_per_test=40, seed=3),
        pmm_config=PMMConfig(dim=16, gnn_layers=1, asm_layers=1,
                             asm_heads=2, seed=5),
        train_config=TrainConfig(
            epochs=1, batch_size=8, max_examples_per_epoch=150,
            max_validation_examples=40,
        ),
    )

    config = CampaignConfig(
        horizon=2400.0, runs=1, seed=11, seed_corpus_size=12,
        sample_interval=300.0,
    )
    plan = (
        FaultPlan(seed=42)
        .with_rate("executor", 0.01)        # ~1% of calls hang the VM
        .with_rate("corpus_store", 0.05)    # flaky corpus writes
        .with_window("inference", 600.0, 1200.0)   # serving outage
        .with_window("campaign_crash", 1500.0, 1501.0)  # worker dies
    )
    print(
        f"\nfault plan (seed {plan.seed}): inference outage 600-1200s, "
        f"worker kill at t={plan.crash_time():.0f}s, executor hang rate "
        f"1%, corpus-store failure rate 5%"
    )

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        result = run_fault_tolerance_campaign(
            kernel, trained, config, plan,
            checkpoint_interval=600.0,
            checkpoint_dir=checkpoint_dir,
        )

    clean, faulted = result.fault_free, result.faulted
    print("\n== failure ledger (faulted run) ==")
    print(f"  resumed from checkpoint : {result.resumed}")
    print(f"  checkpoints taken       : {result.checkpoints_taken}")
    print(f"  VM restarts             : {faulted.vm_restarts}")
    print(f"  exec timeouts           : {faulted.exec_timeouts}")
    print(f"  lost/failed inferences  : {faulted.inference_failures}")
    print(f"  heuristic fallbacks     : {faulted.heuristic_fallbacks}")
    print(f"  corpus write retries    : {faulted.corpus_write_retries}")
    print(f"  breaker trips           : {faulted.breaker_trips}")
    print(f"  breaker state at end    : {faulted.breaker_state}")

    print("\n== coverage: graceful degradation ==")
    print(f"  fault-free final edges  : {clean.final_edges}")
    print(f"  faulted final edges     : {faulted.final_edges}")
    print(f"  ratio                   : {result.coverage_ratio:.3f} "
          f"({result.degradation_pct:.1f}% degradation)")
    verdict = "yes" if result.degraded_gracefully(15.0) else "no"
    print(f"  within 15% tolerance    : {verdict}")


if __name__ == "__main__":
    main()
