#!/usr/bin/env python
"""Cluster campaign demo: the fleet, at laptop scale.

Sweeps fleet sizes over one fixed campaign seed — every worker fuzzing
its own virtual 40 minutes, syncing its corpus through the hub and
funnelling localization queries into one dynamically batched serving
tier — then kills the largest fleet mid-run and resumes it from a
checkpoint to show the continuation is bit-identical to never having
crashed the scheduler loop.

Uses the white-box oracle localizer so the demo runs in seconds; swap
``oracle=True`` for a trained PMM (see train_and_evaluate_pmm.py) for
the full pipeline.
"""

from repro.cluster import ClusterConfig
from repro.kernel import build_kernel
from repro.rng import derive_seed
from repro.snowplow import (
    CampaignConfig,
    build_cluster,
    cluster_state,
    format_scaling,
    restore_cluster_state,
    run_scaling_campaign,
)


def main() -> None:
    kernel = build_kernel("6.8", seed=1, size="small")
    config = CampaignConfig(
        horizon=2400.0, runs=1, seed=11, seed_corpus_size=12,
        sample_interval=300.0,
    )
    cluster_config = ClusterConfig(workers=4, sync_interval=300.0)

    # --- the sweep: coverage vs fleet size ---
    result = run_scaling_campaign(
        kernel, None, config, worker_counts=(1, 2, 4),
        cluster_config=cluster_config, oracle=True,
    )
    print(format_scaling(result))
    tier = result.points[-1].result.service_stats
    if tier is not None:
        print(
            f"\nserving tier at 4 workers: {tier.completed} predictions, "
            f"mean batch {tier.mean_batch_size:.2f}, queue delay "
            f"p50/p95/max = {tier.p50_queue_delay:.0f}/"
            f"{tier.p95_queue_delay:.0f}/{tier.max_queue_delay:.0f}s"
        )

    # --- kill + resume, bit-identically ---
    run_seed = derive_seed(config.seed, "scaling", kernel.version)

    def build():
        return build_cluster(
            kernel, None, run_seed, config,
            cluster_config=ClusterConfig(
                workers=4, sync_interval=cluster_config.sync_interval
            ),
            oracle=True,
        )

    victim = build()
    victim.run_until(config.horizon / 2)
    state = cluster_state(victim)
    finals = []
    for _ in range(2):
        fresh = build()
        restore_cluster_state(fresh, state)
        finals.append(fresh.run())
    identical = (
        finals[0].final_edges == finals[1].final_edges
        and finals[0].merged.executions == finals[1].merged.executions
    )
    print(
        f"\nkilled the 4-worker fleet at t={config.horizon / 2:.0f}s and "
        f"resumed twice from the checkpoint: "
        f"{finals[0].final_edges} edges, "
        f"{finals[0].merged.executions} executions — "
        f"{'bit-identical' if identical else 'MISMATCH'}"
    )


if __name__ == "__main__":
    main()
