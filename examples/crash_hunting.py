#!/usr/bin/env python
"""Crash hunting: rediscover the ATA pass-through bug (Table 4, bug #1).

Shows the §5.3.2 workflow end to end: a crash campaign on the synthetic
kernel, triage against the known-crash (Syzbot) backlog, syz-repro-style
reproducer minimisation, and Table 3 categorisation.  Finishes with the
hand-crafted ATA reproducer: an ``ioctl(SCSI_IOCTL_SEND_COMMAND)`` whose
CDB selects ATA_16 PASS-THROUGH, protocol PIO, command NOP, and whose
reply length exceeds the buffer — the two-decade-old out-of-bounds write
the paper diagnosed.
"""

from repro.fuzzer.crash import CrashTriage
from repro.kernel import Executor, build_kernel
from repro.pmm import DatasetConfig, PMMConfig, TrainConfig
from repro.snowplow import (
    CampaignConfig,
    format_table2,
    format_table3,
    run_crash_campaign,
    train_pmm,
)
from repro.syzlang import serialize_program
from repro.syzlang.program import Call, Program, zero_value
from repro.syzlang.stdlib import ATA_16, ATA_NOP, ATA_PROT_PIO


def ata_reproducer(kernel) -> Program:
    """The minimised ATA bug reproducer, built by hand."""
    open_spec = kernel.table.lookup("open$scsi")
    ioctl_spec = kernel.table.lookup("ioctl$SCSI_IOCTL_SEND_COMMAND")
    open_call = Call(open_spec, [zero_value(t) for _, t in open_spec.args])
    ioctl_call = Call(ioctl_spec, [zero_value(t) for _, t in ioctl_spec.args])
    program = Program([open_call, ioctl_call])
    ioctl_call.args[0].producer = 0
    command = ioctl_call.args[2].pointee
    command.fields[1].value = 0x10000        # outlen >> buffer size
    cdb = command.fields[2]
    cdb.fields[0].value = ATA_16             # opcode: ATA_16 PASS-THROUGH
    cdb.fields[1].value = ATA_PROT_PIO       # protocol: PIO
    cdb.fields[3].value = ATA_NOP            # ata command: NOP
    return program


def main() -> None:
    kernel = build_kernel("6.8", seed=1, size="small")
    print("== The hand-crafted ATA reproducer ==")
    program = ata_reproducer(kernel)
    print(serialize_program(program))
    executor = Executor(kernel, seed=42)
    result = executor.run(program)
    assert result.crashed, "the planted ATA bug must fire"
    print(f"\ncrash: {result.crash.description}")
    print(f"attributed bug: {result.crash.bug.bug_id} "
          f"(depth {result.crash.bug.depth}, "
          f"corrupts memory: {result.crash.bug.corrupts_memory})")

    print("\n== Triage and minimisation ==")
    triage = CrashTriage(executor, known_signatures=set())
    crash = triage.observe(program, result.crash)
    reproducer = triage.reproduce(crash)
    print(f"category: {crash.category.value}")
    print(f"reproducer found: {reproducer is not None} "
          f"({len(reproducer)} calls)")

    print("\n== A short crash campaign (Tables 2/3 protocol) ==")
    trained = train_pmm(
        kernel,
        seed=0,
        corpus_size=40,
        dataset_config=DatasetConfig(mutations_per_test=60, seed=3),
        pmm_config=PMMConfig(dim=32, gnn_layers=2, asm_layers=1, seed=5),
        train_config=TrainConfig(
            epochs=2, batch_size=8, max_examples_per_epoch=300,
            max_validation_examples=50,
        ),
    )
    config = CampaignConfig(
        horizon=4 * 3600.0, runs=1, seed=21, seed_corpus_size=80,
        sample_interval=1800.0,
    )
    campaign = run_crash_campaign(kernel, trained, config)
    print(format_table2(campaign))
    print()
    print(format_table3(campaign.unique_new_crashes()))


if __name__ == "__main__":
    main()
