"""Handler control-flow graphs and static analysis over them.

Each system-call variant gets one :class:`HandlerCFG`: a rooted DAG of
:class:`~repro.kernel.blocks.BasicBlock`.  Successor convention: a
condition block has exactly two successors, ``succs[0]`` for the branch
*not taken* (condition false) and ``succs[1]`` for *taken*; other blocks
have at most one successor, and exit blocks have none.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import KernelBuildError
from repro.kernel.blocks import BasicBlock, BlockRole

__all__ = ["HandlerCFG"]


@dataclass
class HandlerCFG:
    """The control-flow graph of one syscall handler."""

    syscall: str
    entry: int
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    succs: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def successors(self, block_id: int) -> tuple[int, ...]:
        return self.succs.get(block_id, ())

    def block_ids(self) -> list[int]:
        return list(self.blocks)

    def exits(self) -> list[int]:
        return [bid for bid, blk in self.blocks.items() if blk.is_exit()]

    def validate(self) -> None:
        """Structural invariants; raises :class:`KernelBuildError`.

        - the entry exists and every block is reachable from it,
        - condition blocks have exactly 2 successors, exits none,
          other blocks exactly one,
        - the graph is acyclic (handlers never loop in this model),
        - every successor id resolves to a block in this CFG.
        """
        if self.entry not in self.blocks:
            raise KernelBuildError(f"{self.syscall}: entry block missing")
        for block_id, block in self.blocks.items():
            succs = self.successors(block_id)
            for succ in succs:
                if succ not in self.blocks:
                    raise KernelBuildError(
                        f"{self.syscall}: block {block_id} has unknown "
                        f"successor {succ}"
                    )
            if block.role is BlockRole.CONDITION:
                if len(succs) != 2:
                    raise KernelBuildError(
                        f"{self.syscall}: condition block {block_id} has "
                        f"{len(succs)} successors"
                    )
            elif block.is_exit() or block.role is BlockRole.CRASH:
                if succs:
                    raise KernelBuildError(
                        f"{self.syscall}: terminal block {block_id} has "
                        "successors"
                    )
            elif len(succs) != 1:
                raise KernelBuildError(
                    f"{self.syscall}: block {block_id} has {len(succs)} "
                    "successors, expected 1"
                )
        self._check_reachability()
        self._check_acyclic()

    def _check_reachability(self) -> None:
        seen = {self.entry}
        frontier = deque([self.entry])
        while frontier:
            block_id = frontier.popleft()
            for succ in self.successors(block_id):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        unreachable = set(self.blocks) - seen
        if unreachable:
            raise KernelBuildError(
                f"{self.syscall}: unreachable blocks {sorted(unreachable)}"
            )

    def _check_acyclic(self) -> None:
        in_degree = {block_id: 0 for block_id in self.blocks}
        for block_id in self.blocks:
            for succ in self.successors(block_id):
                in_degree[succ] += 1
        ready = deque(
            block_id for block_id, deg in in_degree.items() if deg == 0
        )
        visited = 0
        while ready:
            block_id = ready.popleft()
            visited += 1
            for succ in self.successors(block_id):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if visited != len(self.blocks):
            raise KernelBuildError(f"{self.syscall}: CFG contains a cycle")

    def depth_of(self, block_id: int) -> int:
        """Number of condition blocks on the shortest entry path to
        ``block_id`` — the "how hard to reach" metric used by the bug
        planter and the directed-fuzzing analysis."""
        best: dict[int, int] = {self.entry: 0}
        frontier = deque([self.entry])
        while frontier:
            current = frontier.popleft()
            bump = 1 if self.blocks[current].role is BlockRole.CONDITION else 0
            for succ in self.successors(current):
                cost = best[current] + bump
                if succ not in best or cost < best[succ]:
                    best[succ] = cost
                    frontier.append(succ)
        if block_id in best:
            return best[block_id]
        raise KernelBuildError(
            f"{self.syscall}: block {block_id} unreachable from entry"
        )
