"""Deterministic execution of test programs against a synthetic kernel.

The executor reproduces the §3.1 data-collection environment: every test
starts from the same initial kernel state (VM-snapshot semantics), calls
run sequentially in a single thread, and — unless the ``noise`` knob is
raised — no asynchronous kernel activity pollutes coverage.  Setting
``noise > 0`` re-introduces the nondeterministic interrupt coverage the
paper eliminates by replacing RPC with virtio, which the determinism
ablation uses to quantify label noise.

Real QEMU guests also *hang*: a test wedges the VM, the fuzzer's
watchdog kills it, and the VM is restarted from snapshot.  With the
watchdog enabled (the default whenever a fault injector is attached), a
runaway or injected-hang call is reported as a structured
:class:`ExecTimeout` on the result — coverage collected up to the kill
is kept, the VM-restart counter ticks, and the caller charges the
restart cost — instead of raising.  Without the watchdog the same
condition raises :class:`~repro.errors.ExecutorHang`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecutionError, ExecutorHang
from repro.faults import FaultInjector
from repro.kernel.blocks import BlockRole
from repro.kernel.build import Kernel
from repro.kernel.bugs import CrashReport
from repro.kernel.conditions import scalar_view
from repro.kernel.coverage import Coverage
from repro.kernel.state import KernelState
from repro.rng import make_rng
from repro.syzlang.program import Program, ResourceValue

__all__ = ["ExecResult", "ExecTimeout", "Executor"]

_MAX_STEPS_PER_CALL = 100_000
# Probability that a non-reproducible (concurrency-flavoured) bug fires
# when its guarded block is reached.
_FLAKY_TRIGGER_PROB = 0.35


@dataclass(frozen=True)
class ExecTimeout:
    """A call hung and the watchdog killed the VM.

    ``steps`` is how many blocks the call executed before the kill;
    ``reason`` is ``"injected_hang"`` (fault plan) or ``"step_budget"``
    (a genuinely runaway CFG walk).
    """

    call_index: int
    steps: int
    reason: str


@dataclass
class ExecResult:
    """Outcome of executing one program."""

    coverage: Coverage
    crash: CrashReport | None = None
    retvals: list[int] = field(default_factory=list)
    blocks_executed: int = 0
    # Operands of the compare instructions executed along the path —
    # what KCOV's comparison tracing (KCOV_CMP) exposes to Syzkaller,
    # which seeds integer mutations from them.
    comparison_operands: set[int] = field(default_factory=set)
    # Set when the watchdog killed a hung call; the program's remaining
    # calls did not run and the VM must be restarted from snapshot.
    timeout: ExecTimeout | None = None

    @property
    def crashed(self) -> bool:
        return self.crash is not None

    @property
    def timed_out(self) -> bool:
        return self.timeout is not None


class Executor:
    """Runs programs on a kernel, collecting coverage.

    One executor can run many programs; each run gets a pristine
    :class:`KernelState` (the VM snapshot is reloaded).
    """

    def __init__(
        self,
        kernel: Kernel,
        noise: float = 0.0,
        seed: int = 0,
        injector: FaultInjector | None = None,
        watchdog: bool | None = None,
        profiler=None,
    ):
        if not 0.0 <= noise <= 1.0:
            raise ExecutionError(f"noise must be in [0, 1], got {noise}")
        self.kernel = kernel
        self.noise = noise
        self.injector = injector
        # Watchdog defaults on exactly when faults can be injected; a
        # bare executor keeps raising so malformed CFGs stay loud.
        self.watchdog = (injector is not None) if watchdog is None else watchdog
        self.vm_restarts = 0
        self.profiler = profiler
        self._rng = make_rng(seed)

    def run(self, program: Program, now: float = 0.0) -> ExecResult:
        """Execute ``program`` from a fresh snapshot.

        ``now`` is the caller's virtual time, consulted only by the
        fault injector's outage windows (the executor itself never
        advances the clock).
        """
        if self.profiler is None:
            return self._run(program, now)
        with self.profiler.section("executor.run"):
            return self._run(program, now)

    def _run(self, program: Program, now: float) -> ExecResult:
        state = KernelState()
        retvals: list[int] = []
        call_traces: list[list[int]] = []
        crash: CrashReport | None = None
        timeout: ExecTimeout | None = None
        executed = 0
        operands: set[int] = set()
        for call_index, call in enumerate(program.calls):
            hang = (
                self.injector is not None
                and self.injector.fires("executor", now)
            )
            flat = self._resolve_scalars(program, call_index, retvals)
            try:
                trace, retval, crash = self._run_call(
                    call, flat, state, operands
                )
            except ExecutorHang as error:
                if not self.watchdog:
                    raise
                trace = list(getattr(error, "trace", []))
                timeout = ExecTimeout(
                    call_index=call_index, steps=len(trace),
                    reason="step_budget",
                )
            if hang and timeout is None:
                # The injected hang strikes partway through the call:
                # the watchdog kills the VM, keeping the coverage the
                # guest reported before it wedged.
                cut = max(1, int(self.injector.uniform("executor") * len(trace)))
                trace = trace[:cut]
                timeout = ExecTimeout(
                    call_index=call_index, steps=len(trace),
                    reason="injected_hang",
                )
            executed += len(trace)
            if self.noise > 0 and self._rng.random() < self.noise:
                trace = self._inject_interrupt(trace)
            call_traces.append(trace)
            if timeout is not None:
                self.vm_restarts += 1
                break
            retvals.append(retval)
            if crash is not None:
                break
        coverage = Coverage.from_traces(call_traces)
        return ExecResult(
            coverage=coverage,
            crash=crash,
            retvals=retvals,
            blocks_executed=executed,
            comparison_operands=operands,
            timeout=timeout,
        )

    # ----- internals -----

    def _resolve_scalars(
        self, program: Program, call_index: int, retvals: list[int]
    ) -> dict[tuple[int, ...], int]:
        """Scalar view of every argument path of one call.

        Resource arguments resolve to the runtime handle returned by
        their producer call (0 when the producer failed or is NULL).
        """
        flat: dict[tuple[int, ...], int] = {}
        for path, value in program.walk_call(call_index):
            if isinstance(value, ResourceValue):
                producer = value.producer
                if producer is None or producer >= len(retvals):
                    flat[path.elements] = 0
                else:
                    flat[path.elements] = max(retvals[producer], 0)
            else:
                flat[path.elements] = scalar_view(value)
        return flat

    def _run_call(
        self,
        call,
        flat: dict[tuple[int, ...], int],
        state: KernelState,
        operands: set[int] | None = None,
    ) -> tuple[list[int], int, CrashReport | None]:
        cfg = self.kernel.handlers.get(call.spec.full_name)
        if cfg is None:
            raise ExecutionError(
                f"kernel {self.kernel.version} has no handler for "
                f"{call.spec.full_name!r}"
            )
        trace: list[int] = []
        current = cfg.entry
        for _ in range(_MAX_STEPS_PER_CALL):
            block = cfg.blocks[current]
            trace.append(current)
            for key, flag_value in block.effects:
                state.flags[key] = flag_value
            if block.role is BlockRole.CRASH:
                bug = block.bug
                assert bug is not None
                triggers = bug.reproducible or (
                    self._rng.random() < _FLAKY_TRIGGER_PROB
                )
                if triggers:
                    if bug.corrupts_memory:
                        description = bug.corruption_description(self._rng)
                    else:
                        description = bug.description()
                    report = CrashReport(
                        bug=bug, block_id=current, description=description,
                    )
                    return trace, -5, report
                # Near-miss: the race window closed; fall through.
                return trace, -5, None
            if block.role is BlockRole.EXIT_SUCCESS:
                retval = 0
                produces = call.spec.produces
                if produces is not None:
                    retval = state.open_handle(kind=produces.name)
                return trace, retval, None
            if block.role is BlockRole.EXIT_ERROR:
                return trace, -block.errno, None
            succs = cfg.successors(current)
            if block.role is BlockRole.CONDITION:
                condition = block.condition
                assert condition is not None
                if operands is not None and hasattr(condition, "operand"):
                    operands.add(condition.operand)
                taken = condition.evaluate(flat, state)
                current = succs[1] if taken else succs[0]
            else:
                current = succs[0]
        error = ExecutorHang(
            f"handler {call.spec.full_name} exceeded {_MAX_STEPS_PER_CALL} "
            "steps"
        )
        error.trace = trace
        raise error

    def _inject_interrupt(self, trace: list[int]) -> list[int]:
        """Splice the interrupt pseudo-handler into a call trace."""
        irq = self.kernel.interrupt_trace
        if not irq:
            return trace
        start = int(self._rng.integers(0, len(irq)))
        slice_len = int(self._rng.integers(1, len(irq) - start + 1))
        cut = int(self._rng.integers(0, len(trace) + 1))
        return trace[:cut] + irq[start : start + slice_len] + trace[cut:]
