"""Crash symbolization (the syz-symbolize role, §5.3.2).

The paper runs ``syz-symbolize`` on kernel console logs to locate the
kernel code involved in each crash.  The synthetic analogue maps a crash
report back to its handler, subsystem, and the guard-condition chain
protecting the crash site — the information a developer needs to judge
reachability and craft a patch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.kernel.blocks import BlockRole
from repro.kernel.build import Kernel
from repro.kernel.bugs import CrashReport
from repro.kernel.conditions import ArgCondition, StateCondition

__all__ = ["SymbolizedCrash", "symbolize"]


@dataclass
class SymbolizedCrash:
    """Where a crash lives and what guards it."""

    bug_id: str
    description: str
    syscall: str
    subsystem: str
    block_label: str
    depth: int
    # The argument conditions on the shortest guard chain, innermost
    # first: (syscall, path_elements, op, operand).
    argument_guards: list[tuple[str, tuple[int, ...], str, int]] = field(
        default_factory=list
    )
    # State flags that gate the path, if any.
    state_guards: list[str] = field(default_factory=list)

    def report(self) -> str:
        """A human-readable symbolization report."""
        lines = [
            f"crash:     {self.description}",
            f"bug id:    {self.bug_id}",
            f"location:  {self.block_label} "
            f"[{self.subsystem}] via {self.syscall}",
            f"depth:     {self.depth} guarding conditions",
        ]
        for syscall, path, op, operand in self.argument_guards:
            trail = ".".join(str(element) for element in path)
            lines.append(
                f"  guard: {syscall} arg {trail} {op} 0x{operand:x}"
            )
        for key in self.state_guards:
            lines.append(f"  state: {key}")
        return "\n".join(lines)


def symbolize(kernel: Kernel, crash: CrashReport) -> SymbolizedCrash:
    """Locate ``crash`` in the kernel and reconstruct its guard chain."""
    block_id = crash.block_id
    block = kernel.blocks.get(block_id)
    if block is None:
        raise ExecutionError(f"crash block {block_id} not in this kernel")
    handler = kernel.handler_of_block.get(block_id, "")
    cfg = kernel.handlers.get(handler)
    argument_guards: list[tuple[str, tuple[int, ...], str, int]] = []
    state_guards: list[str] = []
    current = block_id
    seen: set[int] = set()
    while True:
        conditional_preds = [
            pred for pred in kernel.preds.get(current, ())
            if kernel.blocks[pred].role is BlockRole.CONDITION
            and pred not in seen
        ]
        if not conditional_preds:
            break
        pred = conditional_preds[0]
        seen.add(pred)
        condition = kernel.blocks[pred].condition
        if isinstance(condition, ArgCondition):
            argument_guards.append(
                (
                    condition.syscall,
                    condition.path_elements,
                    condition.op.value,
                    condition.operand,
                )
            )
        elif isinstance(condition, StateCondition):
            state_guards.append(condition.key)
        current = pred
    depth = cfg.depth_of(block_id) if cfg is not None else len(argument_guards)
    return SymbolizedCrash(
        bug_id=crash.bug.bug_id,
        description=crash.description,
        syscall=handler,
        subsystem=block.subsystem,
        block_label=block.label,
        depth=depth,
        argument_guards=argument_guards,
        state_guards=state_guards,
    )
