"""Mutable kernel state threaded through a test's execution.

The executor creates a fresh state per test (VM-snapshot semantics,
§3.1), so coverage is a deterministic function of the program.  State
carries the file-descriptor table (resource handles produced by earlier
calls), the synthetic filesystem, and a generic flag map that handler
blocks write through their effects and read through
:class:`~repro.kernel.conditions.StateCondition` — the mechanism that
gives the synthetic kernel implicit cross-call dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelState", "FileObject", "HandleEntry"]


@dataclass
class FileObject:
    """A file in the synthetic filesystem."""

    name: bytes
    size: int = 0
    mode: int = 0o644
    is_dir: bool = False


@dataclass
class HandleEntry:
    """One open kernel object (fd)."""

    handle: int
    kind: str  # resource-kind name, e.g. "file_fd"
    flags: int = 0
    target: bytes = b""  # file name / device the handle refers to


@dataclass
class KernelState:
    """Per-test kernel state (reset to the snapshot for every test)."""

    handles: dict[int, HandleEntry] = field(default_factory=dict)
    files: dict[bytes, FileObject] = field(default_factory=dict)
    flags: dict[str, int] = field(default_factory=dict)
    _next_handle: int = 3  # 0..2 are std{in,out,err}

    def open_handle(self, kind: str, flags: int = 0, target: bytes = b"") -> int:
        handle = self._next_handle
        self._next_handle += 1
        self.handles[handle] = HandleEntry(handle, kind, flags, target)
        return handle

    def close_handle(self, handle: int) -> bool:
        return self.handles.pop(handle, None) is not None

    def handle_valid(self, handle: int) -> bool:
        return handle in self.handles

    def touch_file(self, name: bytes, mode: int = 0o644) -> FileObject:
        file_object = self.files.get(name)
        if file_object is None:
            file_object = FileObject(name=name, mode=mode)
            self.files[name] = file_object
        return file_object
