"""Kernel basic blocks and their synthetic assembly."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["BasicBlock", "BlockRole"]


class BlockRole(enum.Enum):
    """What a block does inside its handler CFG."""

    ENTRY = "entry"
    BODY = "body"
    CONDITION = "condition"
    EXIT_SUCCESS = "exit_success"
    EXIT_ERROR = "exit_error"
    CRASH = "crash"


@dataclass
class BasicBlock:
    """One kernel basic block.

    ``block_id`` is globally unique within a built kernel.  ``asm`` is the
    block's synthetic x86-like assembly as a flat token tuple; condition
    blocks embed the slot token of the argument they compare
    (:mod:`repro.syzlang.slots`), which is the signal PMM learns from.
    """

    block_id: int
    label: str
    subsystem: str
    role: BlockRole = BlockRole.BODY
    asm: tuple[str, ...] = ()
    # Condition for CONDITION blocks (ArgCondition | StateCondition).
    condition: object | None = None
    # Effects applied when the block executes: list of (key, value) pairs
    # written to KernelState.flags.
    effects: tuple[tuple[str, int], ...] = ()
    # Bug planted on this block, if any (set for CRASH role).
    bug: object | None = None
    # Error number returned by EXIT_ERROR blocks.
    errno: int = 0

    def is_exit(self) -> bool:
        return self.role in (BlockRole.EXIT_SUCCESS, BlockRole.EXIT_ERROR)

    def signature(self) -> tuple:
        """Content signature, independent of ``block_id``.

        Two blocks from different kernel builds are "the same code" iff
        their signatures match: labels never embed block ids, assembly
        tokens and condition operands are pure functions of the handler
        seed, and bugs are identified by their stable ``bug_id``.  The
        release-diff pass (:mod:`repro.analyze.impact`) pairs blocks
        across builds and compares these.
        """
        condition = self.condition
        if condition is None:
            cond_key: tuple = ()
        elif hasattr(condition, "path_elements"):
            cond_key = (
                "arg", condition.syscall, tuple(condition.path_elements),
                condition.op.name, condition.operand,
            )
        else:
            cond_key = ("state", condition.key, condition.operand)
        bug_id = getattr(self.bug, "bug_id", None)
        return (
            self.role.value, self.label, self.subsystem, cond_key,
            tuple(self.effects), bug_id, self.errno, tuple(self.asm),
        )

    def __repr__(self) -> str:
        return f"<block {self.block_id} {self.label} {self.role.value}>"
