"""Coverage traces, blocks, and edges.

Mirrors the paper's post-processing of KCOV traces (§5.3.1): a trace is
the sequence of executed kernel basic blocks; *edge* coverage is the set
of unique directional pairs of consecutive blocks within one system
call's kernel path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Coverage"]


@dataclass
class Coverage:
    """Coverage of one test execution (or an accumulated union).

    ``call_traces`` holds the per-call block sequences for a single
    execution; accumulated coverages (built via :meth:`merge`) keep only
    the block and edge sets.
    """

    call_traces: list[list[int]] = field(default_factory=list)
    blocks: set[int] = field(default_factory=set)
    edges: set[tuple[int, int]] = field(default_factory=set)

    @classmethod
    def from_traces(cls, call_traces: list[list[int]]) -> "Coverage":
        coverage = cls(call_traces=[list(trace) for trace in call_traces])
        for trace in call_traces:
            coverage.blocks.update(trace)
            for src, dst in zip(trace, trace[1:]):
                coverage.edges.add((src, dst))
        return coverage

    def merge(self, other: "Coverage") -> None:
        """Accumulate ``other`` into this coverage (block/edge union)."""
        self.blocks |= other.blocks
        self.edges |= other.edges

    def new_blocks(self, baseline: "Coverage") -> set[int]:
        """Blocks covered here but not in ``baseline`` (c_ij \\ c_i)."""
        return self.blocks - baseline.blocks

    def new_edges(self, baseline: "Coverage") -> set[tuple[int, int]]:
        return self.edges - baseline.edges

    def copy(self) -> "Coverage":
        return Coverage(
            call_traces=[list(trace) for trace in self.call_traces],
            blocks=set(self.blocks),
            edges=set(self.edges),
        )

    def __len__(self) -> int:
        return len(self.blocks)
