"""Branch conditions of the synthetic kernel.

A condition block's predicate is evaluated against the flattened argument
values of the current system call and the live :class:`KernelState`.
Each condition also renders itself as assembly tokens; for argument
conditions those tokens include the argument's *slot token*, reproducing
the compiled-kernel property that a data-dependent branch textually
references the memory offset of the value it tests (see
:mod:`repro.syzlang.slots`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.syzlang.program import (
    BufferValue,
    ConstValue,
    IntValue,
    PtrValue,
    ResourceValue,
    Value,
)
from repro.syzlang.slots import slot_token

__all__ = ["CondOp", "ArgCondition", "StateCondition", "imm_token"]


class CondOp(enum.Enum):
    """Comparison operators on a scalar view of an argument."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    GT = "gt"
    MASK_SET = "mask_set"  # value & operand == operand
    MASK_CLEAR = "mask_clear"  # value & operand == 0


_IMM_BUCKETS = (0, 1, 2, 4, 8, 16, 64, 256, 1024, 4096, 65536)


def imm_token(operand: int) -> str:
    """Bucket an immediate into a small token vocabulary.

    Real disassembly has unbounded immediates; bucketing keeps the
    assembly vocabulary compact while preserving magnitude information.
    """
    for bucket in _IMM_BUCKETS:
        if operand <= bucket:
            return f"imm_{bucket:x}"
    return "imm_big"


def scalar_view(value: Value | None) -> int:
    """Reduce an argument value to the integer the kernel branches on.

    Integers are themselves; buffers contribute their length; NULL
    pointers are 0; resources contribute their runtime handle validity
    (resolved by the executor before condition evaluation).
    """
    if value is None:
        return 0
    if isinstance(value, (IntValue, ConstValue)):
        return value.value
    if isinstance(value, BufferValue):
        return len(value.data)
    if isinstance(value, PtrValue):
        return 0 if value.pointee is None else value.address
    if isinstance(value, ResourceValue):
        # The executor substitutes resolved handles; a raw ResourceValue
        # reaching here means "unresolved", treated as invalid.
        return 0
    return 0


@dataclass(frozen=True)
class ArgCondition:
    """A branch on one (sub-)argument of the current call.

    ``path_elements`` addresses the argument inside the call (the same
    convention as :class:`~repro.syzlang.program.ArgPath` minus the call
    index); ``syscall`` is the spec full name, needed for slot tokens.
    """

    syscall: str
    path_elements: tuple[int, ...]
    op: CondOp
    operand: int

    def evaluate(self, flat_args: dict[tuple[int, ...], int], state) -> bool:
        value = flat_args.get(self.path_elements, 0)
        if self.op is CondOp.EQ:
            return value == self.operand
        if self.op is CondOp.NE:
            return value != self.operand
        if self.op is CondOp.LT:
            return value < self.operand
        if self.op is CondOp.GT:
            return value > self.operand
        if self.op is CondOp.MASK_SET:
            return (value & self.operand) == self.operand
        if self.op is CondOp.MASK_CLEAR:
            return (value & self.operand) == 0
        raise AssertionError(f"unhandled op {self.op}")

    def asm_tokens(self) -> tuple[str, ...]:
        slot = slot_token(self.syscall, self.path_elements)
        imm = imm_token(self.operand)
        if self.op in (CondOp.MASK_SET, CondOp.MASK_CLEAR):
            return ("mov", "r10", slot, "test", "r10", imm, "jnz")
        jump = {
            CondOp.EQ: "je",
            CondOp.NE: "jne",
            CondOp.LT: "jb",
            CondOp.GT: "ja",
        }[self.op]
        return ("mov", "r10", slot, "cmp", "r10", imm, jump)


@dataclass(frozen=True)
class StateCondition:
    """A branch on kernel state mutated by earlier calls.

    ``key`` names a flag in :attr:`KernelState.flags`; the branch is taken
    when the flag's value equals ``operand``.  These branches are *not*
    steerable by argument mutation of the current call — the model must
    learn to treat their alternative paths differently.
    """

    key: str
    operand: int = 1

    def evaluate(self, flat_args: dict[tuple[int, ...], int], state) -> bool:
        return state.flags.get(self.key, 0) == self.operand

    def asm_tokens(self) -> tuple[str, ...]:
        return ("mov", "r11", f"state_{self.key}", "test", "r11", "r11", "jnz")
