"""Synthetic kernel releases and their planted-bug inventory.

``build_kernel(version, ...)`` is the one-stop constructor used by tests,
examples, and benchmarks.  Releases 6.8/6.9/6.10 share most handler code
(same per-spec seeds) but later releases add subsystems and perturb a
fraction of handlers, reproducing the API/code churn that the paper's
cross-version generalization experiments (Fig. 6b, 6c) rely on.

The default bug inventory mirrors the paper's findings:

- a set of *known* shallow bugs standing in for the Syzbot backlog
  (both fuzzers rediscover these; they do not count as new),
- *unknown* deep bugs guarded by 3–5 chained argument constraints,
  including the memory-corrupting ATA pass-through bug responsible for
  most of the paper's 86 new crashes, and the six other diagnosed bugs
  of Table 4,
- a few non-reproducible (concurrency-flavoured) bugs, so the
  reproducer success rate lands near the paper's 66 %.
"""

from __future__ import annotations

from repro.kernel.build import BugPlan, Kernel, KernelBuilder, KernelConfig
from repro.kernel.bugs import CrashKind
from repro.syzlang.stdlib import build_standard_table

__all__ = ["build_kernel", "default_bug_plans", "KNOWN_SIZES"]

KNOWN_SIZES = ("tiny", "small", "default", "large")

_SIZE_PARAMS = {
    # "tiny" saturates within a short campaign — for smoke/CI runs and
    # tests that need a genuine coverage plateau, not realism.
    "tiny": dict(segments=(1, 2), nest_depth=1, run_length=(1, 1)),
    "small": dict(segments=(2, 4), nest_depth=1, run_length=(1, 2)),
    "default": dict(segments=(4, 7), nest_depth=3, run_length=(2, 4)),
    "large": dict(segments=(6, 10), nest_depth=4, run_length=(2, 4)),
}


def default_bug_plans() -> tuple[BugPlan, ...]:
    """The standard planted-bug inventory (ATA bug added separately)."""
    known = [
        # The Syzbot backlog: shallow, already-known crashes that any
        # fuzzer rediscovers quickly (Table 2's "Known Crashes" rows).
        BugPlan("known-fs-null", CrashKind.NULL_DEREF, "fs", "do_dentry_open", depth=2, known=True),
        BugPlan("known-fs-warn", CrashKind.WARNING, "fs", "iput", depth=3, known=True),
        BugPlan("known-net-gpf", CrashKind.GPF, "net", "inet_bind", depth=2, known=True),
        BugPlan("known-net-warn", CrashKind.WARNING, "net", "sk_stream_kill_queues", depth=3, known=True),
        BugPlan("known-mm-paging", CrashKind.PAGING_FAULT, "mm", "vma_merge", depth=3, known=True),
        BugPlan("known-ext4-warn", CrashKind.WARNING, "ext4", "ext4_dirty_inode", depth=3, known=True),
        BugPlan("known-epoll-null", CrashKind.NULL_DEREF, "epoll", "ep_remove", depth=2, known=True),
        BugPlan("known-pipe-warn", CrashKind.WARNING, "pipe", "pipe_write", depth=3, known=True),
        BugPlan("known-bpf-gpf", CrashKind.GPF, "bpf", "bpf_check", depth=3, known=True, reproducible=False),
        BugPlan("known-timer-warn", CrashKind.WARNING, "timer", "hrtimer_start_range_ns", depth=2, known=True),
    ]
    unknown = [
        # Table 4's diagnosed bugs (#2-#7; #1, the ATA bug, is added by
        # the builder with hand-crafted conditions).
        BugPlan("uring-tss-gpf", CrashKind.GPF, "io_uring", "native_tss_update_io_bitmap", depth=4, syscall="io_uring_enter"),
        BugPlan("rcu-stall-cov", CrashKind.RCU_STALL, "timer", "__sanitizer_cov_trace_pc", depth=4, syscall="timerfd_settime", reproducible=False),
        BugPlan("gup-stack", CrashKind.WARNING, "mm", "gup_longterm_locked", depth=4, syscall="mmap"),
        BugPlan("ext4-iomap-warn", CrashKind.WARNING, "ext4", "ext4_iomap_begin", depth=3, syscall="pwrite64"),
        BugPlan("ext4-writepages-bug", CrashKind.ASSERT, "ext4", "ext4_do_writepages", depth=3, syscall="fallocate"),
        BugPlan("ext4-search-dir-uaf", CrashKind.OOB, "ext4", "ext4_search_dir", depth=3, syscall="open"),
        # Further deep unknown bugs spread across subsystems so campaign
        # crash counts land in a Table 2/3-like regime.
        BugPlan("net-sendmsg-gpf", CrashKind.GPF, "net", "____sys_sendmsg", depth=4, syscall="sendmsg$inet"),
        BugPlan("net-sockopt-gpf", CrashKind.GPF, "net", "do_ip_setsockopt", depth=4, syscall="setsockopt$sock", reproducible=False),
        BugPlan("fb-paging", CrashKind.PAGING_FAULT, "video", "fb_set_var", depth=4, syscall="ioctl$FBIOPUT_VSCREENINFO"),
        BugPlan("snd-null", CrashKind.NULL_DEREF, "sound", "snd_pcm_hw_params", depth=4, syscall="ioctl$SNDCTL_DSP_SETFMT", reproducible=False),
        BugPlan("known-watchq-paging", CrashKind.PAGING_FAULT, "watch_queue", "watch_queue_set_size", depth=1, known=True, syscall="ioctl$IOC_WATCH_QUEUE_SET_SIZE"),
        BugPlan("bpf-verifier-gpf", CrashKind.GPF, "bpf", "check_mem_access", depth=4, syscall="bpf$PROG_LOAD"),
        BugPlan("splice-other", CrashKind.OTHER, "pipe", "splice_to_pipe", depth=4, syscall="splice", reproducible=False),
    ]
    return tuple(known + unknown)


def build_kernel(
    version: str = "6.8",
    seed: int = 0,
    size: str = "default",
    bug_plans: tuple[BugPlan, ...] | None = None,
    plant_ata_bug: bool = True,
) -> Kernel:
    """Build a synthetic kernel release.

    ``size`` selects handler complexity: "tiny" saturates quickly for
    smoke campaigns, "small" keeps unit tests fast, "default" is used
    by the experiment benches.
    """
    if size not in _SIZE_PARAMS:
        raise ValueError(f"unknown size {size!r}; known: {KNOWN_SIZES}")
    table = build_standard_table(version)
    config = KernelConfig(
        version=version,
        seed=seed,
        bug_plans=default_bug_plans() if bug_plans is None else bug_plans,
        plant_ata_bug=plant_ata_bug,
        **_SIZE_PARAMS[size],
    )
    return KernelBuilder(table, config).build()
