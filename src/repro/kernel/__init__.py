"""The synthetic kernel substrate.

The paper fuzzes real Linux releases under KCOV instrumentation.  This
package substitutes a deterministic synthetic kernel (see DESIGN.md):
every system-call variant gets a control-flow graph of basic blocks with
x86-like assembly, branch predicates over the call's (possibly nested)
argument values and over kernel state mutated by earlier calls, planted
bugs guarded by deep argument constraints, and a coverage-collecting
executor with VM-snapshot semantics.
"""

from repro.kernel.blocks import BasicBlock, BlockRole
from repro.kernel.bugs import Bug, CrashKind, CrashReport
from repro.kernel.conditions import ArgCondition, CondOp, StateCondition
from repro.kernel.coverage import Coverage
from repro.kernel.state import KernelState
from repro.kernel.cfg import HandlerCFG
from repro.kernel.build import Kernel, KernelBuilder, KernelConfig
from repro.kernel.executor import ExecResult, Executor
from repro.kernel.versions import KNOWN_SIZES, build_kernel
from repro.kernel.symbolize import SymbolizedCrash, symbolize

__all__ = [
    "ArgCondition",
    "BasicBlock",
    "BlockRole",
    "Bug",
    "CondOp",
    "Coverage",
    "CrashKind",
    "CrashReport",
    "ExecResult",
    "Executor",
    "HandlerCFG",
    "Kernel",
    "KernelBuilder",
    "KernelConfig",
    "KernelState",
    "StateCondition",
    "SymbolizedCrash",
    "build_kernel",
    "symbolize",
]
