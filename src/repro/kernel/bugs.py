"""Planted kernel bugs and crash reports.

Bugs are blocks in handler CFGs guarded by argument/state constraints.
Reaching a bug block crashes the guest.  Crash descriptions follow the
kernel-oops phrasing that the paper's triage rules (§5.3.2) and crash
categorisation (Table 3) key on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["CrashKind", "Bug", "CrashReport"]


class CrashKind(enum.Enum):
    """Crash manifestations, matching Table 3's categories."""

    NULL_DEREF = "null pointer dereference"
    PAGING_FAULT = "paging fault"
    ASSERT = "explicit assertion violation"
    GPF = "general protection fault"
    OOB = "out of bounds access"
    WARNING = "warning"
    RCU_STALL = "rcu stall"
    OTHER = "other"


_DESCRIPTION_TEMPLATES = {
    CrashKind.NULL_DEREF: "BUG: kernel NULL pointer dereference in {fn}",
    CrashKind.PAGING_FAULT: "BUG: unable to handle page fault for address in {fn}",
    CrashKind.ASSERT: "kernel BUG at {fn}!",
    CrashKind.GPF: "general protection fault in {fn}",
    CrashKind.OOB: "KASAN: slab-out-of-bounds Write in {fn}",
    CrashKind.WARNING: "WARNING in {fn}",
    CrashKind.RCU_STALL: "rcu detected expedited stall in {fn}",
    CrashKind.OTHER: "unregister_netdevice: waiting for lo in {fn}",
}


@dataclass(frozen=True)
class Bug:
    """A planted kernel bug.

    ``depth`` is the number of argument/state conditions guarding the bug
    block — shallow bugs are easy for random mutation to hit, deep ones
    (like the ATA pass-through bug, depth >= 4) effectively require
    white-box argument localization.  ``known`` marks bugs present in the
    synthetic "Syzbot list": crashes matching them do not count as new
    discoveries in the Table 2 bookkeeping.
    """

    bug_id: str
    kind: CrashKind
    subsystem: str
    function: str
    depth: int
    known: bool = False
    # Whether the crash is deterministic given the triggering test.  The
    # paper reproduces 57/87 crashes; concurrency-dependent crashes are
    # modelled as non-reproducible.
    reproducible: bool = True
    # Memory-corrupting bugs (like the ATA out-of-bounds write of Table 4
    # bug #1) overwrite arbitrary kernel pages, so they manifest as many
    # distinct crash signatures at unrelated locations; the paper traces
    # 45 of its 57 reproducible crashes back to this single bug.
    corrupts_memory: bool = False

    def description(self) -> str:
        """The crash-report headline, styled after real kernel oopses."""
        return _DESCRIPTION_TEMPLATES[self.kind].format(fn=self.function)

    def corruption_description(self, rng) -> str:
        """A randomized downstream manifestation of a memory corruptor.

        Occasionally KASAN catches the write at its source, producing the
        primary signature; otherwise the corruption surfaces later at an
        unrelated victim function.
        """
        if rng.random() < 0.2:
            return self.description()
        kinds = (CrashKind.GPF, CrashKind.PAGING_FAULT, CrashKind.NULL_DEREF,
                 CrashKind.OTHER)
        weights = (0.55, 0.27, 0.12, 0.06)
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        victim = _CORRUPTION_VICTIMS[int(rng.integers(len(_CORRUPTION_VICTIMS)))]
        return _DESCRIPTION_TEMPLATES[kind].format(fn=victim)


_CORRUPTION_VICTIMS = (
    "kmem_cache_alloc", "rcu_core", "__alloc_pages", "d_lookup",
    "tcp_sendmsg_locked", "ep_poll_callback", "filemap_read",
    "kfree_rcu_work", "task_work_run", "do_sys_poll", "inode_permission",
    "vfs_write", "sk_buff_release", "timerqueue_add", "anon_vma_clone",
    "__schedule", "handle_mm_fault", "generic_file_write_iter",
    "security_file_permission", "tcp_v4_rcv", "skb_copy_datagram_iter",
    "path_openat", "do_filp_open", "blk_mq_submit_bio",
)


@dataclass(frozen=True)
class CrashReport:
    """A crash observed during execution."""

    bug: Bug
    block_id: int
    description: str

    @property
    def signature(self) -> str:
        """Dedup key: crashes with the same signature are the same bug."""
        return self.description
