"""Synthetic kernel construction.

:class:`KernelBuilder` generates, from a seed, one handler CFG per
syscall variant in a table, plants bugs behind argument-constraint
chains, and assembles the global :class:`Kernel` with the static-analysis
views (predecessors, frontier, distances) that the fuzzer, the dataset
pipeline, and the directed-fuzzing harness need.

Generation principles (see DESIGN.md):

- every *argument condition* block textually embeds the slot token of the
  argument path it branches on, and its operand is drawn from values the
  instantiator can realistically produce, so that (a) random mutation
  occasionally flips branches — yielding training data — and (b) the
  learned localizer has real signal to exploit;
- *state conditions* depend on flags set by other calls of the same
  subsystem, creating the implicit cross-call dependencies that make some
  branches unreachable through argument mutation alone;
- bugs sit behind ``depth`` chained argument conditions: shallow bugs are
  "known" (previously found by the continuous-fuzzing fleet), deep bugs
  are the undiscovered ones Snowplow hunts in §5.3.2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import KernelBuildError
from repro.rng import split
from repro.kernel.blocks import BasicBlock, BlockRole
from repro.kernel.bugs import Bug, CrashKind
from repro.kernel.cfg import HandlerCFG
from repro.kernel.conditions import ArgCondition, CondOp, StateCondition
from repro.syzlang.spec import SyscallSpec, SyscallTable
from repro.syzlang.types import (
    ArrayType,
    BufferType,
    ConstType,
    FlagsType,
    IntType,
    LenType,
    PtrType,
    ResourceType,
    StructType,
    Type,
)
from repro.syzlang.stdlib import (
    ATA_16,
    ATA_NOP,
    ATA_PROT_PIO,
)

__all__ = ["BugPlan", "Kernel", "KernelBuilder", "KernelConfig", "enumerate_type_paths"]

_BODY_OPCODES = (
    "mov", "lea", "add", "sub", "shl", "shr", "and", "or", "xor",
    "push", "pop", "call", "test", "inc", "dec",
)
_REGISTERS = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r12", "r13")


def enumerate_type_paths(spec: SyscallSpec) -> list[tuple[tuple[int, ...], Type]]:
    """All steerable leaf argument paths of a spec (arrays via index 0).

    Returns ``(path_elements, leaf_type)`` pairs for every mutable leaf
    the kernel may branch on.  Constants and resources are excluded —
    resource validity is checked by dedicated guard conditions.
    """
    paths: list[tuple[tuple[int, ...], Type]] = []

    def walk(ty: Type, elements: tuple[int, ...]) -> None:
        if isinstance(ty, (ConstType, ResourceType)):
            return
        if isinstance(ty, PtrType):
            walk(ty.elem, elements + (0,))
            return
        if isinstance(ty, StructType):
            for index, (_, field_ty) in enumerate(ty.fields):
                walk(field_ty, elements + (index,))
            return
        if isinstance(ty, ArrayType):
            walk(ty.elem, elements + (0,))
            return
        paths.append((elements, ty))

    for arg_index, (_, arg_ty) in enumerate(spec.args):
        walk(arg_ty, (arg_index,))
    return paths


def resource_guard_paths(spec: SyscallSpec) -> list[tuple[int, ...]]:
    """Top-level argument paths holding resources (fd guards)."""
    return [
        (index,)
        for index, (_, arg_ty) in enumerate(spec.args)
        if isinstance(arg_ty, ResourceType)
    ]


@dataclass(frozen=True)
class BugPlan:
    """Where and how to plant one bug."""

    bug_id: str
    kind: CrashKind
    subsystem: str
    function: str
    depth: int
    known: bool = False
    reproducible: bool = True
    corrupts_memory: bool = False
    # Pin to a specific syscall variant; otherwise any handler in the
    # subsystem is eligible.
    syscall: str | None = None


@dataclass
class KernelConfig:
    """Size/shape knobs for kernel generation."""

    version: str = "6.8"
    seed: int = 0
    # Number of top-level condition segments per handler.
    segments: tuple[int, int] = (4, 8)
    # Maximum nesting depth of conditions inside a taken branch.
    nest_depth: int = 2
    # Length range of straight-line body runs.
    run_length: tuple[int, int] = (1, 3)
    # Probability that a segment branches on kernel state instead of an
    # argument.
    state_cond_prob: float = 0.18
    # Fraction of handlers regenerated with a version-salted seed for
    # releases after the base one (API churn between releases).
    perturb_fraction: float = 0.15
    bug_plans: tuple[BugPlan, ...] = ()
    plant_ata_bug: bool = True
    # Blocks of the interrupt pseudo-handler (noise source, §3.1).
    interrupt_blocks: int = 12


@dataclass
class Kernel:
    """A built synthetic kernel: handlers plus global static views."""

    version: str
    table: SyscallTable
    handlers: dict[str, HandlerCFG]
    blocks: dict[int, BasicBlock]
    bugs: list[Bug]
    bug_blocks: dict[str, int]
    interrupt_trace: list[int]
    handler_of_block: dict[int, str] = field(default_factory=dict)
    succs: dict[int, tuple[int, ...]] = field(default_factory=dict)
    preds: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.handler_of_block:
            for name, cfg in self.handlers.items():
                for block_id in cfg.blocks:
                    self.handler_of_block[block_id] = name
        if not self.succs:
            for cfg in self.handlers.values():
                self.succs.update(cfg.succs)
        if not self.preds:
            preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
            for src, dsts in self.succs.items():
                for dst in dsts:
                    preds[dst].append(src)
            self.preds = {bid: tuple(ps) for bid, ps in preds.items()}

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    @property
    def static_edge_count(self) -> int:
        return sum(len(dsts) for dsts in self.succs.values())

    def frontier(self, covered: set[int]) -> set[int]:
        """Uncovered blocks one branch away from ``covered`` (§3.1's
        alternative path entries)."""
        result: set[int] = set()
        for block_id in covered:
            for succ in self.succs.get(block_id, ()):
                if succ not in covered:
                    result.add(succ)
        return result

    def distance_from(self, source_blocks: set[int]) -> dict[int, int]:
        """Forward BFS hop counts from a set of blocks."""
        dist = {block_id: 0 for block_id in source_blocks}
        frontier = deque(source_blocks)
        while frontier:
            current = frontier.popleft()
            for succ in self.succs.get(current, ()):
                if succ not in dist:
                    dist[succ] = dist[current] + 1
                    frontier.append(succ)
        return dist

    def distance_to(self, target: int) -> dict[int, int]:
        """Reverse BFS hop counts toward ``target`` (directed fuzzing)."""
        dist = {target: 0}
        frontier = deque([target])
        while frontier:
            current = frontier.popleft()
            for pred in self.preds.get(current, ()):
                if pred not in dist:
                    dist[pred] = dist[current] + 1
                    frontier.append(pred)
        return dist

    def guarding_condition(self, block_id: int) -> ArgCondition | StateCondition | None:
        """The condition of the closest conditional predecessor, if any."""
        for pred in self.preds.get(block_id, ()):
            block = self.blocks[pred]
            if block.role is BlockRole.CONDITION and block.condition is not None:
                return block.condition  # type: ignore[return-value]
        return None

    def blocks_of_subsystem(self, subsystem: str) -> list[int]:
        return [
            block_id
            for block_id, block in self.blocks.items()
            if block.subsystem == subsystem
        ]


class KernelBuilder:
    """Builds a :class:`Kernel` from a syscall table and a config."""

    def __init__(self, table: SyscallTable, config: KernelConfig):
        self.table = table
        self.config = config
        self._next_id = 0
        self._blocks: dict[int, BasicBlock] = {}
        self._bugs: list[Bug] = []
        self._bug_blocks: dict[str, int] = {}

    # ----- low-level block allocation -----

    def _alloc(
        self,
        label: str,
        subsystem: str,
        role: BlockRole,
        asm: tuple[str, ...],
        **kwargs,
    ) -> int:
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = BasicBlock(
            block_id=block_id,
            label=label,
            subsystem=subsystem,
            role=role,
            asm=asm,
            **kwargs,
        )
        return block_id

    def _body_asm(self, rng: np.random.Generator, function: str) -> tuple[str, ...]:
        length = int(rng.integers(3, 7))
        tokens: list[str] = [f"fn_{function}"]
        for _ in range(length):
            opcode = _BODY_OPCODES[int(rng.integers(len(_BODY_OPCODES)))]
            reg = _REGISTERS[int(rng.integers(len(_REGISTERS)))]
            tokens.extend((opcode, reg))
        return tuple(tokens)

    # ----- handler construction -----

    def build_handler(
        self, spec: SyscallSpec, rng: np.random.Generator,
        plans: list[BugPlan],
    ) -> HandlerCFG:
        """Generate the CFG for one syscall variant."""
        cfg = HandlerCFG(syscall=spec.full_name, entry=-1)
        subsystem = spec.subsystem
        function = f"{subsystem}_{spec.name}{('_' + spec.variant) if spec.variant else ''}"

        def body(label: str) -> int:
            return self._alloc(
                f"{spec.full_name}:{label}", subsystem, BlockRole.BODY,
                self._body_asm(rng, function),
            )

        success_exit = self._alloc(
            f"{spec.full_name}:ret_ok", subsystem, BlockRole.EXIT_SUCCESS,
            (f"fn_{function}", "mov", "rax", "imm_0", "ret"),
        )
        error_exit = self._alloc(
            f"{spec.full_name}:ret_err", subsystem, BlockRole.EXIT_ERROR,
            (f"fn_{function}", "mov", "rax", "imm_big", "ret"),
            errno=22,
        )

        arg_paths = enumerate_type_paths(spec)

        # Effects block: successful calls flip subsystem state flags that
        # other handlers' StateConditions read.
        effect_key = f"{subsystem}:{spec.full_name}:done"
        effects_block = self._alloc(
            f"{spec.full_name}:commit", subsystem, BlockRole.BODY,
            self._body_asm(rng, function),
            effects=((effect_key, 1),),
        )
        cfg.succs[effects_block] = (success_exit,)

        next_id = effects_block

        # Main chain, built back-to-front.
        segment_lo, segment_hi = self.config.segments
        segment_count = int(rng.integers(segment_lo, segment_hi + 1))
        for segment in range(segment_count):
            roll = rng.random()
            if arg_paths and roll >= self.config.state_cond_prob:
                next_id = self._arg_condition_segment(
                    cfg, spec, rng, arg_paths, next_id, error_exit, body,
                    nest=self.config.nest_depth,
                )
            elif roll < self.config.state_cond_prob:
                next_id = self._state_condition_segment(
                    cfg, spec, rng, next_id, error_exit, body
                )
            run = body(f"run{segment}")
            cfg.succs[run] = (next_id,)
            next_id = run

        # Planted bugs: guarded chains hanging off the front of the main
        # path so they are evaluated on every invocation.
        for plan in plans:
            next_id = self._plant_bug(cfg, spec, rng, plan, arg_paths, next_id)

        # Resource guards (EBADF paths) come first.
        for guard_path in reversed(resource_guard_paths(spec)):
            guard_cond = ArgCondition(
                syscall=spec.full_name,
                path_elements=guard_path,
                op=CondOp.GT,
                operand=0,
            )
            fail = body("ebadf")
            cfg.succs[fail] = (error_exit,)
            guard = self._alloc(
                f"{spec.full_name}:fdget", subsystem, BlockRole.CONDITION,
                guard_cond.asm_tokens(), condition=guard_cond,
            )
            cfg.succs[guard] = (fail, next_id)
            next_id = guard

        entry = self._alloc(
            f"{spec.full_name}:entry", subsystem, BlockRole.ENTRY,
            (f"fn_{function}", "push", "rbp", "mov", "rbp", "rsp"),
        )
        cfg.succs[entry] = (next_id,)
        cfg.entry = entry

        for block_id in self._collect_reachable(entry, cfg):
            cfg.blocks[block_id] = self._blocks[block_id]
        cfg.validate()
        return cfg

    def _collect_reachable(self, entry: int, cfg: HandlerCFG) -> set[int]:
        seen = {entry}
        frontier = deque([entry])
        while frontier:
            current = frontier.popleft()
            for succ in cfg.succs.get(current, ()):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def _random_condition(
        self,
        spec: SyscallSpec,
        rng: np.random.Generator,
        arg_paths: list[tuple[tuple[int, ...], Type]],
    ) -> ArgCondition:
        """A branch on a random steerable argument path.

        Operands come from the type's realistic value set so random
        instantiation flips the branch at a useful (low but nonzero) rate.
        """
        path, leaf = arg_paths[int(rng.integers(len(arg_paths)))]
        if isinstance(leaf, FlagsType):
            _, bit = leaf.flags[int(rng.integers(len(leaf.flags)))]
            if bit == 0:
                bit = leaf.flags[0][1] or 1
            op = CondOp.MASK_SET if rng.random() < 0.7 else CondOp.MASK_CLEAR
            return ArgCondition(spec.full_name, path, op, bit)
        if isinstance(leaf, IntType) and leaf.interesting:
            operand = int(leaf.interesting[int(rng.integers(len(leaf.interesting)))])
            roll = rng.random()
            if roll < 0.5:
                return ArgCondition(spec.full_name, path, CondOp.EQ, operand)
            if roll < 0.75 and operand > 0:
                return ArgCondition(spec.full_name, path, CondOp.GT, operand)
            return ArgCondition(spec.full_name, path, CondOp.LT, max(operand, 1))
        if isinstance(leaf, IntType):
            # Sample the operand on a log scale so wide (64-bit) ranges do
            # not always yield astronomically large thresholds.
            magnitude = int(rng.integers(0, leaf.bits))
            operand = min(leaf.minimum + (1 << magnitude), leaf.upper_bound)
            op = CondOp.GT if rng.random() < 0.5 else CondOp.LT
            return ArgCondition(spec.full_name, path, op, operand)
        if isinstance(leaf, LenType):
            operand = int(rng.choice((0, 1, 8, 64, 512)))
            op = CondOp.GT if rng.random() < 0.7 else CondOp.EQ
            return ArgCondition(spec.full_name, path, op, operand)
        if isinstance(leaf, BufferType):
            operand = int(rng.choice((0, 1, 4, 8)))
            return ArgCondition(spec.full_name, path, CondOp.GT, operand)
        # Fallback: nonzero check.
        return ArgCondition(spec.full_name, path, CondOp.NE, 0)

    def _arg_condition_segment(
        self, cfg, spec, rng, arg_paths, join, error_exit, body, nest: int
    ) -> int:
        condition = self._random_condition(spec, rng, arg_paths)
        reward = self._reward_size(condition, rng)
        taken_entry = self._taken_chain(
            cfg, spec, rng, arg_paths, join, error_exit, body, nest, reward
        )
        cond_block = self._alloc(
            f"{spec.full_name}:br", spec.subsystem, BlockRole.CONDITION,
            condition.asm_tokens(), condition=condition,
        )
        cfg.succs[cond_block] = (join, taken_entry)
        return cond_block

    @staticmethod
    def _reward_size(condition: ArgCondition, rng: np.random.Generator) -> int:
        """Body blocks guarded by a branch, scaled with its rarity.

        Real kernels show the same pattern: a branch on an exact command
        or mode value typically dispatches into a whole function
        (hundreds of instructions), while a cheap range check guards a
        few lines.  This is what makes hard branches *worth* reaching —
        the property Snowplow's speedup rests on.
        """
        if condition.op is CondOp.EQ:
            base = 8
        elif condition.op in (CondOp.MASK_SET, CondOp.MASK_CLEAR):
            base = 5
        else:
            base = 2
        return base + int(rng.integers(0, base + 1))

    def _taken_chain(
        self, cfg, spec, rng, arg_paths, join, error_exit, body, nest: int,
        reward: int,
    ) -> int:
        """The code run when a branch is taken; rejoins or errors out."""
        terminal_roll = rng.random()
        if terminal_roll < 0.08:
            tail: int = error_exit
        else:
            tail = join
        next_id = tail
        if nest > 0 and rng.random() < 0.6:
            next_id = self._arg_condition_segment(
                cfg, spec, rng, arg_paths, next_id, error_exit, body, nest - 1
            )
        for index in range(max(reward, 1)):
            block = body(f"taken{index}")
            cfg.succs[block] = (next_id,)
            next_id = block
        return next_id

    def _state_condition_segment(
        self, cfg, spec, rng, join, error_exit, body
    ) -> int:
        """A branch on a flag set by another call of the same subsystem."""
        peers = [
            peer for peer in self.table.specs
            if peer.subsystem == spec.subsystem
            and peer.full_name != spec.full_name
        ]
        if peers:
            peer = peers[int(rng.integers(len(peers)))]
            key = f"{spec.subsystem}:{peer.full_name}:done"
        else:
            key = f"{spec.subsystem}:{spec.full_name}:done"
        condition = StateCondition(key=key)
        taken = body("statepath")
        cfg.succs[taken] = (join,)
        cond_block = self._alloc(
            f"{spec.full_name}:stbr", spec.subsystem, BlockRole.CONDITION,
            condition.asm_tokens(), condition=condition,
        )
        cfg.succs[cond_block] = (join, taken)
        return cond_block

    # ----- bug planting -----

    def _bug_conditions(
        self,
        spec: SyscallSpec,
        rng: np.random.Generator,
        plan: BugPlan,
        arg_paths: list[tuple[tuple[int, ...], Type]],
    ) -> list[ArgCondition]:
        """A satisfiable chain of ``plan.depth`` conditions on distinct
        argument paths."""
        if plan.bug_id == "ata-oob" and self.config.plant_ata_bug:
            return self._ata_conditions(spec)
        eligible = [
            (path, leaf) for path, leaf in arg_paths
            if isinstance(leaf, (IntType, FlagsType, LenType, BufferType))
        ]
        if len(eligible) < plan.depth:
            raise KernelBuildError(
                f"bug {plan.bug_id}: handler {spec.full_name} has only "
                f"{len(eligible)} steerable paths for depth {plan.depth}"
            )
        order = rng.permutation(len(eligible))[: plan.depth]
        conditions: list[ArgCondition] = []
        for index in order:
            path, leaf = eligible[int(index)]
            conditions.append(
                self._rare_condition(spec.full_name, path, leaf, rng)
            )
        return conditions

    @staticmethod
    def _rare_condition(
        syscall: str, path: tuple[int, ...], leaf: Type,
        rng: np.random.Generator,
    ) -> ArgCondition:
        """A condition rarely satisfied by random values yet reachable by
        the instantiator's targeted strategies (interesting constants,
        multi-flag combinations, buffer resizing, length desync)."""
        if isinstance(leaf, FlagsType):
            bits = [bit for _, bit in leaf.flags if bit]
            if len(bits) >= 2:
                picks = rng.permutation(len(bits))[:2]
                operand = bits[int(picks[0])] | bits[int(picks[1])]
            else:
                operand = bits[0] if bits else 1
            return ArgCondition(syscall, path, CondOp.MASK_SET, operand)
        if isinstance(leaf, IntType) and leaf.interesting:
            pool = [v for v in leaf.interesting if v != 0] or list(leaf.interesting)
            operand = int(pool[int(rng.integers(len(pool)))])
            return ArgCondition(syscall, path, CondOp.EQ, operand)
        if isinstance(leaf, LenType):
            # Reachable only by deliberately desynchronising the length
            # field from its buffer (the ATA-bug mutation pattern).
            return ArgCondition(syscall, path, CondOp.GT, 64)
        if isinstance(leaf, BufferType):
            bound = max(leaf.min_len + 1, (3 * leaf.max_len) // 4)
            return ArgCondition(syscall, path, CondOp.GT, bound)
        assert isinstance(leaf, IntType)
        # No interesting constants: gate on a high log-scale threshold the
        # instantiator reaches through its power-of-two strategy.
        threshold = min(leaf.upper_bound, max(leaf.minimum + 1, 1 << (leaf.bits - 3)))
        return ArgCondition(syscall, path, CondOp.GT, threshold)

    def _ata_conditions(self, spec: SyscallSpec) -> list[ArgCondition]:
        """The hand-crafted guard of Table 4 bug #1: an ATA_16
        pass-through NOP PIO command with an oversized reply length."""
        name = spec.full_name
        return [
            ArgCondition(name, (2, 0, 2, 0), CondOp.EQ, ATA_16),      # cdb.opcode
            ArgCondition(name, (2, 0, 2, 1), CondOp.EQ, ATA_PROT_PIO),  # cdb.protocol
            ArgCondition(name, (2, 0, 2, 3), CondOp.EQ, ATA_NOP),     # cdb.ata_cmd
            ArgCondition(name, (2, 0, 1), CondOp.GT, 512),            # outlen
        ]

    def _plant_bug(
        self, cfg, spec, rng, plan: BugPlan, arg_paths, join: int
    ) -> int:
        conditions = self._bug_conditions(spec, rng, plan, arg_paths)
        bug = Bug(
            bug_id=plan.bug_id,
            kind=plan.kind,
            subsystem=plan.subsystem,
            function=plan.function,
            depth=len(conditions),
            known=plan.known,
            reproducible=plan.reproducible,
            corrupts_memory=plan.corrupts_memory,
        )
        crash_block = self._alloc(
            f"{spec.full_name}:crash:{plan.bug_id}", spec.subsystem,
            BlockRole.CRASH,
            (f"fn_{plan.function}", "mov", "rax", "imm_big", "ud2"),
            bug=bug,
        )
        self._bugs.append(bug)
        self._bug_blocks[bug.bug_id] = crash_block
        # Chain: cond1 -> cond2 -> ... -> crash; any false edge rejoins.
        next_id = crash_block
        for condition in reversed(conditions):
            cond_block = self._alloc(
                f"{spec.full_name}:bugbr:{plan.bug_id}", spec.subsystem,
                BlockRole.CONDITION, condition.asm_tokens(),
                condition=condition,
            )
            cfg.succs[cond_block] = (join, next_id)
            next_id = cond_block
        return next_id

    # ----- interrupt pseudo-handler (noise source) -----

    def _build_interrupt_trace(self, rng: np.random.Generator) -> list[int]:
        trace: list[int] = []
        for index in range(self.config.interrupt_blocks):
            block_id = self._alloc(
                f"irq:{index}", "irq", BlockRole.BODY,
                self._body_asm(rng, "irq_timer"),
            )
            trace.append(block_id)
        return trace

    # ----- top level -----

    def _assign_bug_plans(self) -> dict[str, list[BugPlan]]:
        """Map each bug plan to a concrete handler."""
        assignment: dict[str, list[BugPlan]] = {}
        specs_by_subsystem: dict[str, list[SyscallSpec]] = {}
        for spec in self.table.specs:
            specs_by_subsystem.setdefault(spec.subsystem, []).append(spec)
        plans = list(self.config.bug_plans)
        if self.config.plant_ata_bug and "ioctl$SCSI_IOCTL_SEND_COMMAND" in self.table:
            if not any(plan.bug_id == "ata-oob" for plan in plans):
                plans.append(
                    BugPlan(
                        bug_id="ata-oob",
                        kind=CrashKind.OOB,
                        subsystem="scsi",
                        function="ata_pio_sector",
                        depth=4,
                        known=False,
                        corrupts_memory=True,
                        syscall="ioctl$SCSI_IOCTL_SEND_COMMAND",
                    )
                )
        rng = split(self.config.seed, "bug-assign")
        for plan in plans:
            if plan.syscall is not None:
                target = plan.syscall
                if target not in self.table:
                    raise KernelBuildError(
                        f"bug {plan.bug_id}: unknown syscall {target!r}"
                    )
            else:
                candidates = specs_by_subsystem.get(plan.subsystem)
                if not candidates:
                    raise KernelBuildError(
                        f"bug {plan.bug_id}: no handlers in subsystem "
                        f"{plan.subsystem!r}"
                    )
                # Prefer handlers with enough steerable paths.
                rich = [
                    spec for spec in candidates
                    if len(enumerate_type_paths(spec)) >= plan.depth + 1
                ]
                pool = rich or candidates
                target = pool[int(rng.integers(len(pool)))].full_name
            assignment.setdefault(target, []).append(plan)
        return assignment

    def _handler_seed(self, spec: SyscallSpec) -> np.random.Generator:
        """Handler seeds are version-independent for shared specs, so
        releases mostly share code — except for a perturbed fraction,
        modelling churn between releases."""
        version = self.config.version
        if version != "6.8":
            salt = split(self.config.seed, "perturb", spec.full_name, version)
            if salt.random() < self.config.perturb_fraction:
                return split(self.config.seed, "handler", spec.full_name, version)
        return split(self.config.seed, "handler", spec.full_name)

    def build(self) -> Kernel:
        """Generate the full kernel."""
        assignment = self._assign_bug_plans()
        handlers: dict[str, HandlerCFG] = {}
        for spec in self.table.specs:
            rng = self._handler_seed(spec)
            plans = assignment.get(spec.full_name, [])
            handlers[spec.full_name] = self.build_handler(spec, rng, plans)
        interrupt_trace = self._build_interrupt_trace(
            split(self.config.seed, "irq")
        )
        blocks: dict[int, BasicBlock] = {}
        for cfg in handlers.values():
            blocks.update(cfg.blocks)
        for block_id in interrupt_trace:
            blocks[block_id] = self._blocks[block_id]
        return Kernel(
            version=self.config.version,
            table=self.table,
            handlers=handlers,
            blocks=blocks,
            bugs=list(self._bugs),
            bug_blocks=dict(self._bug_blocks),
            interrupt_trace=interrupt_trace,
        )
