"""Exception hierarchy for the repro package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without masking programming errors.  The full
tree::

    ReproError
    ├── SpecError            bad syscall specification
    ├── ParseError           bad syz-format program text
    ├── ProgramError         program value violates its spec
    ├── KernelBuildError     synthetic kernel construction failed
    ├── ExecutionError       executor driven incorrectly (not a crash)
    │   └── ExecutorHang     a call exceeded its step budget [TimeoutError]
    ├── MutationError        mutation could not be applied
    ├── GraphError           malformed mutation-query graph
    ├── ModelError           PMM build/train/inference failure
    │   └── InferenceTimeout serving request exhausted its retries
    │                        [TimeoutError]
    ├── DatasetError         dataset pipeline misconfigured/empty
    ├── AnalysisError        static analysis driven incorrectly
    └── CampaignError        experiment harness misconfigured
        ├── CheckpointError  campaign checkpoint missing/corrupt/unwritable
        └── SupervisionError fleet supervisor misconfigured

The timeout family (:class:`ExecutorHang`, :class:`InferenceTimeout`)
additionally inherits from :class:`TimeoutError`, so generic
``except TimeoutError`` handlers — e.g. a watchdog wrapper around the
executor — catch them without importing this module.  Under fault
injection these conditions are normally *results*, not exceptions
(:class:`~repro.kernel.executor.ExecTimeout`, drained serving failures);
the exceptions fire only when the resilient path is disabled (no
watchdog, strict serving mode) or a checkpoint store gives up.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpecError(ReproError):
    """A syscall specification is malformed or internally inconsistent."""


class ParseError(ReproError):
    """A syz-format program could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ProgramError(ReproError):
    """A program value violates its specification (bad arity, type, resource)."""


class KernelBuildError(ReproError):
    """The synthetic kernel could not be constructed from its config."""


class ExecutionError(ReproError):
    """The kernel executor was driven incorrectly (not a guest crash)."""


class ExecutorHang(ExecutionError, TimeoutError):
    """A call exceeded its step budget with the watchdog disabled.

    With the watchdog enabled the same condition is reported as a
    structured :class:`~repro.kernel.executor.ExecTimeout` result and
    charged as a VM restart instead of raising.
    """


class MutationError(ReproError):
    """A mutation could not be applied at the requested location."""


class GraphError(ReproError):
    """A mutation-query graph is malformed or references unknown entities."""


class ModelError(ReproError):
    """PMM model construction, training, or inference failed."""


class InferenceTimeout(ModelError, TimeoutError):
    """A serving request missed its deadline on every allowed attempt.

    Raised only by :class:`~repro.pmm.serve.InferenceService` in strict
    mode; the resilient default delivers the failure through
    ``drain_failures`` so the fuzz loop can fall back to heuristics.
    """


class DatasetError(ReproError):
    """The mutation dataset pipeline was misconfigured or produced no data."""


class AnalysisError(ReproError):
    """A static-analysis pass was driven incorrectly or hit an
    internal contradiction (e.g. asked to concretize an empty abstract
    value)."""


class CampaignError(ReproError):
    """A fuzzing campaign/experiment harness was misconfigured."""


class CheckpointError(CampaignError):
    """A campaign checkpoint is missing, corrupt, or could not be written."""


class SupervisionError(CampaignError):
    """The fleet supervisor was misconfigured (bad deadline/cadence)."""
