"""Exception hierarchy for the repro package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpecError(ReproError):
    """A syscall specification is malformed or internally inconsistent."""


class ParseError(ReproError):
    """A syz-format program could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ProgramError(ReproError):
    """A program value violates its specification (bad arity, type, resource)."""


class KernelBuildError(ReproError):
    """The synthetic kernel could not be constructed from its config."""


class ExecutionError(ReproError):
    """The kernel executor was driven incorrectly (not a guest crash)."""


class MutationError(ReproError):
    """A mutation could not be applied at the requested location."""


class GraphError(ReproError):
    """A mutation-query graph is malformed or references unknown entities."""


class ModelError(ReproError):
    """PMM model construction, training, or inference failed."""


class DatasetError(ReproError):
    """The mutation dataset pipeline was misconfigured or produced no data."""


class CampaignError(ReproError):
    """A fuzzing campaign/experiment harness was misconfigured."""
