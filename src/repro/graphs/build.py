"""Build a mutation query graph from (program, coverage, targets).

Follows §3.2 step by step:

1. the test program becomes a tree of system-call and argument nodes
   (every sub-level argument of nested structs enumerated), with call
   ordering, argument ordering, and argument in/out (containment and
   resource-flow) edges;
2. the per-call coverage traces become covered block nodes joined by the
   executed control-flow edges;
3. the kernel's static CFG supplies *alternative path entry* nodes — the
   uncovered blocks one not-taken branch away from the trace — attached
   through uncovered edges, with the desired targets marked;
4. kernel-user context-switch edges tie each system-call node to the
   entry and exit blocks of its kernel path.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.schema import EdgeKind, Node, NodeKind, QueryGraph
from repro.kernel.build import Kernel
from repro.kernel.coverage import Coverage
from repro.syzlang.program import (
    ArgPath,
    Program,
    PtrValue,
    ResourceValue,
)
from repro.syzlang.slots import slot_id

__all__ = ["build_query_graph"]


def build_query_graph(
    program: Program,
    coverage: Coverage,
    kernel: Kernel,
    targets: set[int] | None = None,
) -> QueryGraph:
    """Assemble the Figure 5 graph for one mutation query.

    ``coverage`` must carry per-call traces (i.e. come from a single
    execution of ``program``).  ``targets`` is the set of desired kernel
    block ids; they need not all be in the frontier — only those that are
    will be marked.
    """
    if len(coverage.call_traces) > len(program.calls):
        raise GraphError(
            f"coverage has {len(coverage.call_traces)} call traces for a "
            f"{len(program.calls)}-call program"
        )
    targets = targets or set()
    graph = QueryGraph()

    syscall_nodes = _add_program_tree(graph, program)
    block_nodes = _add_coverage(graph, coverage, kernel)
    _add_frontier(graph, coverage, kernel, block_nodes, targets)
    _add_context_switches(graph, coverage, syscall_nodes, block_nodes)
    return graph


# ----- program side -----


def _add_program_tree(graph: QueryGraph, program: Program) -> list[int]:
    syscall_nodes: list[int] = []
    producer_node: dict[int, int] = {}
    for call_index, call in enumerate(program.calls):
        spec = call.spec
        syscall_node = graph.add_node(
            Node(kind=NodeKind.SYSCALL, syscall_name=spec.full_name)
        )
        syscall_nodes.append(syscall_node)
        producer_node[call_index] = syscall_node
        if call_index > 0:
            graph.add_edge(
                syscall_nodes[call_index - 1], syscall_node,
                EdgeKind.CALL_ORDER,
            )
        node_of_path: dict[tuple[int, ...], int] = {}
        for path, value in program.walk_call(call_index):
            arg_node = graph.add_node(
                Node(
                    kind=NodeKind.ARG,
                    arg_kind=value.ty.kind,
                    slot=slot_id(spec.full_name, path.elements),
                    arg_path=path,
                    mutable=value.ty.is_mutable()
                    and not isinstance(value, PtrValue),
                )
            )
            node_of_path[path.elements] = arg_node
            if len(path.elements) == 1:
                # Top-level argument: in/out edge with the call node.
                graph.add_edge(syscall_node, arg_node, EdgeKind.ARG_INOUT)
            else:
                parent = node_of_path[path.elements[:-1]]
                graph.add_edge(parent, arg_node, EdgeKind.ARG_INOUT)
            if isinstance(value, ResourceValue) and value.producer is not None:
                producing = producer_node.get(value.producer)
                if producing is not None:
                    graph.add_edge(producing, arg_node, EdgeKind.ARG_INOUT)
        # Argument ordering: chain sibling top-level args in order.
        top_level = [
            node_of_path[elements]
            for elements in sorted(
                e for e in node_of_path if len(e) == 1
            )
        ]
        for left, right in zip(top_level, top_level[1:]):
            graph.add_edge(left, right, EdgeKind.ARG_ORDER)
    return syscall_nodes


# ----- kernel side -----


def _add_coverage(
    graph: QueryGraph, coverage: Coverage, kernel: Kernel
) -> dict[int, int]:
    """Covered block nodes plus executed control-flow edges."""
    block_nodes: dict[int, int] = {}
    seen_edges: set[tuple[int, int]] = set()
    for trace in coverage.call_traces:
        for block_id in trace:
            if block_id not in block_nodes:
                block = kernel.blocks.get(block_id)
                block_nodes[block_id] = graph.add_node(
                    Node(
                        kind=NodeKind.COVERED,
                        block_id=block_id,
                        asm=block.asm if block is not None else (),
                    )
                )
        for src, dst in zip(trace, trace[1:]):
            if (src, dst) not in seen_edges:
                seen_edges.add((src, dst))
                graph.add_edge(
                    block_nodes[src], block_nodes[dst],
                    EdgeKind.COVERED_FLOW,
                )
    return block_nodes


def _add_frontier(
    graph: QueryGraph,
    coverage: Coverage,
    kernel: Kernel,
    block_nodes: dict[int, int],
    targets: set[int],
) -> None:
    covered = coverage.blocks
    alternative_nodes: dict[int, int] = {}
    for block_id in sorted(covered):
        for succ in kernel.succs.get(block_id, ()):
            if succ in covered:
                continue
            if succ not in alternative_nodes:
                succ_block = kernel.blocks.get(succ)
                alternative_nodes[succ] = graph.add_node(
                    Node(
                        kind=NodeKind.ALTERNATIVE,
                        block_id=succ,
                        asm=succ_block.asm if succ_block else (),
                        target=succ in targets,
                    )
                )
            graph.add_edge(
                block_nodes[block_id], alternative_nodes[succ],
                EdgeKind.UNCOVERED_FLOW,
            )


def _add_context_switches(
    graph: QueryGraph,
    coverage: Coverage,
    syscall_nodes: list[int],
    block_nodes: dict[int, int],
) -> None:
    for call_index, trace in enumerate(coverage.call_traces):
        if not trace or call_index >= len(syscall_nodes):
            continue
        syscall_node = syscall_nodes[call_index]
        entry_node = block_nodes[trace[0]]
        exit_node = block_nodes[trace[-1]]
        graph.add_edge(syscall_node, entry_node, EdgeKind.CONTEXT_SWITCH)
        graph.add_edge(exit_node, syscall_node, EdgeKind.CONTEXT_SWITCH)
