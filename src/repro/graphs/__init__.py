"""Argument-mutation query graphs (§3.2, Figure 5).

The query graph is the single representation that joins the user-space
test program and its kernel coverage: system-call and argument nodes on
one side, covered and alternative (one-branch-away) kernel blocks on the
other, tied together by kernel-user context-switch edges.  Targets —
the blocks we *want* covered — are marked on alternative nodes.
"""

from repro.graphs.schema import EdgeKind, Node, NodeKind, QueryGraph
from repro.graphs.build import build_query_graph
from repro.graphs.encode import AsmVocab, EncodedGraph, GraphEncoder

__all__ = [
    "AsmVocab",
    "EdgeKind",
    "EncodedGraph",
    "GraphEncoder",
    "Node",
    "NodeKind",
    "QueryGraph",
    "build_query_graph",
]
