"""Numeric encoding of query graphs for the model.

Per §3.3, vertices are embedded by *content class*:

- kernel blocks as their assembly token sequences (fed to the
  Transformer encoder),
- system calls as variant-name tokens over a syscall vocabulary,
- arguments as (argument-kind, slot) token pairs — types only, never
  literal values,
- edges as type ids; every edge is mirrored so messages flow both ways,
  with the reverse direction getting its own relation id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graphs.schema import EdgeKind, NodeKind, QueryGraph
from repro.kernel.build import Kernel
from repro.syzlang.program import ArgPath
from repro.syzlang.slots import SLOT_SPACE
from repro.syzlang.spec import SyscallTable
from repro.syzlang.types import ArgKind

__all__ = ["AsmVocab", "GraphEncoder", "EncodedGraph"]

PAD, UNK, MASK = 0, 1, 2
_SPECIALS = ("<pad>", "<unk>", "<mask>")

MAX_ASM_LEN = 16

_NODE_KIND_IDS = {
    NodeKind.SYSCALL: 0,
    NodeKind.ARG: 1,
    NodeKind.COVERED: 2,
    NodeKind.ALTERNATIVE: 3,
}

_EDGE_KIND_IDS = {kind: index for index, kind in enumerate(EdgeKind)}
NUM_EDGE_TYPES = 2 * len(EdgeKind)  # forward + reverse relations

_ARG_KIND_IDS = {kind: index for index, kind in enumerate(ArgKind)}


@dataclass
class AsmVocab:
    """Token vocabulary over the synthetic kernel's assembly.

    All 1024 slot tokens are always present (their id space is closed),
    so argument-slot correspondences transfer across kernel versions;
    other tokens come from the training kernel and map to ``<unk>`` on
    unseen releases — mirroring how a real encoder meets new code.
    """

    token_to_id: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(cls, kernel: Kernel) -> "AsmVocab":
        tokens: set[str] = set()
        for block in kernel.blocks.values():
            tokens.update(block.asm)
        ordered = list(_SPECIALS)
        ordered.extend(f"off_{index:04x}" for index in range(SLOT_SPACE))
        ordered.extend(
            sorted(token for token in tokens if not token.startswith("off_"))
        )
        return cls(token_to_id={token: i for i, token in enumerate(ordered)})

    def __len__(self) -> int:
        return len(self.token_to_id)

    def encode(self, tokens: tuple[str, ...], max_len: int = MAX_ASM_LEN) -> list[int]:
        ids = [self.token_to_id.get(token, UNK) for token in tokens[:max_len]]
        return ids + [PAD] * (max_len - len(ids))

    def id_of(self, token: str) -> int:
        return self.token_to_id.get(token, UNK)


@dataclass
class EncodedGraph:
    """Array form of one query graph, ready for the model."""

    node_kind: np.ndarray       # [n] int
    syscall_id: np.ndarray      # [n] int (0 = none)
    arg_kind_id: np.ndarray     # [n] int (0 = none)
    slot: np.ndarray            # [n] int (0 = none)
    target_flag: np.ndarray     # [n] float
    asm_tokens: np.ndarray      # [n, MAX_ASM_LEN] int
    edge_src: np.ndarray        # [e] int
    edge_dst: np.ndarray        # [e] int
    edge_type: np.ndarray       # [e] int
    arg_mask: np.ndarray        # [n] bool — mutable argument nodes
    arg_paths: list[ArgPath | None]
    labels: np.ndarray | None = None  # [n] float, on arg_mask positions

    @property
    def num_nodes(self) -> int:
        return len(self.node_kind)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)


class GraphEncoder:
    """Encodes :class:`QueryGraph` objects against fixed vocabularies."""

    def __init__(self, asm_vocab: AsmVocab, table: SyscallTable):
        self.asm_vocab = asm_vocab
        # Syscall id 0 is reserved for "none"/unknown.
        self.syscall_to_id = {
            spec.full_name: index + 1
            for index, spec in enumerate(
                sorted(table.specs, key=lambda spec: spec.full_name)
            )
        }

    @classmethod
    def from_names(
        cls, asm_vocab: AsmVocab, syscall_names: list[str]
    ) -> "GraphEncoder":
        """Rebuild an encoder from a checkpoint's syscall list.

        Ids must match the training-time assignment exactly, so the
        mapping is rebuilt from the recorded names rather than from
        whatever table the deployment kernel carries (newer releases add
        syscalls, which would shift ids).
        """
        encoder = cls.__new__(cls)
        encoder.asm_vocab = asm_vocab
        encoder.syscall_to_id = {
            name: index + 1 for index, name in enumerate(sorted(syscall_names))
        }
        return encoder

    @property
    def num_syscalls(self) -> int:
        return len(self.syscall_to_id) + 1

    def encode(
        self,
        graph: QueryGraph,
        labels: dict[ArgPath, bool] | None = None,
    ) -> EncodedGraph:
        """Encode one graph; ``labels`` maps argument paths to MUTATE."""
        count = len(graph.nodes)
        if count == 0:
            raise GraphError("cannot encode an empty graph")
        node_kind = np.zeros(count, dtype=np.int64)
        syscall_id = np.zeros(count, dtype=np.int64)
        arg_kind_id = np.zeros(count, dtype=np.int64)
        slot = np.zeros(count, dtype=np.int64)
        target_flag = np.zeros(count, dtype=np.float64)
        asm_tokens = np.zeros((count, MAX_ASM_LEN), dtype=np.int64)
        arg_mask = np.zeros(count, dtype=bool)
        arg_paths: list[ArgPath | None] = [None] * count
        label_array = np.zeros(count, dtype=np.float64)

        for index, node in enumerate(graph.nodes):
            node_kind[index] = _NODE_KIND_IDS[node.kind]
            if node.kind is NodeKind.SYSCALL:
                syscall_id[index] = self.syscall_to_id.get(node.syscall_name, 0)
            elif node.kind is NodeKind.ARG:
                assert node.arg_kind is not None
                arg_kind_id[index] = _ARG_KIND_IDS[node.arg_kind] + 1
                slot[index] = (node.slot % SLOT_SPACE) + 1 if node.slot >= 0 else 0
                arg_mask[index] = node.mutable
                arg_paths[index] = node.arg_path
                if labels is not None and node.arg_path is not None:
                    label_array[index] = float(
                        labels.get(node.arg_path, False)
                    )
            else:
                asm_tokens[index] = self.asm_vocab.encode(node.asm)
                if node.target:
                    target_flag[index] = 1.0

        edge_src: list[int] = []
        edge_dst: list[int] = []
        edge_type: list[int] = []
        for src, dst, kind in graph.edges:
            forward = _EDGE_KIND_IDS[kind]
            edge_src.append(src)
            edge_dst.append(dst)
            edge_type.append(forward)
            edge_src.append(dst)
            edge_dst.append(src)
            edge_type.append(forward + len(EdgeKind))

        return EncodedGraph(
            node_kind=node_kind,
            syscall_id=syscall_id,
            arg_kind_id=arg_kind_id,
            slot=slot,
            target_flag=target_flag,
            asm_tokens=asm_tokens,
            edge_src=np.asarray(edge_src, dtype=np.int64),
            edge_dst=np.asarray(edge_dst, dtype=np.int64),
            edge_type=np.asarray(edge_type, dtype=np.int64),
            arg_mask=arg_mask,
            arg_paths=arg_paths,
            labels=label_array if labels is not None else None,
        )
