"""Node and edge schema of the mutation query graph (Figure 5)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.syzlang.program import ArgPath
from repro.syzlang.types import ArgKind

__all__ = ["NodeKind", "EdgeKind", "Node", "QueryGraph"]


class NodeKind(enum.Enum):
    """Vertex types of Figure 5."""

    SYSCALL = "syscall"
    ARG = "argument"
    COVERED = "covered"
    ALTERNATIVE = "alternative"


class EdgeKind(enum.Enum):
    """Edge types of Figure 5."""

    CALL_ORDER = "call_ordering"
    ARG_ORDER = "argument_ordering"
    ARG_INOUT = "argument_in_out"
    COVERED_FLOW = "covered_edge"
    UNCOVERED_FLOW = "uncovered_edge"
    CONTEXT_SWITCH = "kernel_user_space"


@dataclass
class Node:
    """One graph vertex.

    Which payload fields are meaningful depends on ``kind``:

    - SYSCALL: ``syscall_name``
    - ARG: ``arg_kind``, ``slot``, ``arg_path``, ``mutable``
    - COVERED/ALTERNATIVE: ``block_id``, ``asm``, ``target`` (alternatives
      only)
    """

    kind: NodeKind
    syscall_name: str = ""
    arg_kind: ArgKind | None = None
    slot: int = -1
    arg_path: ArgPath | None = None
    mutable: bool = False
    block_id: int = -1
    asm: tuple[str, ...] = ()
    target: bool = False


@dataclass
class QueryGraph:
    """The full mutation query: nodes, typed edges, and label support."""

    nodes: list[Node] = field(default_factory=list)
    edges: list[tuple[int, int, EdgeKind]] = field(default_factory=list)

    def add_node(self, node: Node) -> int:
        self.nodes.append(node)
        return len(self.nodes) - 1

    def add_edge(self, src: int, dst: int, kind: EdgeKind) -> None:
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise GraphError(f"edge ({src}, {dst}) references unknown nodes")
        self.edges.append((src, dst, kind))

    # ----- views -----

    def node_indices(self, kind: NodeKind) -> list[int]:
        return [
            index for index, node in enumerate(self.nodes)
            if node.kind is kind
        ]

    def argument_nodes(self) -> list[int]:
        return self.node_indices(NodeKind.ARG)

    def mutable_argument_nodes(self) -> list[int]:
        return [
            index for index, node in enumerate(self.nodes)
            if node.kind is NodeKind.ARG and node.mutable
        ]

    def target_nodes(self) -> list[int]:
        return [
            index for index, node in enumerate(self.nodes)
            if node.kind is NodeKind.ALTERNATIVE and node.target
        ]

    def arg_node_for_path(self, path: ArgPath) -> int | None:
        for index, node in enumerate(self.nodes):
            if node.kind is NodeKind.ARG and node.arg_path == path:
                return index
        return None

    def edge_count_by_kind(self) -> dict[EdgeKind, int]:
        counts: dict[EdgeKind, int] = {}
        for _, _, kind in self.edges:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def validate(self) -> None:
        """Schema invariants; raises :class:`GraphError`."""
        for index, node in enumerate(self.nodes):
            if node.kind is NodeKind.ARG and node.arg_path is None:
                raise GraphError(f"argument node {index} has no path")
            if node.kind in (NodeKind.COVERED, NodeKind.ALTERNATIVE):
                if node.block_id < 0:
                    raise GraphError(f"block node {index} has no block id")
            if node.target and node.kind is not NodeKind.ALTERNATIVE:
                raise GraphError(
                    f"node {index}: only alternative nodes may be targets"
                )
        for src, dst, kind in self.edges:
            if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
                raise GraphError(f"edge ({src}, {dst}) out of range")
