"""Concrete test programs: values, calls, and argument paths.

A :class:`Program` is a short sequence of system-call invocations, each
carrying a tree of concrete argument values shaped by its
:class:`~repro.syzlang.spec.SyscallSpec`.  Programs support deep cloning,
validation, insertion/removal of calls with resource fix-up, and — most
importantly for the paper — enumeration of every *mutation site*: each
mutable leaf argument, however deeply nested, addressed by an
:class:`ArgPath`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.syzlang.spec import SyscallSpec, SyscallTable
from repro.syzlang.types import (
    ArgKind,
    ArrayType,
    BufferType,
    ConstType,
    FlagsType,
    IntType,
    LenType,
    PtrType,
    ResourceType,
    StructType,
    Type,
)

__all__ = [
    "ArgPath",
    "ArrayValue",
    "BufferValue",
    "Call",
    "ConstValue",
    "IntValue",
    "Program",
    "PtrValue",
    "ResourceValue",
    "StructValue",
    "Value",
    "zero_value",
]

# Base of the synthetic test data area, mirroring syz tests' mmap region.
DATA_AREA_BASE = 0x7F0000000000


@dataclass(frozen=True)
class ArgPath:
    """Address of one sub-argument inside a program.

    ``call_index`` selects the call; ``elements`` descends through the
    value tree: the first element is the top-level argument index, then
    ``0`` steps through a pointer, a field index steps into a struct, and
    an element index steps into an array.
    """

    call_index: int
    elements: tuple[int, ...]

    def with_call(self, call_index: int) -> "ArgPath":
        return ArgPath(call_index, self.elements)

    def __str__(self) -> str:
        trail = ".".join(str(element) for element in self.elements)
        return f"call{self.call_index}:{trail}"


class Value:
    """Base class of all concrete argument values."""

    ty: Type

    def clone(self) -> "Value":
        return copy.deepcopy(self)


@dataclass
class IntValue(Value):
    """Integer value; also used for flags and length fields."""

    ty: Type  # IntType | FlagsType | LenType
    value: int = 0


@dataclass
class ConstValue(Value):
    """Fixed constant pinned by the spec; never mutated."""

    ty: ConstType

    @property
    def value(self) -> int:
        return self.ty.value


@dataclass
class BufferValue(Value):
    ty: BufferType
    data: bytes = b""


@dataclass
class PtrValue(Value):
    """Pointer into the test data area; ``pointee`` is None for NULL."""

    ty: PtrType
    address: int = DATA_AREA_BASE
    pointee: "Value | None" = None


@dataclass
class StructValue(Value):
    ty: StructType
    fields: list[Value] = field(default_factory=list)


@dataclass
class ArrayValue(Value):
    ty: ArrayType
    elems: list[Value] = field(default_factory=list)


@dataclass
class ResourceValue(Value):
    """Reference to the resource produced by an earlier call.

    ``producer`` is the index of the producing call inside the program,
    or None for the NULL resource (Syzkaller's ``0xffff...ffff``).
    """

    ty: ResourceType
    producer: int | None = None


def zero_value(ty: Type) -> Value:
    """A minimal syntactically valid value of ``ty`` (all zeros/NULL)."""
    if isinstance(ty, ConstType):
        return ConstValue(ty)
    if isinstance(ty, (IntType, FlagsType, LenType)):
        return IntValue(ty, 0)
    if isinstance(ty, BufferType):
        return BufferValue(ty, b"\x00" * ty.min_len)
    if isinstance(ty, PtrType):
        return PtrValue(ty, DATA_AREA_BASE, zero_value(ty.elem))
    if isinstance(ty, StructType):
        return StructValue(ty, [zero_value(fty) for _, fty in ty.fields])
    if isinstance(ty, ArrayType):
        return ArrayValue(ty, [zero_value(ty.elem) for _ in range(ty.min_len)])
    if isinstance(ty, ResourceType):
        return ResourceValue(ty, None)
    raise ProgramError(f"cannot build a value of type {ty!r}")


def _children(value: Value) -> list[tuple[int, Value]]:
    """The indexed children of a value, per ArgPath conventions."""
    if isinstance(value, PtrValue):
        return [] if value.pointee is None else [(0, value.pointee)]
    if isinstance(value, StructValue):
        return list(enumerate(value.fields))
    if isinstance(value, ArrayValue):
        return list(enumerate(value.elems))
    return []


@dataclass
class Call:
    """One system-call invocation."""

    spec: SyscallSpec
    args: list[Value] = field(default_factory=list)

    def clone(self) -> "Call":
        return Call(self.spec, [arg.clone() for arg in self.args])

    def validate(self) -> None:
        if len(self.args) != self.spec.arity:
            raise ProgramError(
                f"{self.spec.full_name} expects {self.spec.arity} args, "
                f"got {len(self.args)}"
            )
        for (arg_name, arg_ty), value in zip(self.spec.args, self.args):
            _validate_value(self.spec.full_name, arg_name, arg_ty, value)


def _validate_value(call: str, name: str, ty: Type, value: Value) -> None:
    expected: type[Value]
    if isinstance(ty, ConstType):
        expected = ConstValue
    elif isinstance(ty, (IntType, FlagsType, LenType)):
        expected = IntValue
    elif isinstance(ty, BufferType):
        expected = BufferValue
    elif isinstance(ty, PtrType):
        expected = PtrValue
    elif isinstance(ty, StructType):
        expected = StructValue
    elif isinstance(ty, ArrayType):
        expected = ArrayValue
    elif isinstance(ty, ResourceType):
        expected = ResourceValue
    else:
        raise ProgramError(f"{call}: unknown type for arg {name!r}")
    if not isinstance(value, expected):
        raise ProgramError(
            f"{call}: arg {name!r} should be {expected.__name__}, "
            f"got {type(value).__name__}"
        )
    if isinstance(value, PtrValue) and value.pointee is not None:
        _validate_value(call, name, ty.elem, value.pointee)  # type: ignore[union-attr]
    elif isinstance(value, StructValue):
        struct_ty = ty
        assert isinstance(struct_ty, StructType)
        if len(value.fields) != len(struct_ty.fields):
            raise ProgramError(
                f"{call}: struct {struct_ty.name!r} arity mismatch"
            )
        for (field_name, field_ty), child in zip(struct_ty.fields, value.fields):
            _validate_value(call, f"{name}.{field_name}", field_ty, child)
    elif isinstance(value, ArrayValue):
        array_ty = ty
        assert isinstance(array_ty, ArrayType)
        for index, child in enumerate(value.elems):
            _validate_value(call, f"{name}[{index}]", array_ty.elem, child)


@dataclass
class Program:
    """A sequence of calls — one kernel test."""

    calls: list[Call] = field(default_factory=list)

    def clone(self) -> "Program":
        return Program([call.clone() for call in self.calls])

    def __len__(self) -> int:
        return len(self.calls)

    def validate(self, table: SyscallTable | None = None) -> None:
        """Check shapes and resource references; raise ProgramError."""
        for index, call in enumerate(self.calls):
            if table is not None and call.spec.full_name not in table:
                raise ProgramError(f"unknown syscall {call.spec.full_name!r}")
            call.validate()
            for path, value in self.walk_call(index):
                if isinstance(value, ResourceValue) and value.producer is not None:
                    self._check_resource_ref(index, path, value)

    def _check_resource_ref(
        self, call_index: int, path: ArgPath, value: ResourceValue
    ) -> None:
        producer = value.producer
        assert producer is not None
        if producer >= call_index or producer < 0:
            raise ProgramError(
                f"{path}: resource produced by call {producer} is not "
                f"available before call {call_index}"
            )
        produced = self.calls[producer].spec.produces
        if produced is None or not produced.compatible_with(value.ty.resource):
            raise ProgramError(
                f"{path}: call {producer} does not produce a "
                f"{value.ty.resource.name!r} resource"
            )

    # ----- traversal -----

    def walk_call(self, call_index: int):
        """Yield ``(ArgPath, Value)`` for every value in one call."""
        call = self.calls[call_index]

        def walk(value: Value, elements: tuple[int, ...]):
            yield ArgPath(call_index, elements), value
            for child_index, child in _children(value):
                yield from walk(child, elements + (child_index,))

        for arg_index, arg in enumerate(call.args):
            yield from walk(arg, (arg_index,))

    def walk(self):
        """Yield ``(ArgPath, Value)`` across the whole program."""
        for call_index in range(len(self.calls)):
            yield from self.walk_call(call_index)

    def mutation_sites(self) -> list[ArgPath]:
        """Paths of every mutable leaf argument (the §2 search space)."""
        return [
            path for path, value in self.walk() if value.ty.is_mutable()
        ]

    def get(self, path: ArgPath) -> Value:
        """The value at ``path``; raises ProgramError on a bad path."""
        if not 0 <= path.call_index < len(self.calls):
            raise ProgramError(f"{path}: no such call")
        call = self.calls[path.call_index]
        if not path.elements:
            raise ProgramError(f"{path}: empty path")
        first = path.elements[0]
        if not 0 <= first < len(call.args):
            raise ProgramError(f"{path}: no such argument")
        value: Value = call.args[first]
        for element in path.elements[1:]:
            children = dict(_children(value))
            if element not in children:
                raise ProgramError(f"{path}: dangling path element {element}")
            value = children[element]
        return value

    def set(self, path: ArgPath, new_value: Value) -> None:
        """Replace the value at ``path`` with ``new_value`` in place."""
        if len(path.elements) == 1:
            call = self.calls[path.call_index]
            if not 0 <= path.elements[0] < len(call.args):
                raise ProgramError(f"{path}: no such argument")
            call.args[path.elements[0]] = new_value
            return
        parent = self.get(
            ArgPath(path.call_index, path.elements[:-1])
        )
        last = path.elements[-1]
        if isinstance(parent, PtrValue) and last == 0:
            parent.pointee = new_value
        elif isinstance(parent, StructValue) and 0 <= last < len(parent.fields):
            parent.fields[last] = new_value
        elif isinstance(parent, ArrayValue) and 0 <= last < len(parent.elems):
            parent.elems[last] = new_value
        else:
            raise ProgramError(f"{path}: cannot replace child {last}")

    # ----- structural edits -----

    def insert_call(self, index: int, call: Call) -> None:
        """Insert ``call`` at ``index``, shifting resource references."""
        if not 0 <= index <= len(self.calls):
            raise ProgramError(f"bad insertion index {index}")
        self.calls.insert(index, call)
        for call_index in range(len(self.calls)):
            if call_index == index:
                continue
            for _, value in self.walk_call(call_index):
                if isinstance(value, ResourceValue) and value.producer is not None:
                    if value.producer >= index:
                        value.producer += 1

    def remove_call(self, index: int) -> None:
        """Remove the call at ``index``; dangling references become NULL."""
        if not 0 <= index < len(self.calls):
            raise ProgramError(f"bad removal index {index}")
        del self.calls[index]
        for call_index in range(len(self.calls)):
            for _, value in self.walk_call(call_index):
                if isinstance(value, ResourceValue) and value.producer is not None:
                    if value.producer == index:
                        value.producer = None
                    elif value.producer > index:
                        value.producer -= 1

    # ----- executor support -----

    def flat_args(self, call_index: int) -> dict[tuple[int, ...], Value]:
        """Leaf values of one call keyed by path elements.

        The kernel executor evaluates branch conditions against this map.
        """
        return {
            path.elements: value
            for path, value in self.walk_call(call_index)
            if not isinstance(value, (PtrValue, StructValue, ArrayValue))
            or (isinstance(value, PtrValue) and value.pointee is None)
        }

    def resolve_len_fields(self) -> None:
        """Recompute every LenType field from its sibling buffer/array.

        Called after generation so length fields start consistent; the
        mutator may later *deliberately* desynchronise them.
        """
        for path, value in list(self.walk()):
            if not isinstance(value, IntValue) or not isinstance(value.ty, LenType):
                continue
            target = self._find_len_target(path, value.ty.path)
            if target is None:
                continue
            if isinstance(target, BufferValue):
                value.value = len(target.data)
            elif isinstance(target, ArrayValue):
                value.value = len(target.elems)
            elif isinstance(target, PtrValue) and target.pointee is not None:
                pointee = target.pointee
                if isinstance(pointee, BufferValue):
                    value.value = len(pointee.data)
                elif isinstance(pointee, ArrayValue):
                    value.value = len(pointee.elems)

    def _find_len_target(self, len_path: ArgPath, name: str) -> Value | None:
        """Locate the sibling named ``name`` for a length field."""
        call = self.calls[len_path.call_index]
        if len(len_path.elements) == 1:
            for (arg_name, _), arg_value in zip(call.spec.args, call.args):
                if arg_name == name:
                    return arg_value
            return None
        parent_path = ArgPath(len_path.call_index, len_path.elements[:-1])
        parent = self.get(parent_path)
        if isinstance(parent, StructValue):
            for (field_name, _), field_value in zip(
                parent.ty.fields, parent.fields
            ):
                if field_name == name:
                    return field_value
        return None
