"""The synthetic "Linux-like" system-call surface.

This module plays the role of Syzkaller's ``sys/linux`` descriptions: a
catalogue of system-call variants with realistic argument shapes —
nested structs, iovec arrays, flag words, resource (fd) hierarchies, and
ioctl variants pinned to command constants.  Programs over this table
average well over 60 flattened mutation sites, matching the search-space
measurement of the paper's §5.1.

``build_standard_table(version)`` returns the table for a given synthetic
kernel release: ``6.8`` is the base; ``6.9`` adds the xdp and landlock
interfaces; ``6.10`` further adds rxrpc — mirroring how real releases grow
their API surface, which is what makes the paper's cross-version
generalization experiment (Fig. 6b/6c) meaningful.
"""

from __future__ import annotations

from repro.errors import SpecError
from repro.syzlang.spec import SyscallSpec, SyscallTable
from repro.syzlang.types import (
    ArrayType,
    BufferKind,
    BufferType,
    ConstType,
    Direction,
    FlagsType,
    IntType,
    LenType,
    PtrType,
    ResourceKind,
    ResourceType,
    StructType,
)

__all__ = [
    "build_standard_table",
    "release_deltas",
    "FD",
    "FILE_FD",
    "SOCK",
    "SCSI_FD",
    "KNOWN_VERSIONS",
    "SCSI_IOCTL_SEND_COMMAND",
    "ATA_16",
    "ATA_NOP",
    "ATA_PROT_PIO",
]

# ----- resource hierarchy -----

FD = ResourceKind("fd")
FILE_FD = ResourceKind("file_fd", parent=FD)
SOCK = ResourceKind("sock", parent=FD)
SCSI_FD = ResourceKind("scsi_fd", parent=FD)
FB_FD = ResourceKind("fb_fd", parent=FD)
SND_FD = ResourceKind("snd_fd", parent=FD)
URING_FD = ResourceKind("uring_fd", parent=FD)
EPOLL_FD = ResourceKind("epoll_fd", parent=FD)
TIMER_FD = ResourceKind("timer_fd", parent=FD)
PIPE_FD = ResourceKind("pipe_fd", parent=FD)
BPF_FD = ResourceKind("bpf_fd", parent=FD)
XDP_SOCK = ResourceKind("xdp_sock", parent=FD)
RULESET_FD = ResourceKind("ruleset_fd", parent=FD)
RXRPC_SOCK = ResourceKind("rxrpc_sock", parent=FD)

# ----- shared constants -----

SCSI_IOCTL_SEND_COMMAND = 0x1
ATA_16 = 0x85
ATA_NOP = 0x00
ATA_PROT_PIO = 0x04

_OPEN_FLAGS = FlagsType(
    flags=(
        ("O_RDONLY", 0x0),
        ("O_WRONLY", 0x1),
        ("O_RDWR", 0x2),
        ("O_CREAT", 0x40),
        ("O_EXCL", 0x80),
        ("O_TRUNC", 0x200),
        ("O_APPEND", 0x400),
        ("O_NONBLOCK", 0x800),
        ("O_DIRECT", 0x4000),
    )
)

_PROT_FLAGS = FlagsType(
    flags=(("PROT_READ", 0x1), ("PROT_WRITE", 0x2), ("PROT_EXEC", 0x4))
)

_MAP_FLAGS = FlagsType(
    flags=(
        ("MAP_SHARED", 0x1),
        ("MAP_PRIVATE", 0x2),
        ("MAP_FIXED", 0x10),
        ("MAP_ANONYMOUS", 0x20),
        ("MAP_GROWSDOWN", 0x100),
    )
)

_MADV_FLAGS = FlagsType(
    flags=(
        ("MADV_NORMAL", 0x0),
        ("MADV_RANDOM", 0x1),
        ("MADV_SEQUENTIAL", 0x2),
        ("MADV_WILLNEED", 0x3),
        ("MADV_DONTNEED", 0x4),
        ("MADV_FREE", 0x8),
    ),
)

_MSG_FLAGS = FlagsType(
    flags=(
        ("MSG_OOB", 0x1),
        ("MSG_PEEK", 0x2),
        ("MSG_DONTROUTE", 0x4),
        ("MSG_DONTWAIT", 0x40),
        ("MSG_WAITALL", 0x100),
        ("MSG_MORE", 0x8000),
    )
)

_SOCK_TYPE = FlagsType(
    flags=(
        ("SOCK_STREAM", 0x1),
        ("SOCK_DGRAM", 0x2),
        ("SOCK_RAW", 0x3),
        ("SOCK_NONBLOCK", 0x800),
        ("SOCK_CLOEXEC", 0x80000),
    )
)

_MODE = IntType(bits=32, minimum=0, maximum=0o7777, interesting=(0o644, 0o777, 0))
_SIZE32 = IntType(bits=32, minimum=0, maximum=1 << 20, interesting=(0, 1, 4096, 65536))
_OFFSET = IntType(bits=64, minimum=0, maximum=1 << 32, interesting=(0, 4096, 1 << 20))
_ADDR = IntType(
    bits=64,
    minimum=0,
    maximum=1 << 47,
    align=4096,
    interesting=(0, 0x20000000, 0x7F0000000000),
)

_FILENAME = BufferType(
    buffer_kind=BufferKind.FILENAME,
    max_len=64,
    values=(b"./file0", b"./file1", b"./dir0", b"./dir0/file0"),
)

_SOCKADDR = StructType(
    name="sockaddr_in",
    fields=(
        ("family", IntType(bits=16, minimum=0, maximum=45, interesting=(2, 10, 16))),
        ("port", IntType(bits=16, minimum=0, maximum=0xFFFF, interesting=(0, 80, 0x4E20))),
        ("addr", IntType(bits=32, minimum=0, maximum=0xFFFFFFFF, interesting=(0, 0x7F000001))),
        ("zero", ConstType(0, bits=64)),
    ),
)

_IOVEC = StructType(
    name="iovec",
    fields=(
        ("base", PtrType(BufferType(max_len=64))),
        ("len", LenType(path="base", bits=64)),
    ),
)

_MSGHDR = StructType(
    name="msghdr",
    fields=(
        ("name", PtrType(_SOCKADDR, optional=True)),
        ("namelen", IntType(bits=32, minimum=0, maximum=128, interesting=(0, 16, 28))),
        ("iov", PtrType(ArrayType(_IOVEC, min_len=1, max_len=4))),
        ("iovlen", LenType(path="iov", bits=64)),
        ("control", PtrType(BufferType(max_len=64), optional=True)),
        ("controllen", LenType(path="control", bits=64)),
        ("flags", _MSG_FLAGS),
    ),
)

# SCSI/ATA pass-through command block: the deep-constraint shape guarding
# the ATA out-of-bounds write of Table 4 (bug #1).
_SG_CDB = StructType(
    name="sg_cdb",
    fields=(
        ("opcode", IntType(bits=8, minimum=0, maximum=0xFF, interesting=(ATA_16, 0x12, 0x28))),
        ("protocol", IntType(bits=8, minimum=0, maximum=0x0F, interesting=(ATA_PROT_PIO, 0x06, 0x0C))),
        ("flags", FlagsType(flags=(("CK_COND", 0x20), ("T_DIR", 0x08), ("BYT_BLOK", 0x04)))),
        ("ata_cmd", IntType(bits=8, minimum=0, maximum=0xFF, interesting=(ATA_NOP, 0xEC, 0x25))),
        ("features", IntType(bits=8, minimum=0, maximum=0xFF)),
        ("count", IntType(bits=16, minimum=0, maximum=0xFFFF, interesting=(0, 1, 8))),
        ("lba", IntType(bits=32, minimum=0, maximum=0xFFFFFFFF)),
    ),
)

_SCSI_IOCTL_COMMAND = StructType(
    name="scsi_ioctl_command",
    fields=(
        ("inlen", IntType(bits=32, minimum=0, maximum=1 << 16, interesting=(0, 512, 4096))),
        ("outlen", IntType(bits=32, minimum=0, maximum=1 << 16, interesting=(0, 512, 4096, 0x10000))),
        ("cdb", _SG_CDB),
        ("data", PtrType(BufferType(max_len=512), direction=Direction.INOUT)),
    ),
)

_FB_VAR_SCREENINFO = StructType(
    name="fb_var_screeninfo",
    fields=(
        ("xres", IntType(bits=32, minimum=0, maximum=8192, interesting=(0, 640, 1024))),
        ("yres", IntType(bits=32, minimum=0, maximum=8192, interesting=(0, 480, 768))),
        ("bpp", IntType(bits=32, minimum=0, maximum=64, interesting=(8, 16, 24, 32))),
        ("rotate", IntType(bits=32, minimum=0, maximum=3)),
        ("activate", FlagsType(flags=(("FB_NOW", 0x0), ("FB_VBL", 0x10), ("FB_ALL", 0x40)))),
    ),
)

_SND_PARAMS = StructType(
    name="snd_pcm_params",
    fields=(
        ("format", IntType(bits=32, minimum=0, maximum=64, interesting=(1, 2, 10))),
        ("channels", IntType(bits=32, minimum=0, maximum=32, interesting=(1, 2))),
        ("rate", IntType(bits=32, minimum=0, maximum=384000, interesting=(8000, 44100, 48000))),
        ("period", IntType(bits=32, minimum=0, maximum=1 << 16)),
    ),
)

_TIMESPEC = StructType(
    name="timespec",
    fields=(
        ("sec", IntType(bits=64, minimum=0, maximum=1 << 32, interesting=(0, 1))),
        ("nsec", IntType(bits=64, minimum=0, maximum=10**9 + 10, interesting=(0, 10**9 - 1, 10**9))),
    ),
)

_ITIMERSPEC = StructType(
    name="itimerspec",
    fields=(("interval", _TIMESPEC), ("value", _TIMESPEC)),
)

_EPOLL_EVENT = StructType(
    name="epoll_event",
    fields=(
        ("events", FlagsType(flags=(("EPOLLIN", 0x1), ("EPOLLOUT", 0x4), ("EPOLLERR", 0x8), ("EPOLLET", 0x80000000)))),
        ("data", IntType(bits=64)),
    ),
)

_IO_URING_PARAMS = StructType(
    name="io_uring_params",
    fields=(
        ("sq_entries", IntType(bits=32, minimum=0, maximum=4096, interesting=(0, 1, 128, 4096))),
        ("cq_entries", IntType(bits=32, minimum=0, maximum=8192, interesting=(0, 256))),
        ("flags", FlagsType(flags=(("IORING_SETUP_IOPOLL", 0x1), ("IORING_SETUP_SQPOLL", 0x2), ("IORING_SETUP_CQSIZE", 0x8)))),
        ("sq_thread_cpu", IntType(bits=32, minimum=0, maximum=256)),
        ("sq_thread_idle", IntType(bits=32, minimum=0, maximum=10000)),
    ),
)

_BPF_INSN = StructType(
    name="bpf_insn",
    fields=(
        ("code", IntType(bits=8, minimum=0, maximum=0xFF, interesting=(0x07, 0x95, 0x18))),
        ("regs", IntType(bits=8, minimum=0, maximum=0xBB)),
        ("off", IntType(bits=16, minimum=0, maximum=0xFFFF)),
        ("imm", IntType(bits=32, minimum=0, maximum=0xFFFFFFFF, interesting=(0, 1))),
    ),
)

_BPF_ATTR = StructType(
    name="bpf_attr_prog_load",
    fields=(
        ("prog_type", IntType(bits=32, minimum=0, maximum=32, interesting=(1, 2, 5))),
        ("insns", PtrType(ArrayType(_BPF_INSN, min_len=1, max_len=4))),
        ("insn_cnt", LenType(path="insns", bits=32)),
        ("license", PtrType(BufferType(buffer_kind=BufferKind.STRING, max_len=16, values=(b"GPL", b"MIT")))),
        ("log_level", IntType(bits=32, minimum=0, maximum=4)),
    ),
)

_XDP_UMEM_REG = StructType(
    name="xdp_umem_reg",
    fields=(
        ("addr", _ADDR),
        ("len", IntType(bits=64, minimum=0, maximum=1 << 30, interesting=(0, 4096, 1 << 20))),
        ("chunk_size", IntType(bits=32, minimum=0, maximum=1 << 16, interesting=(0, 2048, 4096))),
        ("headroom", IntType(bits=32, minimum=0, maximum=1 << 12, interesting=(0, 256))),
    ),
)

_LANDLOCK_RULESET_ATTR = StructType(
    name="landlock_ruleset_attr",
    fields=(
        ("handled_access_fs", FlagsType(flags=(("LL_EXECUTE", 0x1), ("LL_WRITE", 0x2), ("LL_READ", 0x4), ("LL_DIR", 0x8)))),
        ("handled_access_net", FlagsType(flags=(("LL_BIND", 0x1), ("LL_CONNECT", 0x2)))),
    ),
)

_RXRPC_CALL = StructType(
    name="rxrpc_call_params",
    fields=(
        ("service", IntType(bits=16, minimum=0, maximum=0xFFFF, interesting=(0, 52))),
        ("security", IntType(bits=8, minimum=0, maximum=4)),
        ("user_call_id", IntType(bits=64)),
        ("tx_total_len", IntType(bits=64, minimum=0, maximum=1 << 24, interesting=(0, 1, 0xFFFF))),
    ),
)


def _base_specs() -> list[SyscallSpec]:
    """All specs present from version 6.8 on."""
    out_buf = PtrType(BufferType(max_len=4096), direction=Direction.OUT)
    in_buf = PtrType(BufferType(max_len=4096))
    specs = [
        # ----- fs -----
        SyscallSpec("open", (("file", PtrType(_FILENAME)), ("flags", _OPEN_FLAGS), ("mode", _MODE)), produces=FILE_FD, subsystem="fs"),
        SyscallSpec("openat", (("dirfd", ConstType(0xFFFFFF9C)), ("file", PtrType(_FILENAME)), ("flags", _OPEN_FLAGS), ("mode", _MODE)), produces=FILE_FD, subsystem="fs"),
        SyscallSpec("read", (("fd", ResourceType(FD)), ("buf", out_buf), ("count", _SIZE32)), subsystem="fs"),
        SyscallSpec("write", (("fd", ResourceType(FD)), ("buf", in_buf), ("count", LenType(path="buf", bits=64))), subsystem="fs"),
        SyscallSpec("pread64", (("fd", ResourceType(FD)), ("buf", out_buf), ("count", _SIZE32), ("pos", _OFFSET)), subsystem="ext4"),
        SyscallSpec("pwrite64", (("fd", ResourceType(FD)), ("buf", in_buf), ("count", LenType(path="buf", bits=64)), ("pos", _OFFSET)), subsystem="ext4"),
        SyscallSpec("close", (("fd", ResourceType(FD)),), subsystem="fs"),
        SyscallSpec("lseek", (("fd", ResourceType(FD)), ("offset", _OFFSET), ("whence", IntType(bits=32, minimum=0, maximum=4, interesting=(0, 1, 2)))), subsystem="fs"),
        SyscallSpec("ftruncate", (("fd", ResourceType(FILE_FD)), ("len", _OFFSET)), subsystem="fs"),
        SyscallSpec("fallocate", (("fd", ResourceType(FILE_FD)), ("mode", FlagsType(flags=(("FALLOC_KEEP_SIZE", 0x1), ("FALLOC_PUNCH_HOLE", 0x2), ("FALLOC_ZERO_RANGE", 0x10)))), ("offset", _OFFSET), ("len", _OFFSET)), subsystem="ext4"),
        SyscallSpec("fsync", (("fd", ResourceType(FD)),), subsystem="ext4"),
        SyscallSpec("mkdir", (("path", PtrType(_FILENAME)), ("mode", _MODE)), subsystem="fs"),
        SyscallSpec("unlink", (("path", PtrType(_FILENAME)),), subsystem="fs"),
        SyscallSpec("rename", (("old", PtrType(_FILENAME)), ("new", PtrType(_FILENAME))), subsystem="fs"),
        SyscallSpec("getdents64", (("fd", ResourceType(FILE_FD)), ("dirp", out_buf), ("count", _SIZE32)), subsystem="fs"),
        SyscallSpec("fcntl", (("fd", ResourceType(FD)), ("cmd", ConstType(4)), ("flags", _OPEN_FLAGS)), variant="setfl", subsystem="fs"),
        SyscallSpec("mount", (("src", PtrType(_FILENAME)), ("dst", PtrType(_FILENAME)), ("fstype", PtrType(BufferType(buffer_kind=BufferKind.STRING, max_len=16, values=(b"tmpfs", b"ext4", b"proc")))), ("flags", FlagsType(flags=(("MS_RDONLY", 0x1), ("MS_NOSUID", 0x2), ("MS_NODEV", 0x4), ("MS_BIND", 0x1000)))), ("data", PtrType(BufferType(max_len=64), optional=True))), variant="tmpfs", subsystem="fs"),
        # ----- mm -----
        SyscallSpec("mmap", (("addr", _ADDR), ("len", IntType(bits=64, minimum=0, maximum=1 << 30, align=1, interesting=(0, 4096, 1 << 21))), ("prot", _PROT_FLAGS), ("flags", _MAP_FLAGS), ("fd", ResourceType(FD)), ("offset", _OFFSET)), subsystem="mm"),
        SyscallSpec("munmap", (("addr", _ADDR), ("len", IntType(bits=64, minimum=0, maximum=1 << 30, interesting=(4096,)))), subsystem="mm"),
        SyscallSpec("madvise", (("addr", _ADDR), ("len", IntType(bits=64, minimum=0, maximum=1 << 30, interesting=(0, 4096))), ("advice", _MADV_FLAGS)), subsystem="mm"),
        SyscallSpec("mprotect", (("addr", _ADDR), ("len", IntType(bits=64, minimum=0, maximum=1 << 30, interesting=(4096,))), ("prot", _PROT_FLAGS)), subsystem="mm"),
        # ----- net -----
        SyscallSpec("socket", (("domain", IntType(bits=32, minimum=0, maximum=45, interesting=(2, 10, 16, 17))), ("type", _SOCK_TYPE), ("protocol", IntType(bits=32, minimum=0, maximum=255, interesting=(0, 6, 17)))), produces=SOCK, subsystem="net"),
        SyscallSpec("bind", (("sock", ResourceType(SOCK)), ("addr", PtrType(_SOCKADDR)), ("addrlen", IntType(bits=32, minimum=0, maximum=128, interesting=(16, 28)))), subsystem="net"),
        SyscallSpec("connect", (("sock", ResourceType(SOCK)), ("addr", PtrType(_SOCKADDR)), ("addrlen", IntType(bits=32, minimum=0, maximum=128, interesting=(16, 28)))), subsystem="net"),
        SyscallSpec("listen", (("sock", ResourceType(SOCK)), ("backlog", IntType(bits=32, minimum=0, maximum=4096, interesting=(0, 1, 128)))), subsystem="net"),
        SyscallSpec("sendmsg", (("sock", ResourceType(SOCK)), ("msg", PtrType(_MSGHDR)), ("flags", _MSG_FLAGS)), variant="inet", subsystem="net"),
        SyscallSpec("recvmsg", (("sock", ResourceType(SOCK)), ("msg", PtrType(_MSGHDR, direction=Direction.INOUT)), ("flags", _MSG_FLAGS)), variant="inet", subsystem="net"),
        SyscallSpec("sendto", (("sock", ResourceType(SOCK)), ("buf", in_buf), ("len", LenType(path="buf", bits=64)), ("flags", _MSG_FLAGS), ("addr", PtrType(_SOCKADDR, optional=True)), ("addrlen", IntType(bits=32, minimum=0, maximum=128, interesting=(0, 16)))), subsystem="net"),
        SyscallSpec("setsockopt", (("sock", ResourceType(SOCK)), ("level", IntType(bits=32, minimum=0, maximum=300, interesting=(1, 6, 17, 41))), ("optname", IntType(bits=32, minimum=0, maximum=128, interesting=(1, 2, 13, 20))), ("optval", in_buf), ("optlen", LenType(path="optval", bits=32))), variant="sock", subsystem="net"),
        SyscallSpec("getsockopt", (("sock", ResourceType(SOCK)), ("level", IntType(bits=32, minimum=0, maximum=300, interesting=(1, 6))), ("optname", IntType(bits=32, minimum=0, maximum=128, interesting=(1, 2))), ("optval", out_buf), ("optlen", PtrType(IntType(bits=32, minimum=0, maximum=4096), direction=Direction.INOUT))), variant="sock", subsystem="net"),
        # ----- drivers: scsi/ata (bug #1 home) -----
        SyscallSpec("open", (("dev", PtrType(BufferType(buffer_kind=BufferKind.FILENAME, max_len=16, values=(b"/dev/sg0",)))), ("flags", _OPEN_FLAGS)), variant="scsi", produces=SCSI_FD, subsystem="scsi"),
        SyscallSpec("ioctl", (("fd", ResourceType(SCSI_FD)), ("cmd", ConstType(SCSI_IOCTL_SEND_COMMAND)), ("arg", PtrType(_SCSI_IOCTL_COMMAND))), variant="SCSI_IOCTL_SEND_COMMAND", subsystem="scsi"),
        # ----- drivers: video -----
        SyscallSpec("open", (("dev", PtrType(BufferType(buffer_kind=BufferKind.FILENAME, max_len=16, values=(b"/dev/fb0",)))), ("flags", _OPEN_FLAGS)), variant="fb", produces=FB_FD, subsystem="video"),
        SyscallSpec("ioctl", (("fd", ResourceType(FB_FD)), ("cmd", ConstType(0x4601)), ("arg", PtrType(_FB_VAR_SCREENINFO))), variant="FBIOPUT_VSCREENINFO", subsystem="video"),
        # ----- drivers: sound -----
        SyscallSpec("open", (("dev", PtrType(BufferType(buffer_kind=BufferKind.FILENAME, max_len=16, values=(b"/dev/dsp",)))), ("flags", _OPEN_FLAGS)), variant="snd", produces=SND_FD, subsystem="sound"),
        SyscallSpec("ioctl", (("fd", ResourceType(SND_FD)), ("cmd", ConstType(0x5012)), ("arg", PtrType(_SND_PARAMS))), variant="SNDCTL_DSP_SETFMT", subsystem="sound"),
        # ----- io_uring -----
        SyscallSpec("io_uring_setup", (("entries", IntType(bits=32, minimum=0, maximum=8192, interesting=(0, 1, 128, 4096))), ("params", PtrType(_IO_URING_PARAMS, direction=Direction.INOUT))), produces=URING_FD, subsystem="io_uring"),
        SyscallSpec("io_uring_enter", (("fd", ResourceType(URING_FD)), ("to_submit", IntType(bits=32, minimum=0, maximum=4096, interesting=(0, 1))), ("min_complete", IntType(bits=32, minimum=0, maximum=4096, interesting=(0, 1))), ("flags", FlagsType(flags=(("IORING_ENTER_GETEVENTS", 0x1), ("IORING_ENTER_SQ_WAKEUP", 0x2)))), ("sig", PtrType(BufferType(max_len=8), optional=True))), subsystem="io_uring"),
        # ----- epoll -----
        SyscallSpec("epoll_create1", (("flags", FlagsType(flags=(("EPOLL_CLOEXEC", 0x80000),))),), produces=EPOLL_FD, subsystem="epoll"),
        SyscallSpec("epoll_ctl", (("epfd", ResourceType(EPOLL_FD)), ("op", IntType(bits=32, minimum=0, maximum=4, interesting=(1, 2, 3))), ("fd", ResourceType(FD)), ("event", PtrType(_EPOLL_EVENT, optional=True))), subsystem="epoll"),
        # ----- timers -----
        SyscallSpec("timerfd_create", (("clockid", IntType(bits=32, minimum=0, maximum=12, interesting=(0, 1, 7))), ("flags", FlagsType(flags=(("TFD_NONBLOCK", 0x800), ("TFD_CLOEXEC", 0x80000))))), produces=TIMER_FD, subsystem="timer"),
        SyscallSpec("timerfd_settime", (("fd", ResourceType(TIMER_FD)), ("flags", IntType(bits=32, minimum=0, maximum=3, interesting=(0, 1))), ("new", PtrType(_ITIMERSPEC)), ("old", PtrType(_ITIMERSPEC, direction=Direction.OUT, optional=True))), subsystem="timer"),
        # ----- pipes & watch queues -----
        SyscallSpec("pipe2", (("flags", FlagsType(flags=(("O_NONBLOCK", 0x800), ("O_CLOEXEC", 0x80000), ("O_NOTIFICATION_PIPE", 0x4000000)))),), produces=PIPE_FD, subsystem="pipe"),
        SyscallSpec("ioctl", (("fd", ResourceType(PIPE_FD)), ("cmd", ConstType(0x5760)), ("size", IntType(bits=32, minimum=0, maximum=4096, interesting=(0, 1, 128, 256, 4096)))), variant="IOC_WATCH_QUEUE_SET_SIZE", subsystem="watch_queue"),
        SyscallSpec("splice", (("fd_in", ResourceType(FD)), ("off_in", PtrType(IntType(bits=64, minimum=0, maximum=1 << 32), optional=True)), ("fd_out", ResourceType(FD)), ("off_out", PtrType(IntType(bits=64, minimum=0, maximum=1 << 32), optional=True)), ("len", _SIZE32), ("flags", FlagsType(flags=(("SPLICE_F_MOVE", 0x1), ("SPLICE_F_NONBLOCK", 0x2), ("SPLICE_F_MORE", 0x4))))), subsystem="pipe"),
        # ----- bpf -----
        SyscallSpec("bpf", (("cmd", ConstType(5)), ("attr", PtrType(_BPF_ATTR)), ("size", IntType(bits=32, minimum=0, maximum=128, interesting=(48, 120)))), variant="PROG_LOAD", produces=BPF_FD, subsystem="bpf"),
        # ----- misc -----
        SyscallSpec("dup", (("fd", ResourceType(FD)),), produces=FD, subsystem="fs"),
    ]
    return specs


# ----- release deltas -----
#
# The declarative growth table: release N's API surface is the base set
# plus every delta up to and including N, in order.  Adding a release is
# one new entry here; KNOWN_VERSIONS and build_standard_table derive
# from it, so there is exactly one ground-truth path.

RELEASE_DELTAS: tuple[tuple[str, tuple[SyscallSpec, ...]], ...] = (
    ("6.8", ()),  # the base surface (see _base_specs)
    ("6.9", (
        # xdp and landlock
        SyscallSpec("socket", (("domain", ConstType(44)), ("type", _SOCK_TYPE), ("protocol", ConstType(0))), variant="xdp", produces=XDP_SOCK, subsystem="xdp"),
        SyscallSpec("setsockopt", (("sock", ResourceType(XDP_SOCK)), ("level", ConstType(283)), ("optname", ConstType(4)), ("umem", PtrType(_XDP_UMEM_REG)), ("optlen", IntType(bits=32, minimum=0, maximum=64, interesting=(24, 32)))), variant="XDP_UMEM_REG", subsystem="xdp"),
        SyscallSpec("landlock_create_ruleset", (("attr", PtrType(_LANDLOCK_RULESET_ATTR)), ("size", IntType(bits=32, minimum=0, maximum=32, interesting=(8, 16))), ("flags", IntType(bits=32, minimum=0, maximum=4, interesting=(0, 1)))), produces=RULESET_FD, subsystem="landlock"),
        SyscallSpec("landlock_restrict_self", (("ruleset", ResourceType(RULESET_FD)), ("flags", IntType(bits=32, minimum=0, maximum=4))), subsystem="landlock"),
    )),
    ("6.10", (
        # rxrpc
        SyscallSpec("socket", (("domain", ConstType(33)), ("type", ConstType(2)), ("protocol", IntType(bits=32, minimum=0, maximum=8, interesting=(0,)))), variant="rxrpc", produces=RXRPC_SOCK, subsystem="rxrpc"),
        SyscallSpec("sendmsg", (("sock", ResourceType(RXRPC_SOCK)), ("call", PtrType(_RXRPC_CALL)), ("data", PtrType(BufferType(max_len=128))), ("len", LenType(path="data", bits=64)), ("flags", _MSG_FLAGS)), variant="rxrpc", subsystem="rxrpc"),
    )),
)

KNOWN_VERSIONS: tuple[str, ...] = tuple(
    version for version, _ in RELEASE_DELTAS
)


def release_deltas(version: str) -> tuple[tuple[str, tuple[SyscallSpec, ...]], ...]:
    """The ``(release, new specs)`` entries folded into ``version``."""
    if version not in KNOWN_VERSIONS:
        raise SpecError(
            f"unknown kernel version {version!r}; known: {KNOWN_VERSIONS}"
        )
    index = KNOWN_VERSIONS.index(version)
    return RELEASE_DELTAS[: index + 1]


def build_standard_table(version: str = "6.8") -> SyscallTable:
    """The syscall table for a synthetic kernel release."""
    specs = _base_specs()
    for _, delta in release_deltas(version):
        specs.extend(delta)
    return SyscallTable(specs)
