"""Stable "slot" identifiers linking kernel code to argument positions.

In a compiled kernel, the code handling a system call loads each argument
(or copied-in struct field) from a fixed register or memory offset; a
branch that depends on an argument therefore *textually* references that
offset in its compare instruction.  PMM exploits exactly this correlation
(§3.2/§3.3): the assembly of an uncovered branch hints at which argument
steers it.

This module derives a deterministic slot id for every ``(syscall
variant, argument path)`` pair.  The synthetic kernel builder emits the
slot token inside the assembly of condition blocks, and the query-graph
encoder attaches the same token id to the corresponding argument vertex.
The two sides use *independent* embedding tables in the model, so the
correspondence must be learned from data — as in the real system.
"""

from __future__ import annotations

import hashlib

__all__ = ["slot_id", "slot_token", "SLOT_SPACE"]

# Number of distinct slot identifiers.  Small enough that embeddings are
# learnable from modest data, large enough that collisions are rare
# (a few hundred live (syscall, path) pairs in the standard table).
SLOT_SPACE = 1024


def slot_id(syscall_full_name: str, path_elements: tuple[int, ...]) -> int:
    """Deterministic slot id in ``[0, SLOT_SPACE)`` for an argument path."""
    hasher = hashlib.blake2b(digest_size=4)
    hasher.update(syscall_full_name.encode())
    for element in path_elements:
        hasher.update(b".")
        hasher.update(str(element).encode())
    return int.from_bytes(hasher.digest(), "little") % SLOT_SPACE


def slot_token(syscall_full_name: str, path_elements: tuple[int, ...]) -> str:
    """The assembly token for a slot, e.g. ``off_03f2``."""
    return f"off_{slot_id(syscall_full_name, path_elements):04x}"
