"""Syzlang: the test-program DSL.

This package reimplements the slice of Syzkaller's ``prog`` module that
Snowplow depends on: a type system for system-call arguments (including
nested structs, pointers, buffers, and cross-call resources), syscall
specifications, concrete test programs, a text format with a parser and
serializer, a random program generator, and utilities to enumerate every
mutable sub-argument of a program (the ">60 arguments per test" search
space of the paper's §2/§5.1).
"""

from repro.syzlang.types import (
    ArgKind,
    ArrayType,
    BufferKind,
    BufferType,
    ConstType,
    FlagsType,
    IntType,
    LenType,
    PtrType,
    ResourceKind,
    ResourceType,
    StructType,
    Type,
)
from repro.syzlang.spec import SyscallSpec, SyscallTable
from repro.syzlang.program import (
    ArgPath,
    ArrayValue,
    BufferValue,
    Call,
    ConstValue,
    IntValue,
    Program,
    PtrValue,
    ResourceValue,
    StructValue,
    Value,
)
from repro.syzlang.parser import parse_program, serialize_program
from repro.syzlang.generator import ProgramGenerator
from repro.syzlang.stdlib import build_standard_table

__all__ = [
    "ArgKind",
    "ArgPath",
    "ArrayType",
    "ArrayValue",
    "BufferKind",
    "BufferType",
    "BufferValue",
    "Call",
    "ConstType",
    "ConstValue",
    "FlagsType",
    "IntType",
    "IntValue",
    "LenType",
    "Program",
    "ProgramGenerator",
    "PtrType",
    "PtrValue",
    "ResourceKind",
    "ResourceType",
    "ResourceValue",
    "StructType",
    "StructValue",
    "SyscallSpec",
    "SyscallTable",
    "Type",
    "Value",
    "build_standard_table",
    "build_standard_table",
    "parse_program",
    "serialize_program",
]
