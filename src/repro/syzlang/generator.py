"""Random generation of argument values and whole test programs.

The generator plays two roles in the reproduction:

- it builds the *seed corpora* that stand in for the Syzbot test corpus
  the paper samples 1M base tests from (§5.1), and
- it supplies fresh values to the mutation instantiator
  (:mod:`repro.fuzzer.mutations`).

Generation is resource-aware: a call that consumes an ``fd`` is preceded
by a producing call with high probability, mirroring how Syzkaller biases
generation toward semantically valid programs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import choice_weighted
from repro.syzlang.program import (
    ArrayValue,
    BufferValue,
    Call,
    ConstValue,
    IntValue,
    Program,
    PtrValue,
    ResourceValue,
    StructValue,
    Value,
    DATA_AREA_BASE,
)
from repro.syzlang.spec import SyscallSpec, SyscallTable
from repro.syzlang.types import (
    ArrayType,
    BufferKind,
    BufferType,
    ConstType,
    FlagsType,
    IntType,
    LenType,
    PtrType,
    ResourceType,
    StructType,
    Type,
)

__all__ = ["ProgramGenerator"]

_FILENAMES = (b"./file0", b"./file1", b"./file2", b"./dir0/file0")
_STRINGS = (b"", b"db", b"hello", b"\x00\x00", b"AAAA")


@dataclass
class GeneratorConfig:
    """Tunables for random program generation."""

    min_calls: int = 3
    max_calls: int = 8
    # Probability that a resource consumer is wired to a live producer
    # instead of NULL.
    wire_resource_prob: float = 0.9
    # Probability a nullable pointer is generated NULL.
    null_ptr_prob: float = 0.05


class ProgramGenerator:
    """Generates random, valid programs over a syscall table."""

    def __init__(
        self,
        table: SyscallTable,
        rng: np.random.Generator,
        config: GeneratorConfig | None = None,
    ):
        self.table = table
        self.rng = rng
        self.config = config or GeneratorConfig()
        self._next_offset = 0

    # ----- values -----

    def random_value(self, ty: Type, producers: dict[str, list[int]]) -> Value:
        """A random value of ``ty``.

        ``producers`` maps resource-kind names to indices of calls already
        in the program that produce them.
        """
        if isinstance(ty, ConstType):
            return ConstValue(ty)
        if isinstance(ty, FlagsType):
            return IntValue(ty, self._random_flags(ty))
        if isinstance(ty, LenType):
            # Filled in by Program.resolve_len_fields afterwards.
            return IntValue(ty, 0)
        if isinstance(ty, IntType):
            return IntValue(ty, self._random_int(ty))
        if isinstance(ty, BufferType):
            return BufferValue(ty, self._random_buffer(ty))
        if isinstance(ty, PtrType):
            if ty.optional and self.rng.random() < self.config.null_ptr_prob:
                return PtrValue(ty, 0, None)
            pointee = self.random_value(ty.elem, producers)
            return PtrValue(ty, self._fresh_address(), pointee)
        if isinstance(ty, StructType):
            fields = [
                self.random_value(field_ty, producers)
                for _, field_ty in ty.fields
            ]
            return StructValue(ty, fields)
        if isinstance(ty, ArrayType):
            length = int(self.rng.integers(ty.min_len, ty.max_len + 1))
            elems = [
                self.random_value(ty.elem, producers) for _ in range(length)
            ]
            return ArrayValue(ty, elems)
        if isinstance(ty, ResourceType):
            return self._random_resource(ty, producers)
        raise TypeError(f"cannot generate a value of type {ty!r}")

    def _random_int(self, ty: IntType) -> int:
        if ty.interesting and self.rng.random() < 0.25:
            return int(self.rng.choice(ty.interesting))
        upper = ty.upper_bound
        if upper - ty.minimum > 1 << 32:
            # Wide ranges: sample magnitudes, not uniform 64-bit noise.
            magnitude = int(self.rng.integers(0, ty.bits))
            value = int(self.rng.integers(0, 2)) + (1 << magnitude) - 1
            value = min(max(value, ty.minimum), upper)
        else:
            value = int(self.rng.integers(ty.minimum, upper + 1))
        if ty.align > 1:
            value -= value % ty.align
            value = max(value, ty.minimum)
        return value

    def _random_flags(self, ty: FlagsType) -> int:
        value = 0
        for _, bit in ty.flags:
            if self.rng.random() < 0.3:
                value |= bit
        return value

    def _random_buffer(self, ty: BufferType) -> bytes:
        if ty.values and self.rng.random() < 0.8:
            return bytes(ty.values[int(self.rng.integers(len(ty.values)))])
        if ty.buffer_kind is BufferKind.FILENAME:
            return bytes(_FILENAMES[int(self.rng.integers(len(_FILENAMES)))])
        if ty.buffer_kind is BufferKind.STRING:
            return bytes(_STRINGS[int(self.rng.integers(len(_STRINGS)))])
        length = int(
            self.rng.integers(ty.min_len, min(ty.max_len, 16) + 1)
        )
        return bytes(self.rng.integers(0, 256, size=length, dtype=np.uint8))

    def _random_resource(
        self, ty: ResourceType, producers: dict[str, list[int]]
    ) -> ResourceValue:
        candidates: list[int] = []
        for kind_name, indices in producers.items():
            if kind_name == ty.resource.name:
                candidates.extend(indices)
        if candidates and self.rng.random() < self.config.wire_resource_prob:
            return ResourceValue(ty, int(self.rng.choice(candidates)))
        return ResourceValue(ty, None)

    def _fresh_address(self) -> int:
        address = DATA_AREA_BASE + self._next_offset
        self._next_offset = (self._next_offset + 64) % 0x10000
        return address

    # ----- calls and programs -----

    def random_call(
        self, spec: SyscallSpec, producers: dict[str, list[int]]
    ) -> Call:
        args = [
            self.random_value(arg_ty, producers) for _, arg_ty in spec.args
        ]
        return Call(spec, args)

    def _producers_in(self, program: Program) -> dict[str, list[int]]:
        producers: dict[str, list[int]] = {}
        for index, call in enumerate(program.calls):
            produced = call.spec.produces
            if produced is None:
                continue
            kind = produced
            while kind is not None:
                producers.setdefault(kind.name, []).append(index)
                kind = kind.parent
        return producers

    def random_program(self, length: int | None = None) -> Program:
        """Generate one valid random program."""
        if length is None:
            length = int(
                self.rng.integers(
                    self.config.min_calls, self.config.max_calls + 1
                )
            )
        program = Program()
        for _ in range(length):
            producers = self._producers_in(program)
            spec = self._pick_spec(producers)
            # If the spec consumes a resource we cannot satisfy, prepend a
            # producer first (resource-aware generation).
            for needed in spec.consumes():
                if needed.name not in producers:
                    producer_specs = self.table.producers_of(needed)
                    if producer_specs:
                        producer = producer_specs[
                            int(self.rng.integers(len(producer_specs)))
                        ]
                        program.calls.append(
                            self.random_call(producer, producers)
                        )
                        producers = self._producers_in(program)
            program.calls.append(self.random_call(spec, producers))
        program.resolve_len_fields()
        return program

    def _pick_spec(self, producers: dict[str, list[int]]) -> SyscallSpec:
        weights = []
        for spec in self.table.specs:
            weight = 1.0
            consumed = spec.consumes()
            if consumed and all(k.name in producers for k in consumed):
                # Prefer calls whose resources are already available.
                weight = 3.0
            weights.append(weight)
        return choice_weighted(self.rng, list(self.table.specs), weights)

    def seed_corpus(self, size: int) -> list[Program]:
        """Generate a corpus of ``size`` random programs."""
        return [self.random_program() for _ in range(size)]
