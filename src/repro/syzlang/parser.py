"""Text format for kernel tests (the "syz" format of Figure 4).

Programs serialize to one call per line::

    r0 = open(&(0x7f0000000000)='./file0', O_CREAT|O_RDWR, 0x1ff)
    read(r0, &(0x7f0000000040)="00"/8, 0x2a)

Conventions:

- integers, constants and length fields print as hex;
- flags print as ``A|B`` when the value is exactly a union of named
  flags, hex otherwise;
- data buffers print as ``"<hex bytes>"``, strings and filenames as
  single-quoted text with ``\\xNN`` escapes;
- pointers print as ``&(0xADDR)=<pointee>``, NULL pointers as ``0x0``;
- structs as ``{...}``, arrays as ``[...]``;
- resources as ``rN`` naming the producing call, NULL as
  ``0xffffffffffffffff``.

Parsing is type-directed: the target :class:`SyscallTable` supplies the
shape of every argument, so the grammar stays unambiguous.
"""

from __future__ import annotations

import string as _string

from repro.errors import ParseError, ProgramError
from repro.syzlang.program import (
    ArrayValue,
    BufferValue,
    Call,
    ConstValue,
    IntValue,
    Program,
    PtrValue,
    ResourceValue,
    StructValue,
    Value,
)
from repro.syzlang.spec import SyscallTable
from repro.syzlang.types import (
    ArrayType,
    BufferKind,
    BufferType,
    ConstType,
    FlagsType,
    IntType,
    LenType,
    PtrType,
    ResourceType,
    StructType,
    Type,
    NULL_RESOURCE,
)

__all__ = ["serialize_program", "parse_program"]

_PRINTABLE = set(_string.ascii_letters + _string.digits + " ._-/:,+=@#%")


# --------------------------------------------------------------------
# Serialization
# --------------------------------------------------------------------


def serialize_program(program: Program) -> str:
    """Render ``program`` in the syz text format."""
    labels: dict[int, str] = {}
    next_label = 0
    for index, call in enumerate(program.calls):
        if call.spec.produces is not None:
            labels[index] = f"r{next_label}"
            next_label += 1
    lines = []
    for index, call in enumerate(program.calls):
        rendered_args = ", ".join(
            _serialize_value(arg, labels) for arg in call.args
        )
        line = f"{call.spec.full_name}({rendered_args})"
        if index in labels:
            line = f"{labels[index]} = {line}"
        lines.append(line)
    return "\n".join(lines)


def _serialize_value(value: Value, labels: dict[int, str]) -> str:
    if isinstance(value, ConstValue):
        return f"0x{value.value:x}"
    if isinstance(value, IntValue):
        ty = value.ty
        if isinstance(ty, FlagsType) and value.value:
            names = ty.names_for(value.value)
            covered = 0
            for name in names:
                covered |= ty.value_of(name)
            if names and covered == value.value:
                return "|".join(names)
        return f"0x{value.value:x}"
    if isinstance(value, BufferValue):
        if value.ty.buffer_kind is BufferKind.DATA:
            return f'"{value.data.hex()}"'
        return f"'{_escape_text(value.data)}'"
    if isinstance(value, PtrValue):
        if value.pointee is None:
            return "0x0"
        inner = _serialize_value(value.pointee, labels)
        return f"&(0x{value.address:x})={inner}"
    if isinstance(value, StructValue):
        inner = ", ".join(_serialize_value(v, labels) for v in value.fields)
        return "{" + inner + "}"
    if isinstance(value, ArrayValue):
        inner = ", ".join(_serialize_value(v, labels) for v in value.elems)
        return "[" + inner + "]"
    if isinstance(value, ResourceValue):
        if value.producer is None:
            return f"0x{NULL_RESOURCE:x}"
        label = labels.get(value.producer)
        if label is None:
            raise ProgramError(
                f"resource references call {value.producer}, which does not "
                "produce a resource"
            )
        return label
    raise ProgramError(f"cannot serialize value {value!r}")


def _escape_text(data: bytes) -> str:
    out = []
    for byte in data:
        char = chr(byte)
        if char in _PRINTABLE:
            out.append(char)
        else:
            out.append(f"\\x{byte:02x}")
    return "".join(out)


def _unescape_text(text: str) -> bytes:
    out = bytearray()
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\":
            if index + 3 >= len(text) or text[index + 1] != "x":
                raise ParseError(f"bad escape in string literal: {text!r}")
            out.append(int(text[index + 2 : index + 4], 16))
            index += 4
        else:
            out.append(ord(char))
            index += 1
    return bytes(out)


# --------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------


class _Cursor:
    """A tiny scanning cursor over one line."""

    def __init__(self, text: str, line: int):
        self.text = text
        self.pos = 0
        self.line = line

    def error(self, message: str) -> ParseError:
        return ParseError(f"{message} (at column {self.pos})", self.line)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_spaces(self) -> None:
        while self.peek() == " ":
            self.pos += 1

    def expect(self, char: str) -> None:
        self.skip_spaces()
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def try_consume(self, char: str) -> bool:
        self.skip_spaces()
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    def ident(self) -> str:
        self.skip_spaces()
        start = self.pos
        while self.peek().isalnum() or self.peek() in "_$":
            self.pos += 1
        if start == self.pos:
            raise self.error("expected an identifier")
        return self.text[start : self.pos]

    def number(self) -> int:
        self.skip_spaces()
        start = self.pos
        if self.text.startswith("0x", self.pos):
            self.pos += 2
            while self.peek() in _string.hexdigits:
                self.pos += 1
            if self.pos == start + 2:
                raise self.error("expected hex digits after 0x")
            return int(self.text[start + 2 : self.pos], 16)
        while self.peek().isdigit():
            self.pos += 1
        if start == self.pos:
            raise self.error("expected a number")
        return int(self.text[start : self.pos])

    def quoted(self, quote: str) -> str:
        self.expect(quote)
        start = self.pos
        while self.peek() and self.peek() != quote:
            if self.peek() == "\\":
                self.pos += 1
            self.pos += 1
        if self.peek() != quote:
            raise self.error("unterminated string literal")
        literal = self.text[start : self.pos]
        self.pos += 1
        return literal


def parse_program(text: str, table: SyscallTable) -> Program:
    """Parse a syz-format ``text`` against ``table``.

    Raises :class:`ParseError` for syntax errors and shape mismatches.
    """
    program = Program()
    labels: dict[str, int] = {}
    line_number = 0
    for raw_line in text.splitlines():
        line_number += 1
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        cursor = _Cursor(line, line_number)
        name = cursor.ident()
        cursor.skip_spaces()
        label: str | None = None
        if cursor.peek() == "=" and not name.startswith("0x"):
            cursor.expect("=")
            label = name
            name = cursor.ident()
        if name not in table:
            raise ParseError(f"unknown syscall {name!r}", line_number)
        spec = table.lookup(name)
        cursor.expect("(")
        args: list[Value] = []
        for arg_index, (_, arg_ty) in enumerate(spec.args):
            if arg_index > 0:
                cursor.expect(",")
            args.append(_parse_value(cursor, arg_ty, labels))
        cursor.expect(")")
        cursor.skip_spaces()
        if cursor.pos != len(cursor.text):
            raise cursor.error("trailing characters after call")
        call_index = len(program.calls)
        program.calls.append(Call(spec, args))
        if label is not None:
            if spec.produces is None:
                raise ParseError(
                    f"call {name!r} produces no resource to bind to "
                    f"{label!r}",
                    line_number,
                )
            labels[label] = call_index
    return program


def _parse_value(cursor: _Cursor, ty: Type, labels: dict[str, int]) -> Value:
    if isinstance(ty, ConstType):
        value = cursor.number()
        if value != ty.value:
            raise cursor.error(
                f"constant mismatch: expected 0x{ty.value:x}, got 0x{value:x}"
            )
        return ConstValue(ty)
    if isinstance(ty, FlagsType):
        return _parse_flags(cursor, ty)
    if isinstance(ty, (IntType, LenType)):
        return IntValue(ty, cursor.number())
    if isinstance(ty, BufferType):
        if ty.buffer_kind is BufferKind.DATA:
            literal = cursor.quoted('"')
            try:
                data = bytes.fromhex(literal)
            except ValueError as exc:
                raise cursor.error(f"bad hex buffer: {exc}") from exc
            return BufferValue(ty, data)
        literal = cursor.quoted("'")
        return BufferValue(ty, _unescape_text(literal))
    if isinstance(ty, PtrType):
        cursor.skip_spaces()
        if cursor.peek() == "&":
            cursor.expect("&")
            cursor.expect("(")
            address = cursor.number()
            cursor.expect(")")
            cursor.expect("=")
            pointee = _parse_value(cursor, ty.elem, labels)
            return PtrValue(ty, address, pointee)
        value = cursor.number()
        if value != 0:
            raise cursor.error("non-NULL pointer must use &(addr)=value")
        return PtrValue(ty, 0, None)
    if isinstance(ty, StructType):
        cursor.expect("{")
        fields: list[Value] = []
        for field_index, (_, field_ty) in enumerate(ty.fields):
            if field_index > 0:
                cursor.expect(",")
            fields.append(_parse_value(cursor, field_ty, labels))
        cursor.expect("}")
        return StructValue(ty, fields)
    if isinstance(ty, ArrayType):
        cursor.expect("[")
        elems: list[Value] = []
        if not cursor.try_consume("]"):
            while True:
                elems.append(_parse_value(cursor, ty.elem, labels))
                if cursor.try_consume("]"):
                    break
                cursor.expect(",")
        if not ty.min_len <= len(elems) <= ty.max_len:
            raise cursor.error(
                f"array length {len(elems)} outside "
                f"[{ty.min_len}, {ty.max_len}]"
            )
        return ArrayValue(ty, elems)
    if isinstance(ty, ResourceType):
        cursor.skip_spaces()
        if cursor.peek() == "r":
            label = cursor.ident()
            if label not in labels:
                raise cursor.error(f"undefined resource label {label!r}")
            return ResourceValue(ty, labels[label])
        value = cursor.number()
        if value != NULL_RESOURCE:
            raise cursor.error(
                "resource must be a label rN or the NULL resource"
            )
        return ResourceValue(ty, None)
    raise cursor.error(f"unsupported type {ty!r}")


def _parse_flags(cursor: _Cursor, ty: FlagsType) -> IntValue:
    cursor.skip_spaces()
    if cursor.peek().isdigit():
        return IntValue(ty, cursor.number())
    value = 0
    while True:
        name = cursor.ident()
        value |= ty.value_of(name)
        if not cursor.try_consume("|"):
            break
    return IntValue(ty, value)
