"""The Syzlang argument type system.

Types describe the *shape* of system-call arguments; concrete argument
values live in :mod:`repro.syzlang.program`.  The type system mirrors the
subset of Syzkaller's Syzlang [24] that the paper's mutation study needs:

- scalar integers with ranges, bit widths, and alignment,
- flag sets (bitwise-or combinations of named constants),
- compile-time constants (not mutable),
- length fields whose value is derived from a sibling buffer,
- buffers (raw data, strings, file names),
- pointers into the test's data area, with in/out direction,
- fixed structs and variable-length arrays (arbitrarily nested),
- resources: kernel objects (fds, sockets, ...) produced by one call and
  consumed by later calls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SpecError

__all__ = [
    "ArgKind",
    "ArrayType",
    "BufferKind",
    "BufferType",
    "ConstType",
    "Direction",
    "FlagsType",
    "IntType",
    "LenType",
    "PtrType",
    "ResourceKind",
    "ResourceType",
    "StructType",
    "Type",
    "NULL_RESOURCE",
]

# Sentinel value a consumer uses when no live resource is available;
# mirrors Syzkaller's 0xffffffffffffffff "invalid fd" convention.
NULL_RESOURCE = 0xFFFFFFFFFFFFFFFF


class ArgKind(enum.Enum):
    """Coarse argument kinds; used as model features (§3.3 embeds the
    argument *type*, never literal values)."""

    INT = "int"
    FLAGS = "flags"
    CONST = "const"
    LEN = "len"
    BUFFER = "buffer"
    STRING = "string"
    FILENAME = "filename"
    PTR = "ptr"
    STRUCT = "struct"
    ARRAY = "array"
    RESOURCE = "resource"


class Direction(enum.Enum):
    """Pointer direction: data flowing into or out of the kernel."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"


class BufferKind(enum.Enum):
    """What a buffer holds; determines mutation strategy and printing."""

    DATA = "data"
    STRING = "string"
    FILENAME = "filename"


@dataclass(frozen=True)
class ResourceKind:
    """A named kernel-resource class, e.g. ``fd`` or ``sock``.

    ``parent`` supports subtyping: a ``sock`` is usable where an ``fd``
    is required (as in Syzkaller's resource hierarchy).
    """

    name: str
    parent: "ResourceKind | None" = None

    def compatible_with(self, other: "ResourceKind") -> bool:
        """True if a resource of this kind can be consumed as ``other``."""
        kind: ResourceKind | None = self
        while kind is not None:
            if kind.name == other.name:
                return True
            kind = kind.parent
        return False

    def __str__(self) -> str:
        return self.name


class Type:
    """Base class for all Syzlang types."""

    kind: ArgKind

    def is_mutable(self) -> bool:
        """Whether the mutator may rewrite values of this type in place.

        Compound types (ptr/struct/array) are containers: their children
        may be mutable but the container itself is not a mutation site.
        """
        return False

    def validate(self) -> None:
        """Raise :class:`SpecError` if the type definition is inconsistent."""


@dataclass(frozen=True)
class IntType(Type):
    """An integer argument with an inclusive range."""

    bits: int = 64
    minimum: int = 0
    maximum: int | None = None
    align: int = 1
    # Values the kernel code actually compares against; the instantiator
    # favours these ("replace an integer with a constant" strategy of §2).
    interesting: tuple[int, ...] = ()

    kind = ArgKind.INT

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.bits not in (8, 16, 32, 64):
            raise SpecError(f"unsupported integer width: {self.bits}")
        if self.align < 1:
            raise SpecError(f"alignment must be positive, got {self.align}")
        if self.maximum is not None and self.maximum < self.minimum:
            raise SpecError(
                f"empty integer range [{self.minimum}, {self.maximum}]"
            )

    @property
    def upper_bound(self) -> int:
        """The effective inclusive maximum for value generation."""
        if self.maximum is not None:
            return self.maximum
        return (1 << self.bits) - 1

    def is_mutable(self) -> bool:
        return True


@dataclass(frozen=True)
class FlagsType(Type):
    """A bitwise-or combination of named flag constants."""

    flags: tuple[tuple[str, int], ...]
    bits: int = 32

    kind = ArgKind.FLAGS

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.flags:
            raise SpecError("flags type needs at least one flag")
        seen: set[str] = set()
        for name, value in self.flags:
            if name in seen:
                raise SpecError(f"duplicate flag name {name!r}")
            seen.add(name)
            if value < 0:
                raise SpecError(f"flag {name!r} has negative value")

    def names_for(self, value: int) -> list[str]:
        """Flag names whose bits are all present in ``value``."""
        return [name for name, bit in self.flags if bit and value & bit == bit]

    def value_of(self, name: str) -> int:
        for flag_name, value in self.flags:
            if flag_name == name:
                return value
        raise SpecError(f"unknown flag name {name!r}")

    def all_bits(self) -> int:
        mask = 0
        for _, value in self.flags:
            mask |= value
        return mask

    def is_mutable(self) -> bool:
        return True


@dataclass(frozen=True)
class ConstType(Type):
    """A fixed constant (e.g. a command number pinned by the variant)."""

    value: int
    bits: int = 64

    kind = ArgKind.CONST

    def is_mutable(self) -> bool:
        return False


@dataclass(frozen=True)
class LenType(Type):
    """The length of a sibling argument, in bytes or elements.

    ``path`` names the sibling field whose length this argument carries;
    lookup is resolved against the enclosing struct or call at runtime.
    """

    path: str
    bits: int = 64

    kind = ArgKind.LEN

    def is_mutable(self) -> bool:
        # Length fields are occasionally mutated deliberately (that is how
        # the ATA out-of-bounds write of Table 4 is triggered), so they are
        # mutation sites, just down-weighted by the instantiator.
        return True


@dataclass(frozen=True)
class BufferType(Type):
    """A byte buffer, string, or file name."""

    buffer_kind: BufferKind = BufferKind.DATA
    min_len: int = 0
    max_len: int = 4096
    # Known-good values (e.g. well-formed filenames) for generation.
    values: tuple[bytes, ...] = ()

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.min_len < 0 or self.max_len < self.min_len:
            raise SpecError(
                f"bad buffer length range [{self.min_len}, {self.max_len}]"
            )

    @property
    def kind(self) -> ArgKind:  # type: ignore[override]
        if self.buffer_kind is BufferKind.STRING:
            return ArgKind.STRING
        if self.buffer_kind is BufferKind.FILENAME:
            return ArgKind.FILENAME
        return ArgKind.BUFFER

    def is_mutable(self) -> bool:
        return True


@dataclass(frozen=True)
class PtrType(Type):
    """A pointer to a value of ``elem`` type in the test data area."""

    elem: Type
    direction: Direction = Direction.IN
    optional: bool = False  # may be NULL

    kind = ArgKind.PTR

    def is_mutable(self) -> bool:
        return False


@dataclass(frozen=True)
class StructType(Type):
    """A fixed sequence of named fields."""

    name: str
    fields: tuple[tuple[str, Type], ...]

    kind = ArgKind.STRUCT

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.fields:
            raise SpecError(f"struct {self.name!r} has no fields")
        seen: set[str] = set()
        for field_name, _ in self.fields:
            if field_name in seen:
                raise SpecError(
                    f"struct {self.name!r} has duplicate field {field_name!r}"
                )
            seen.add(field_name)

    def field_type(self, name: str) -> Type:
        for field_name, field_ty in self.fields:
            if field_name == name:
                return field_ty
        raise SpecError(f"struct {self.name!r} has no field {name!r}")

    def field_index(self, name: str) -> int:
        for index, (field_name, _) in enumerate(self.fields):
            if field_name == name:
                return index
        raise SpecError(f"struct {self.name!r} has no field {name!r}")


@dataclass(frozen=True)
class ArrayType(Type):
    """A variable-length homogeneous array."""

    elem: Type
    min_len: int = 0
    max_len: int = 8

    kind = ArgKind.ARRAY

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.min_len < 0 or self.max_len < self.min_len:
            raise SpecError(
                f"bad array length range [{self.min_len}, {self.max_len}]"
            )


@dataclass(frozen=True)
class ResourceType(Type):
    """A kernel resource consumed (or produced via an out-pointer)."""

    resource: ResourceKind

    kind = ArgKind.RESOURCE

    def is_mutable(self) -> bool:
        # Mutating a resource argument means re-pointing it at another
        # compatible resource in the program (or NULL).
        return True
