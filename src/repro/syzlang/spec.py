"""Syscall specifications and the syscall table.

A :class:`SyscallSpec` is one *variant* of a system call in Syzlang's
sense: ``ioctl$SCSI_SEND_COMMAND`` and ``ioctl$FBIO`` are distinct specs
with their own argument shapes, exactly as in Syzkaller where the Linux
``mount`` call has 12 specialized variants [23].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecError
from repro.syzlang.types import (
    ArrayType,
    PtrType,
    ResourceKind,
    ResourceType,
    StructType,
    Type,
)

__all__ = ["SyscallSpec", "SyscallTable"]


@dataclass(frozen=True)
class SyscallSpec:
    """One system-call variant.

    ``name`` is the base syscall name (``ioctl``); ``variant`` the Syzlang
    specialization suffix (``SCSI_SEND_COMMAND``), empty for plain calls.
    ``produces`` names the resource kind returned on success, if any.
    ``subsystem`` groups specs by the kernel subsystem handling them,
    which the kernel builder uses to share helper code between calls.
    """

    name: str
    args: tuple[tuple[str, Type], ...]
    variant: str = ""
    produces: ResourceKind | None = None
    subsystem: str = "core"

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for arg_name, _ in self.args:
            if arg_name in seen:
                raise SpecError(
                    f"syscall {self.full_name!r} has duplicate arg {arg_name!r}"
                )
            seen.add(arg_name)

    @property
    def full_name(self) -> str:
        """The Syzlang display name, e.g. ``ioctl$SCSI_SEND_COMMAND``."""
        if self.variant:
            return f"{self.name}${self.variant}"
        return self.name

    @property
    def arity(self) -> int:
        return len(self.args)

    def consumes(self) -> list[ResourceKind]:
        """Resource kinds appearing anywhere in this spec's inputs."""
        found: list[ResourceKind] = []

        def walk(ty: Type) -> None:
            if isinstance(ty, ResourceType):
                found.append(ty.resource)
            elif isinstance(ty, PtrType):
                walk(ty.elem)
            elif isinstance(ty, StructType):
                for _, field_ty in ty.fields:
                    walk(field_ty)
            elif isinstance(ty, ArrayType):
                walk(ty.elem)

        for _, arg_ty in self.args:
            walk(arg_ty)
        return found


@dataclass
class SyscallTable:
    """All syscall variants known to the fuzzer and kernel."""

    specs: list[SyscallSpec] = field(default_factory=list)
    _by_name: dict[str, SyscallSpec] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for spec in self.specs:
            if spec.full_name in self._by_name:
                raise SpecError(f"duplicate syscall {spec.full_name!r}")
            self._by_name[spec.full_name] = spec

    def add(self, spec: SyscallSpec) -> None:
        if spec.full_name in self._by_name:
            raise SpecError(f"duplicate syscall {spec.full_name!r}")
        self.specs.append(spec)
        self._by_name[spec.full_name] = spec

    def lookup(self, full_name: str) -> SyscallSpec:
        spec = self._by_name.get(full_name)
        if spec is None:
            raise SpecError(f"unknown syscall {full_name!r}")
        return spec

    def __contains__(self, full_name: str) -> bool:
        return full_name in self._by_name

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def producers_of(self, kind: ResourceKind) -> list[SyscallSpec]:
        """Specs whose return value can satisfy a ``kind`` consumer."""
        return [
            spec
            for spec in self.specs
            if spec.produces is not None and spec.produces.compatible_with(kind)
        ]

    def subsystems(self) -> list[str]:
        """Sorted unique subsystem names."""
        return sorted({spec.subsystem for spec in self.specs})
