"""The oracle localizer: a perfect white-box argument selector.

Reads the guard condition of each target block directly off the kernel's
static CFG — the limit a *perfectly trained* PMM would converge to.
Campaigns use it as the mechanism's upper bound: the gap between
Syzkaller and oracle-Snowplow is what white-box argument localization is
worth on a given kernel, and the gap between oracle- and PMM-Snowplow is
what remains to be captured by better training (the paper closes that
gap with 44M samples and GPU-scale training; see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.kernel.build import Kernel
from repro.kernel.conditions import ArgCondition
from repro.kernel.coverage import Coverage
from repro.syzlang.program import ArgPath, Program

__all__ = ["OracleLocalizer"]


class OracleLocalizer:
    """Perfect argument localization via the kernel's own CFG."""

    def __init__(self, kernel: Kernel, max_paths: int = 6):
        self.kernel = kernel
        self.max_paths = max_paths

    def localize(
        self,
        program: Program,
        coverage: Coverage | None,
        targets: set[int] | None,
        rng: np.random.Generator,
    ) -> list[ArgPath]:
        paths: list[ArgPath] = []
        seen: set[ArgPath] = set()
        for target in sorted(targets or ()):
            condition = self.kernel.guarding_condition(target)
            if not isinstance(condition, ArgCondition):
                continue
            for call_index, call in enumerate(program.calls):
                if call.spec.full_name != condition.syscall:
                    continue
                path = ArgPath(call_index, condition.path_elements)
                try:
                    program.get(path)
                except Exception:
                    continue
                if path not in seen:
                    seen.add(path)
                    paths.append(path)
        return paths[: self.max_paths]
