"""The Snowplow fuzz loop: PMM as the argument localizer (§3.4).

Control flow per iteration:

1. completed inference results are polled from the service; each result
   enqueues a burst of argument mutations on the predicted paths — more
   predicted arguments, more mutations (the dynamic adjustment of §3.4);
2. if a burst is pending, its next mutation runs;
3. otherwise the chosen base test's mutation query is submitted (unless
   the queue is full) and the loop falls back to the fuzzer's own
   heuristics — mostly non-argument mutation types, with a small
   probability of random argument localization as the §3.4 safety net.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.faults import CircuitBreaker
from repro.fuzzer.corpus import CorpusEntry
from repro.fuzzer.engine import MutationEngine, MutationOutcome, TypeSelector
from repro.fuzzer.loop import FuzzLoop, FuzzStats
from repro.graphs.build import build_query_graph
from repro.graphs.encode import GraphEncoder
from repro.kernel.build import Kernel
from repro.kernel.coverage import Coverage
from repro.pmm.model import PMM
from repro.pmm.serve import InferenceService
from repro.syzlang.program import ArgPath, Program

__all__ = ["PMMLocalizer", "SnowplowConfig", "SnowplowLoop"]


@dataclass
class SnowplowConfig:
    """Knobs of the hybrid integration."""

    # Max targets marked per mutation query (uncovered frontier sample).
    max_targets: int = 8
    # Sigmoid threshold for MUTATE at fuzz time.  Deliberately
    # recall-biased (below the F1-calibrated decision threshold): a
    # spurious predicted argument costs one wasted mutation, a missed
    # one forfeits the whole burst.
    prediction_threshold: float = 0.30
    # Burst size per predicted argument (dynamic adjustment, §3.4).
    # Hard branches compare against exact operands; with the
    # instantiator's ~10 % per-draw chance of producing the right
    # constant, a burst needs double-digit draws per argument.
    mutations_per_predicted_arg: int = 8
    max_burst: int = 24
    # Probability of a random argument localization on the fallback path.
    fallback_argument_prob: float = 0.10
    # Ceiling on the share of loop iterations given to pending PMM
    # bursts; the rest keep the fuzzer's other mutation types flowing
    # (Snowplow replaces the *argument* localizer, not the whole
    # mutation mix — §3.4).  The effective share adapts to recent burst
    # yield: when predictions stop producing coverage (late-campaign
    # residue the model cannot localize), Snowplow degrades gracefully
    # toward the baseline mix instead of taxing the loop.
    burst_share: float = 0.7
    burst_share_floor: float = 0.15
    # EMA smoothing for per-mutation burst success.
    burst_yield_decay: float = 0.97
    # Inference service sizing: ~39 concurrent slots reproduce the
    # paper's 57 q/s at 0.69 s latency (machine_infer, 8 L4 GPUs).
    servers: int = 40
    max_queue: int = 128
    # --- dynamic batching (cluster serving tier) ---
    # A batch of b requests occupies one slot for
    # ``(batch_base_factor + b * batch_marginal_factor) * inference_latency``
    # — at b=1 that is exactly the unbatched latency, so single-worker
    # runs are unchanged, while a full batch of 8 amortizes the fixed
    # cost ~2.9x.  ``max_batch_size=1`` disables batching entirely.
    max_batch_size: int = 8
    batch_timeout_factor: float = 0.25
    batch_base_factor: float = 0.75
    batch_marginal_factor: float = 0.25
    # --- resilience (§3.4's degradation story, under fault injection) ---
    # Per-request deadline and first-retry backoff, as multiples of the
    # inference latency; retries double the backoff each attempt.
    request_deadline_factor: float = 2.0
    retry_backoff_factor: float = 0.5
    max_retries: int = 2
    # Circuit breaker: consecutive delivery failures before the serving
    # tier is declared down, and how long (in latencies) to wait before
    # the half-open probe.
    breaker_failure_threshold: int = 4
    breaker_reset_factor: float = 4.0
    # Deadline-aware load shedding: refuse a submission whose projected
    # slot wait exceeds this many inference latencies (the worker falls
    # back to the heuristic localizer instead of queueing stale work).
    # None keeps the historical queue-until-full behaviour.
    shed_timeout_factor: float | None = None


class PMMLocalizer:
    """A :class:`~repro.fuzzer.localizer.Localizer` backed by PMM.

    Used directly (synchronously) by Snowplow-D; the undirected Snowplow
    loop goes through the asynchronous service instead.
    """

    def __init__(
        self,
        model: PMM,
        encoder: GraphEncoder,
        kernel: Kernel,
        executor,
        max_targets: int = 8,
        threshold: float = 0.30,
        cache_size: int = 512,
        profiler=None,
    ):
        self.model = model
        self.encoder = encoder
        self.kernel = kernel
        self.executor = executor
        self.max_targets = max_targets
        self.threshold = threshold
        self.cache_size = cache_size
        self.profiler = profiler
        self._cache: dict = {}

    def _section(self, name: str):
        if self.profiler is None:
            return nullcontext()
        return self.profiler.section(name)

    def localize(
        self,
        program: Program,
        coverage: Coverage | None,
        targets: set[int] | None,
        rng: np.random.Generator,
    ) -> list[ArgPath]:
        if coverage is None or not coverage.call_traces:
            coverage = self.executor.run(program).coverage
        if targets is None:
            frontier = sorted(self.kernel.frontier(coverage.blocks))
            if not frontier:
                return []
            picks = rng.permutation(len(frontier))[: self.max_targets]
            targets = {frontier[int(pick)] for pick in picks}
        cache_key = self._cache_key(program, targets)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return list(cached)
        with self._section("localizer.graph_build"):
            graph = build_query_graph(program, coverage, self.kernel, targets)
        if not graph.mutable_argument_nodes():
            return []
        with self._section("localizer.encode"):
            encoded = self.encoder.encode(graph)
        with self._section("localizer.gnn_forward"):
            paths = self.model.predict_paths(encoded, threshold=self.threshold)
        if len(self._cache) >= self.cache_size:
            self._cache.clear()
        self._cache[cache_key] = list(paths)
        return paths

    @staticmethod
    def _cache_key(program: Program, targets: set[int]):
        from repro.syzlang.parser import serialize_program

        return (serialize_program(program), frozenset(targets))


@dataclass
class _Burst:
    """Pending PMM-guided argument mutations for one base test."""

    program: Program
    paths: list[ArgPath]
    remaining: int
    targets: set[int]
    hints: frozenset[int] = frozenset()
    # Model-quality evidence: predicted targets this burst's own
    # mutations covered, and how many new blocks it gained in total.
    hit: set[int] = field(default_factory=set)
    gained: int = 0
    # Deterministic burst id ("w<worker>b<seq>") stamped into the
    # lineage records of every mutation this burst schedules.
    burst_id: str | None = None


class SnowplowLoop(FuzzLoop):
    """FuzzLoop with asynchronous PMM argument localization."""

    def __init__(
        self,
        *args,
        localizer: PMMLocalizer,
        snowplow_config: SnowplowConfig | None = None,
        service=None,
        analysis=None,
        director=None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.pmm_localizer = localizer
        self.snowplow_config = snowplow_config or SnowplowConfig()
        # Optional repro.analyze.ReachabilityAnalysis: frontier targets
        # it proves statically dead are dropped before they waste a
        # mutation query (fuzz.dead_targets_skipped counts them).  None
        # keeps target selection byte-identical to earlier baselines.
        self.analysis = analysis
        # Optional repro.analyze.impact.PatchDirector: biases target
        # selection toward a release's changed-block surface and
        # schedules directed steering mutations.  None (and
        # observe-only directors, which draw no randomness) keep the
        # loop byte-identical to the undirected baseline.
        self.director = director
        self._directed_last = False
        cfg = self.snowplow_config
        latency = self.cost.inference_latency
        # A cluster hands every worker a view onto one shared serving
        # tier; standalone loops build their own private service.
        self._owns_service = service is None
        if service is not None:
            self.service = service
        else:
            self.service = InferenceService(
                predict_fn=self._predict,
                latency=latency,
                servers=cfg.servers,
                max_queue=cfg.max_queue,
                deadline=cfg.request_deadline_factor * latency,
                max_retries=cfg.max_retries,
                retry_backoff=cfg.retry_backoff_factor * latency,
                shed_timeout=(
                    cfg.shed_timeout_factor * latency
                    if cfg.shed_timeout_factor is not None else None
                ),
                injector=self.injector,
                breaker=CircuitBreaker(
                    failure_threshold=cfg.breaker_failure_threshold,
                    reset_timeout=cfg.breaker_reset_factor * latency,
                ),
                registry=(
                    self.observer.registry
                    if self.observer is not None else None
                ),
                tracer=self.tracer,
            )
        # The oracle localizer has no profiler hook; only the PMM path
        # attributes graph-build/GNN time.
        if (
            self.observer is not None
            and getattr(localizer, "profiler", False) is None
        ):
            localizer.profiler = self.observer.profiler
        self._bursts: deque[_Burst] = deque()
        # Live localizer scoring (precision/recall@k against realized
        # coverage) — observed runs only, keyed by kernel release so
        # cross-version drift falls out of the snapshot.
        if self.observer is not None:
            from repro.observe import ModelQualityTracker

            self._model_quality = ModelQualityTracker(
                self.observer.registry,
                kernel=self.kernel.version,
                worker=self.worker,
            )
        else:
            self._model_quality = None
        # Recent burst productivity (EMA of "this burst mutation found
        # new coverage"), driving the adaptive burst share.
        self._burst_yield = 0.25
        self._active_burst: _Burst | None = None
        # Monotone burst counter behind the deterministic burst ids
        # (checkpointed, so resumed runs keep numbering where they were).
        self._burst_seq = 0
        # The fallback selector rarely mutates arguments at random;
        # insertion/removal keep their usual share (§3.4).
        self._fallback_selector = TypeSelector(
            argument_weight=cfg.fallback_argument_prob,
            insertion_weight=0.30,
            removal_weight=0.10,
        )

    # ----- inference plumbing -----

    def _predict(self, query) -> list[ArgPath]:
        program, coverage, targets, _ = query
        return self.pmm_localizer.localize(
            program, coverage, targets, self.rng
        )

    def _query_targets(self, coverage: Coverage) -> set[int] | None:
        """Frontier blocks of this test still uncovered globally.

        Blocks guarded by argument conditions are preferred: an
        argument-mutation query aimed at a branch that only kernel state
        can flip wastes the prediction.  (The same static CFG analysis
        that produces the frontier exposes the guarding condition.)
        """
        from repro.kernel.conditions import ArgCondition

        frontier = self.kernel.frontier(coverage.blocks)
        fresh = sorted(frontier - self.accumulated.blocks)
        if self.analysis is not None and fresh:
            live = [
                block for block in fresh
                if not self.analysis.is_dead(block)
            ]
            self.stats.dead_targets_skipped += len(fresh) - len(live)
            fresh = live
        if not fresh:
            return None
        steerable = [
            block for block in fresh
            if isinstance(self.kernel.guarding_condition(block), ArgCondition)
        ]
        pool = steerable or fresh
        picks = self.rng.permutation(len(pool))
        limit = self.snowplow_config.max_targets
        director = self.director
        if director is not None and not director.observe_only:
            # Directed mode: half the query slots go to the frontier
            # blocks nearest the pending changed surface (pending
            # targets themselves rank first at distance 0); the rest
            # stay random so undirected exploration keeps flowing.
            chosen = set(director.rank_targets(fresh, max(1, limit // 2)))
            for pick in picks:
                if len(chosen) >= limit:
                    break
                chosen.add(pool[int(pick)])
            return chosen or None
        return {pool[int(pick)] for pick in picks[:limit]}

    def seed(self, programs) -> None:
        super().seed(programs)
        if self.director is not None:
            # Targets the seed corpus already covers count as reached at
            # time zero — both arms of a directed-vs-plain comparison
            # see the identical starting surface.
            self.director.note_coverage(
                self.accumulated.blocks, self.clock.now
            )

    # ----- the hook -----

    def propose_mutation(self, entry: CorpusEntry) -> MutationOutcome | None:
        start = self.clock.now
        try:
            return self._propose(entry)
        finally:
            if self.tracer is not None:
                self.tracer.record(
                    self.track, "mutate", start, self.clock.now, cat="mutate",
                )

    def _propose(self, entry: CorpusEntry) -> MutationOutcome | None:
        self._directed_last = False
        self.clock.advance(self.cost.mutation, "mutation")
        if self.cost.inference_charge:
            # Blocking-inference ablation: the loop pays the latency.
            self.clock.advance(self.cost.inference_charge, "inference")
        completed = self.service.poll(self.clock.now)
        self.stats.inference_completed += len(completed)
        # Requests lost to injected timeouts/slot crashes never burst;
        # the fuzzer simply keeps its heuristics flowing (§3.4), but the
        # losses are accounted so degraded runs are measurable.
        self.stats.inference_failures += len(self.service.drain_failures())
        for query, paths in completed:
            program, _, targets, hints = query
            if self._model_quality is not None:
                self._model_quality.note_prediction(bool(paths))
            if paths:
                cfg = self.snowplow_config
                burst = min(
                    cfg.max_burst,
                    cfg.mutations_per_predicted_arg * len(paths),
                )
                self._burst_seq += 1
                self._bursts.append(
                    _Burst(
                        program=program, paths=list(paths),
                        remaining=burst, targets=set(targets), hints=hints,
                        burst_id=f"w{self.worker}b{self._burst_seq}",
                    )
                )
        burst = self._next_live_burst()
        if burst is not None and (
            self.rng.random() < self._effective_burst_share()
        ):
            burst.remaining -= 1
            if burst.remaining <= 0:
                self._bursts.popleft()
            self._active_burst = burst
            chosen = self._choose_burst_paths(burst.paths)
            return self.engine.mutate_test(
                burst.program, forced_paths=chosen, hints=burst.hints
            )
        self._active_burst = None
        director = self.director
        if (
            director is not None
            and not director.observe_only
            and director.pending
            and self.rng.random() < director.directed_share
        ):
            # Patch-directed steering: plant the target (or producer)
            # call, or force-mutate the pending slots the oracle says
            # still violate a mandatory predicate.
            outcome = director.propose(entry.program, self.engine, self.rng)
            if outcome is not None:
                self._directed_last = True
                return outcome
        self._maybe_submit(entry.program, entry.coverage, entry.hints)
        # Fallback: the fuzzer's own heuristics while inference runs.
        # When PMM bursts are productive, random argument localization is
        # mostly redundant and stays rare (§3.4); when they dry up, the
        # fallback restores Syzkaller's full argument-mutation share so
        # the hybrid never does worse than its host fuzzer.
        original_selector = self.engine.selector
        self.engine.selector = self._adaptive_fallback_selector()
        try:
            return self.engine.mutate_test(
                entry.program, entry.coverage, hints=entry.hints
            )
        finally:
            self.engine.selector = original_selector

    def _mutation_meta(self) -> tuple[str, str, str | None, int]:
        """Burst-steered mutations are the learned engine; the fallback
        path is the host fuzzer's own heuristics."""
        burst = self._active_burst
        if burst is None:
            if self._directed_last and self.director is not None:
                return (
                    "snowplow", "patch", None,
                    self.director.last_proposal_paths,
                )
            return super()._mutation_meta()
        slot = "pmm" if hasattr(self.pmm_localizer, "model") else "oracle"
        return "snowplow", slot, burst.burst_id, len(burst.paths)

    def _adaptive_fallback_selector(self) -> TypeSelector:
        cfg = self.snowplow_config
        argument_weight = max(
            cfg.fallback_argument_prob,
            0.60 - 2.0 * self._burst_yield,
        )
        return TypeSelector(
            argument_weight=min(argument_weight, 0.60),
            insertion_weight=0.30,
            removal_weight=0.10,
        )

    def _effective_burst_share(self) -> float:
        """Adaptive scheduling: recent burst yield sets the share."""
        cfg = self.snowplow_config
        share = cfg.burst_share_floor + 3.0 * self._burst_yield
        return min(cfg.burst_share, share)

    def _run_candidate(self, entry, outcome) -> None:
        pre_edges = len(self.accumulated.edges)
        pre_blocks = len(self.accumulated.blocks)
        burst = self._active_burst
        # Targets still unreached before this execution: anything in
        # here that is covered afterwards was hit by *this* mutation
        # (hub pulls only land between iterations, never inside one).
        pending_targets = (
            burst.targets - self.accumulated.blocks
            if burst is not None else None
        )
        super()._run_candidate(entry, outcome)
        if (
            self.director is not None
            and len(self.accumulated.blocks) != pre_blocks
        ):
            self.director.note_coverage(
                self.accumulated.blocks, self.clock.now
            )
        if burst is not None:
            produced = len(self.accumulated.edges) > pre_edges
            decay = self.snowplow_config.burst_yield_decay
            self._burst_yield = (
                decay * self._burst_yield + (1.0 - decay) * float(produced)
            )
            burst.gained += len(self.accumulated.blocks) - pre_blocks
            burst.hit |= pending_targets & self.accumulated.blocks
            if burst.remaining <= 0:
                self._score_burst(burst)
            self._active_burst = None

    def _score_burst(self, burst: _Burst) -> None:
        if self._model_quality is not None:
            self._model_quality.score_burst(
                burst.targets, burst.hit, burst.gained
            )

    def _next_live_burst(self) -> _Burst | None:
        """The front-most burst whose targets are still uncovered.

        Inference latency means a prediction can arrive after other
        mutations already reached its targets; spending the burst then
        would duplicate coverage, so stale bursts are dropped.
        """
        while self._bursts:
            burst = self._bursts[0]
            if burst.targets - self.accumulated.blocks:
                return burst
            # Stale bursts still get scored: a prediction overtaken by
            # the rest of the fleet is (deserved) zero precision unless
            # this burst's own early mutations produced the hits.
            self._score_burst(burst)
            self._bursts.popleft()
        return None

    def _maybe_submit(
        self,
        program: Program,
        coverage: Coverage,
        hints: frozenset[int] = frozenset(),
    ) -> None:
        targets = self._query_targets(coverage)
        if targets is None:
            return
        ready = self.service.submit(
            (program.clone(), coverage, targets, hints), self.clock.now
        )
        if ready is None:
            # Queue full or breaker open: this query's localization is
            # served by the heuristic SyzkallerLocalizer instead.
            self.stats.heuristic_fallbacks += 1
        else:
            self.stats.inference_submitted += 1

    def finalize(self) -> FuzzStats:
        stats = super().finalize()
        if self.director is not None:
            self.director.publish()
        if self._owns_service:
            # Breaker visibility belongs to whoever owns the tier: with
            # a shared cluster service the cluster result reports it once
            # instead of every worker double-counting the same trips.
            stats.breaker_trips = self.service.stats.breaker_trips
            stats.breaker_state = self.service.stats.breaker_state
        return stats

    def on_new_coverage(self, entry, outcome, coverage) -> None:
        """Chain climbing (§3.4): a test that just crossed one branch is
        queried immediately for its next frontier instead of waiting to
        be re-chosen from the corpus."""
        self._maybe_submit(outcome.program, coverage)

    def _choose_burst_paths(self, paths: list[ArgPath]) -> list[ArgPath]:
        """Each burst mutation rewrites a subset of the predicted
        arguments, always including the most confident one (predictions
        arrive sorted by probability)."""
        if len(paths) == 1:
            return list(paths)
        chosen = [paths[0]]
        for path in paths[1:3]:
            if self.rng.random() < 0.4:
                chosen.append(path)
        return chosen
