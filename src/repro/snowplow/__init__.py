"""Snowplow: the hybrid fuzzer with the learned white-box mutator.

Wires PMM into the fuzzer of :mod:`repro.fuzzer` as its argument
localizer (§3.4): mutation queries are served asynchronously by a
virtual-time inference service while the loop keeps mutating with the
existing heuristics, predictions arriving later trigger bursts of
argument mutations on the predicted paths, and a low-probability random
argument localization remains as a fallback.

The campaign harness runs the paper's experiments: repeated side-by-side
coverage campaigns (Fig. 6), 7-day crash campaigns (Tables 2-4), and
directed time-to-target sweeps (Table 5).
"""

from repro.snowplow.fuzzer import PMMLocalizer, SnowplowConfig, SnowplowLoop
from repro.snowplow.campaign import (
    CampaignConfig,
    ChaosCampaignResult,
    CoverageCampaignResult,
    CrashCampaignResult,
    FaultCampaignResult,
    PatchCampaignResult,
    ScalingCampaignResult,
    ScalingPoint,
    build_cluster,
    build_fuzz_loop,
    chaos_plan,
    fuzz_campaign_config,
    fuzz_run_seed,
    run_chaos_campaign,
    run_coverage_campaign,
    run_crash_campaign,
    run_directed_campaign,
    run_fault_tolerance_campaign,
    run_patch_campaign,
    run_scaling_campaign,
    train_pmm,
    TrainedPMM,
)
from repro.snowplow.checkpointing import (
    CheckpointStore,
    cluster_state,
    load_checkpoint,
    loop_state,
    restore_cluster_state,
    restore_loop_state,
    save_checkpoint,
)
from repro.snowplow.reporting import (
    chaos_json,
    format_chaos,
    format_fig6,
    format_scaling,
    format_specgen,
    format_table1,
    format_table2,
    format_table3,
    format_table5,
    scaling_json,
    specgen_json,
)

__all__ = [
    "CampaignConfig",
    "ChaosCampaignResult",
    "CheckpointStore",
    "CoverageCampaignResult",
    "CrashCampaignResult",
    "FaultCampaignResult",
    "PMMLocalizer",
    "PatchCampaignResult",
    "ScalingCampaignResult",
    "ScalingPoint",
    "SnowplowConfig",
    "SnowplowLoop",
    "TrainedPMM",
    "build_cluster",
    "build_fuzz_loop",
    "chaos_json",
    "chaos_plan",
    "cluster_state",
    "format_chaos",
    "format_fig6",
    "format_scaling",
    "format_specgen",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table5",
    "fuzz_campaign_config",
    "fuzz_run_seed",
    "load_checkpoint",
    "loop_state",
    "restore_cluster_state",
    "restore_loop_state",
    "run_chaos_campaign",
    "run_coverage_campaign",
    "run_crash_campaign",
    "run_directed_campaign",
    "run_fault_tolerance_campaign",
    "run_patch_campaign",
    "run_scaling_campaign",
    "save_checkpoint",
    "scaling_json",
    "specgen_json",
    "train_pmm",
]
