"""Campaign checkpoint/resume: crash a worker, lose nothing that matters.

Multi-day campaigns survive worker restarts in the real deployment; this
module gives the reproduction the same property.  A checkpoint captures
*everything* that feeds the deterministic simulation — corpus (programs,
per-entry coverage traces, scheduling counters), accumulated coverage,
the full :class:`~repro.fuzzer.loop.FuzzStats` ledger including triaged
crashes, every RNG stream (loop, mutation engine, program generator,
executor, fault injector), the virtual clock with its cost attribution,
and the serving tier's slot/breaker state — so a loop restored from a
checkpoint continues **bit-identically**: two restores of the same
checkpoint produce byte-equal remainders of the campaign.

The one deliberate loss is in-flight inference: requests pending inside
the serving tier die with the worker (as they would with a real
torchserve replica), and the resumed run books them under
``FuzzStats.inference_failures`` instead of pretending they survived.

On-disk checkpoints are single JSON files with a content digest;
corruption, truncation, or version skew raises
:class:`~repro.errors.CheckpointError` rather than silently resuming
from garbage.  :class:`CheckpointStore` adds bounded retention and
rides out injected transient write failures (site ``checkpoint_store``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import CheckpointError
from repro.fuzzer.crash import TriagedCrash, categorize_description
from repro.fuzzer.loop import FuzzLoop, FuzzObservation, FuzzStats
from repro.kernel.coverage import Coverage
from repro.observe.provenance import LineageRecord
from repro.syzlang.parser import parse_program, serialize_program

__all__ = [
    "CheckpointStore",
    "cluster_state",
    "load_checkpoint",
    "loop_state",
    "restore_cluster_state",
    "restore_loop_state",
    "save_checkpoint",
]

# v4: observer state grew the time-series store (``timeseries`` key in
# the observer dict), so restored campaigns replay identical timelines.
# v5: supervised-fleet state — per-worker fault bookkeeping (killed,
# generation, partition drops, heartbeat), the supervisor's
# generations/next-check, and the sharded hub's watermarks/backlog —
# so chaos campaigns kill+resume bit-identically.
# v6: service-level state — the control plane (:mod:`repro.service`)
# checkpoints tenant sessions, job records, and each admitted
# campaign's exec state (a ``loop_state``/``cluster_state`` payload per
# running job) in one digest-checked envelope, so killing and resuming
# the whole service replays every tenant's campaign bit-identically.
# v7: provenance — each loop's lineage ledger (``provenance`` key),
# per-entry lineage records in the corpus and hub state, and the
# snowplow burst-id sequence, so `observe explain` output survives
# kill+resume byte-identically.
_FORMAT_VERSION = 7

# Transient checkpoint-store write failures retried before giving up.
_WRITE_ATTEMPTS = 5

_STATS_COUNTERS = (
    "executions", "corpus_size", "exec_timeouts", "vm_restarts",
    "inference_submitted", "inference_completed",
    "inference_failures", "heuristic_fallbacks", "corpus_write_retries",
    "breaker_trips", "resumes", "hub_syncs", "hub_pushed", "hub_pulled",
)


# ----- capture -----


def loop_state(loop: FuzzLoop, include_observer: bool = True) -> dict:
    """Snapshot a (possibly mid-run) fuzz loop as JSON-serializable state.

    ``include_observer=False`` leaves out the loop's observer (registry
    plus tracer): cluster checkpoints set it because every worker shares
    one observer, which :func:`cluster_state` captures exactly once.
    """
    state = {
        "format_version": _FORMAT_VERSION,
        "kernel_version": loop.kernel.version,
        "clock": {
            "now": loop.clock.now,
            "horizon": loop.clock.horizon,
            "charges": dict(loop.clock.charges),
        },
        "last_sample": loop._last_sample,
        "rng": {
            "loop": loop.rng.bit_generator.state,
            "engine": loop.engine.rng.bit_generator.state,
            "generator": loop.engine.generator.rng.bit_generator.state,
            "executor": loop.executor._rng.bit_generator.state,
        },
        "executor": {"vm_restarts": loop.executor.vm_restarts},
        "corpus": [
            {
                "program": serialize_program(entry.program),
                "traces": [list(trace) for trace in entry.coverage.call_traces],
                "signal": entry.signal,
                "picked": entry.picked,
                "hints": sorted(entry.hints),
                "lineage": (
                    entry.lineage.to_dict()
                    if entry.lineage is not None else None
                ),
            }
            for entry in loop.corpus.entries
        ],
        "provenance": loop.provenance.state_dict(),
        "accumulated": {
            "blocks": sorted(loop.accumulated.blocks),
            "edges": sorted(list(edge) for edge in loop.accumulated.edges),
        },
        "stats": _stats_state(loop.stats),
        "injector": (
            loop.injector.state() if loop.injector is not None else None
        ),
    }
    if hasattr(loop, "_burst_yield"):
        # Snowplow extras.  Pending bursts are dropped along with the
        # in-flight inference that would have produced more of them; the
        # burst-id sequence continues where it was so lineage records
        # never reuse an id.
        state["burst_yield"] = loop._burst_yield
        state["burst_seq"] = loop._burst_seq
    service = getattr(loop, "service", None)
    if service is not None and hasattr(service, "state_dict"):
        # A cluster worker's service is a view onto the shared tier,
        # which the cluster checkpoint captures once; only a privately
        # owned service is snapshotted with its loop.
        state["service"] = service.state_dict()
    observer = getattr(loop, "observer", None)
    if include_observer and observer is not None:
        state["observer"] = observer.state_dict()
    return state


def _stats_state(stats: FuzzStats) -> dict:
    state = {key: getattr(stats, key) for key in _STATS_COUNTERS}
    state["breaker_state"] = stats.breaker_state
    state["mutations"] = dict(stats.mutations)
    state["observations"] = [
        [obs.time, obs.edges, obs.blocks, obs.executions]
        for obs in stats.observations
    ]
    state["crashes"] = [
        {
            "signature": crash.signature,
            "is_new": crash.is_new,
            "bug_id": crash.bug_id,
            "program": serialize_program(crash.crashing_program),
            "reproducer": (
                serialize_program(crash.reproducer)
                if crash.reproducer is not None else None
            ),
        }
        for crash in stats.crashes
    ]
    return state


# ----- restore -----


def restore_loop_state(loop: FuzzLoop, state: dict) -> None:
    """Restore ``state`` onto a freshly built loop.

    The loop must have been constructed with the same seeds and config
    as the checkpointed one (the campaign harness rebuilds it the same
    way it built the original); this function then overwrites every
    piece of mutable state so the continuation is bit-identical.
    """
    if state.get("format_version") != _FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {state.get('format_version')!r}"
        )
    if state.get("kernel_version") != loop.kernel.version:
        raise CheckpointError(
            f"checkpoint is for kernel {state.get('kernel_version')!r}, "
            f"loop runs {loop.kernel.version!r}"
        )
    # The observer restore goes first: it overwrites whole registry
    # series wholesale, and everything after (stats counters, the
    # resume increment, lost-inference booking) must land on top of it.
    observer = getattr(loop, "observer", None)
    if "observer" in state and observer is not None:
        observer.restore(state["observer"])
    clock = state["clock"]
    loop.clock.now = float(clock["now"])
    loop.clock.horizon = float(clock["horizon"])
    loop.clock.charges = {
        str(key): float(value) for key, value in clock["charges"].items()
    }
    loop._last_sample = float(state["last_sample"])
    rng = state["rng"]
    loop.rng.bit_generator.state = rng["loop"]
    loop.engine.rng.bit_generator.state = rng["engine"]
    loop.engine.generator.rng.bit_generator.state = rng["generator"]
    loop.executor._rng.bit_generator.state = rng["executor"]
    loop.executor.vm_restarts = int(state["executor"]["vm_restarts"])
    loop.corpus.entries.clear()
    loop.provenance.restore(state["provenance"])
    for entry_state in state["corpus"]:
        lineage_state = entry_state.get("lineage")
        entry = loop.corpus.add(
            parse_program(entry_state["program"], loop.kernel.table),
            Coverage.from_traces(entry_state["traces"]),
            signal=int(entry_state["signal"]),
            hints=frozenset(entry_state["hints"]),
            lineage=(
                # Share the ledger's record object, as the live loop did.
                loop.provenance.record(
                    LineageRecord.from_dict(lineage_state)
                )
                if lineage_state is not None else None
            ),
        )
        entry.picked = int(entry_state["picked"])
    loop.accumulated = Coverage(
        blocks=set(state["accumulated"]["blocks"]),
        edges={tuple(edge) for edge in state["accumulated"]["edges"]},
    )
    _restore_stats(loop, state["stats"])
    loop.stats.resumes += 1
    # The triage ledger must match the restored crash list or resumed
    # runs would double-count (or re-suppress) crashes.
    loop.triage._seen = {
        crash.signature: crash for crash in loop.stats.crashes
    }
    if state.get("injector") is not None and loop.injector is not None:
        loop.injector.restore(state["injector"])
    service = getattr(loop, "service", None)
    if service is not None and "service" in state:
        lost = service.restore(state["service"])
        # In-flight predictions died with the worker.
        loop.stats.inference_failures += lost
    if "burst_yield" in state:
        loop._burst_yield = float(state["burst_yield"])
        loop._burst_seq = int(state.get("burst_seq", 0))
        loop._bursts.clear()
        loop._active_burst = None


def _restore_stats(loop: FuzzLoop, state: dict) -> FuzzStats:
    # Restored in place: the stats object's instrument views must keep
    # pointing at the registry series they were built over.
    stats = loop.stats
    stats.observations = []
    stats.crashes = []
    for key in _STATS_COUNTERS:
        setattr(stats, key, int(state.get(key, 0)))
    stats.breaker_state = str(state["breaker_state"])
    stats.mutations = {
        str(key): int(value) for key, value in state["mutations"].items()
    }
    stats.observations = [
        FuzzObservation(
            time=float(time), edges=int(edges), blocks=int(blocks),
            executions=int(executions),
        )
        for time, edges, blocks, executions in state["observations"]
    ]
    for crash_state in state["crashes"]:
        signature = str(crash_state["signature"])
        reproducer = crash_state["reproducer"]
        stats.crashes.append(
            TriagedCrash(
                signature=signature,
                category=categorize_description(signature),
                is_new=bool(crash_state["is_new"]),
                crashing_program=parse_program(
                    crash_state["program"], loop.kernel.table
                ),
                reproducer=(
                    parse_program(reproducer, loop.kernel.table)
                    if reproducer is not None else None
                ),
                bug_id=str(crash_state["bug_id"]),
            )
        )
    return stats


# ----- cluster capture/restore -----


def cluster_state(cluster) -> dict:
    """Snapshot a :class:`~repro.cluster.scheduler.ClusterFuzzer`:
    every worker's full loop state plus its sync bookkeeping, the hub,
    and the shared serving tier (captured once, not per worker).

    ``cluster`` is duck-typed (workers/hub/tier) to keep this module
    free of a dependency on ``repro.cluster``.
    """
    workers = sorted(cluster.workers, key=lambda worker: worker.worker_id)
    state = {
        "format_version": _FORMAT_VERSION,
        "kernel_version": workers[0].loop.kernel.version,
        # CheckpointStore names files by this; the fleet's trailing edge
        # is the time the resumed run continues from.
        "clock": {"now": min(worker.loop.clock.now for worker in workers)},
        "workers": [
            {
                "worker_id": worker.worker_id,
                "next_sync": worker.next_sync,
                "sync_epoch": worker.sync_epoch,
                "synced_entries": worker._synced_entries,
                "killed": worker.killed,
                "generation": worker.generation,
                "born": worker.born,
                "last_progress": worker.last_progress,
                "sync_failures": worker._sync_failures,
                "dropped": list(worker.dropped),
                "consumed_kills": sorted(worker._consumed_kills),
                "loop": loop_state(worker.loop, include_observer=False),
            }
            for worker in workers
        ],
        "hub": cluster.hub.state_dict(),
    }
    supervisor = getattr(cluster, "supervisor", None)
    if supervisor is not None:
        state["supervisor"] = supervisor.state_dict()
    tier = getattr(cluster, "tier", None)
    if tier is not None:
        state["service"] = tier.service.state_dict()
    observer = getattr(cluster, "observer", None)
    if observer is not None:
        # One observer serves the whole fleet; captured once here, not
        # once per worker.
        state["observer"] = observer.state_dict()
    return state


def restore_cluster_state(cluster, state: dict) -> int:
    """Restore a freshly built cluster from :func:`cluster_state` output.

    The cluster must have been rebuilt with the same seeds and config as
    the checkpointed one.  Returns the number of in-flight inference
    requests lost with the crashed process (also booked — attributed to
    worker 0, since the shared tier cannot say whose they were once the
    queue state is serialized away).
    """
    if state.get("format_version") != _FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {state.get('format_version')!r}"
        )
    workers = sorted(cluster.workers, key=lambda worker: worker.worker_id)
    worker_states = state["workers"]
    if len(worker_states) != len(workers):
        raise CheckpointError(
            f"checkpoint holds {len(worker_states)} workers, "
            f"cluster was built with {len(workers)}"
        )
    # Fleet-shared observer first, before per-worker restores layer
    # their resume increments and lost-inference bookings on top.
    observer = getattr(cluster, "observer", None)
    if "observer" in state and observer is not None:
        observer.restore(state["observer"])
    for worker, worker_state in zip(workers, worker_states):
        if worker.worker_id != worker_state["worker_id"]:
            raise CheckpointError(
                f"worker id mismatch: checkpoint "
                f"{worker_state['worker_id']} vs cluster {worker.worker_id}"
            )
        restore_loop_state(worker.loop, worker_state["loop"])
        worker.next_sync = float(worker_state["next_sync"])
        worker.sync_epoch = int(worker_state["sync_epoch"])
        worker._synced_entries = int(worker_state["synced_entries"])
        worker.killed = bool(worker_state["killed"])
        worker.generation = int(worker_state["generation"])
        worker.born = float(worker_state.get("born", 0.0))
        worker.last_progress = float(worker_state["last_progress"])
        worker._sync_failures = int(worker_state["sync_failures"])
        worker.dropped = [int(index) for index in worker_state["dropped"]]
        worker._consumed_kills = {
            float(start) for start in worker_state["consumed_kills"]
        }
    cluster.hub.restore(state["hub"], workers[0].loop.kernel.table)
    supervisor = getattr(cluster, "supervisor", None)
    if supervisor is not None and "supervisor" in state:
        supervisor.restore(state["supervisor"])
    lost = 0
    tier = getattr(cluster, "tier", None)
    if tier is not None and "service" in state:
        lost = tier.service.restore(state["service"])
        tier.reset()
        workers[0].loop.stats.inference_failures += lost
    return lost


# ----- durable storage -----


def save_checkpoint(path: str | Path, state: dict) -> Path:
    """Write ``state`` to ``path`` with an integrity digest."""
    path = Path(path)
    body = json.dumps(state, sort_keys=True)
    envelope = {
        "format_version": _FORMAT_VERSION,
        "digest": hashlib.blake2b(body.encode()).hexdigest(),
        "state": state,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(envelope))
    tmp.replace(path)
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Load and verify a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        envelope = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise CheckpointError(f"checkpoint {path} is unreadable: {error}")
    if envelope.get("format_version") != _FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version "
            f"{envelope.get('format_version')!r}"
        )
    state = envelope.get("state")
    if state is None:
        raise CheckpointError(f"checkpoint {path} has no state")
    body = json.dumps(state, sort_keys=True)
    if hashlib.blake2b(body.encode()).hexdigest() != envelope.get("digest"):
        raise CheckpointError(f"checkpoint {path} failed its digest check")
    return state


class CheckpointStore:
    """Periodic checkpoint directory with retention and flaky-disk retry.

    Writes go through the fault injector's ``checkpoint_store`` site:
    transient failures are retried up to a bound, then
    :class:`~repro.errors.CheckpointError` propagates (a campaign that
    cannot persist state must say so, not limp on unprotected).
    """

    def __init__(self, directory: str | Path, injector=None, keep: int = 2):
        if keep < 1:
            raise CheckpointError(f"must keep at least one checkpoint, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.injector = injector
        self.keep = keep

    def save(self, state: dict) -> Path:
        now = float(state["clock"]["now"])
        if self.injector is not None:
            attempts = 0
            while self.injector.fires("checkpoint_store", now):
                attempts += 1
                if attempts >= _WRITE_ATTEMPTS:
                    raise CheckpointError(
                        f"checkpoint write failed {attempts} times at "
                        f"virtual t={now:.0f}"
                    )
        path = self.directory / f"ckpt_{int(now):012d}.json"
        save_checkpoint(path, state)
        self._prune()
        return path

    def load_latest(self) -> dict:
        latest = self._existing()
        if not latest:
            raise CheckpointError(f"no checkpoints under {self.directory}")
        return load_checkpoint(latest[-1])

    def _existing(self) -> list[Path]:
        return sorted(self.directory.glob("ckpt_*.json"))

    def _prune(self) -> None:
        for stale in self._existing()[: -self.keep]:
            stale.unlink()
