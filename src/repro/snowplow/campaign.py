"""Experiment harness: the paper's campaigns at laptop scale.

Each function reproduces one experimental protocol:

- :func:`train_pmm` — §5.1's pipeline: seed corpus → random-mutation
  harvesting → PMM training with validation-F1 model selection;
- :func:`run_coverage_campaign` — Fig. 6: repeated side-by-side 24-hour
  (virtual) runs of Syzkaller vs Snowplow on one kernel, with the
  speedup and final-coverage-improvement summaries;
- :func:`run_crash_campaign` — Tables 2/3: long exhaustive campaigns with
  crash triage, the known-crash (Syzbot) list, and reproducer minimisation;
- :func:`run_directed_campaign` — Table 5: time-to-target for SyzDirect
  vs Snowplow-D over a set of bug-related code locations.
- :func:`run_fault_tolerance_campaign` — the failure model: the same
  seed run fault-free and under an injected :class:`~repro.faults.FaultPlan`
  (inference outages, VM hangs, flaky stores, a mid-run worker crash
  resumed from checkpoint), with the graceful-degradation summary.
- :func:`run_scaling_campaign` — the fleet: deterministic multi-worker
  clusters (:mod:`repro.cluster`) swept over fleet sizes, reporting
  coverage-vs-workers and the shared batching tier's throughput.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.cluster import (
    ClusterConfig,
    ClusterFuzzer,
    ClusterResult,
    ClusterWorker,
    CorpusHub,
    FleetSupervisor,
    ShardedHub,
    SharedInferenceTier,
)
from repro.errors import CampaignError
from repro.faults import CircuitBreaker, FaultInjector, FaultPlan
from repro.fuzzer.crash import CrashTriage, TriagedCrash
from repro.fuzzer.directed import DirectedFuzzer, DirectedResult, SyzDirectLocalizer
from repro.fuzzer.engine import MutationEngine, TypeSelector
from repro.fuzzer.localizer import SyzkallerLocalizer
from repro.fuzzer.loop import FuzzLoop, FuzzStats
from repro.graphs.encode import AsmVocab, GraphEncoder
from repro.kernel.blocks import BlockRole
from repro.kernel.build import Kernel
from repro.kernel.executor import Executor
from repro.observe import Observer
from repro.pmm.dataset import DatasetConfig, MutationDataset, harvest_mutations
from repro.pmm.metrics import SelectorMetrics
from repro.pmm.serve import BatchingInferenceService, InferenceService
from repro.pmm.model import PMM, PMMConfig
from repro.pmm.train import TrainConfig, Trainer
from repro.rng import derive_seed, make_rng, split
from repro.snowplow.checkpointing import (
    CheckpointStore,
    cluster_state,
    loop_state,
    restore_cluster_state,
    restore_loop_state,
)
from repro.snowplow.fuzzer import PMMLocalizer, SnowplowConfig, SnowplowLoop
from repro.syzlang.generator import ProgramGenerator
from repro.vclock import CostModel, VirtualClock

__all__ = [
    "CampaignConfig",
    "ChaosCampaignResult",
    "CoverageCampaignResult",
    "CrashCampaignResult",
    "FaultCampaignResult",
    "PatchCampaignResult",
    "ScalingCampaignResult",
    "ScalingPoint",
    "TrainedPMM",
    "build_cluster",
    "build_fuzz_loop",
    "chaos_plan",
    "fuzz_campaign_config",
    "fuzz_run_seed",
    "default_directed_targets",
    "known_crash_signatures",
    "run_chaos_campaign",
    "run_coverage_campaign",
    "run_crash_campaign",
    "run_directed_campaign",
    "run_fault_tolerance_campaign",
    "run_patch_campaign",
    "run_scaling_campaign",
    "train_pmm",
]

HOUR = 3600.0
DAY = 24 * HOUR


def known_crash_signatures(kernel: Kernel) -> set[str]:
    """The synthetic Syzbot backlog: signatures of all known bugs."""
    return {bug.description() for bug in kernel.bugs if bug.known}


@dataclass
class TrainedPMM:
    """A trained model with everything needed to deploy it."""

    model: PMM
    encoder: GraphEncoder
    vocab: AsmVocab
    dataset: MutationDataset
    validation: SelectorMetrics | None


def train_pmm(
    kernel: Kernel,
    seed: int = 0,
    corpus_size: int = 120,
    dataset_config: DatasetConfig | None = None,
    pmm_config: PMMConfig | None = None,
    train_config: TrainConfig | None = None,
) -> TrainedPMM:
    """The §5.1 training pipeline on one kernel."""
    generator = ProgramGenerator(kernel.table, split(seed, "train-corpus"))
    executor = Executor(kernel)
    corpus = generator.seed_corpus(corpus_size)
    dataset = harvest_mutations(
        kernel, executor, generator, corpus,
        dataset_config or DatasetConfig(seed=derive_seed(seed, "dataset")),
    )
    vocab = AsmVocab.build(kernel)
    encoder = GraphEncoder(vocab, kernel.table)
    model = PMM(
        len(vocab), encoder.num_syscalls,
        pmm_config or PMMConfig(seed=derive_seed(seed, "model")),
    )
    trainer = Trainer(
        model, dataset, kernel, encoder,
        train_config or TrainConfig(seed=derive_seed(seed, "train")),
    )
    reports = trainer.train()
    validation = reports[-1].validation if reports else None
    best = max(
        (r.validation for r in reports if r.validation is not None),
        key=lambda metrics: metrics.f1,
        default=validation,
    )
    return TrainedPMM(
        model=model, encoder=encoder, vocab=vocab, dataset=dataset,
        validation=best,
    )


@dataclass
class CampaignConfig:
    """Shared experiment knobs."""

    horizon: float = 24 * HOUR
    runs: int = 5
    seed: int = 0
    seed_corpus_size: int = 60
    sample_interval: float = 1800.0
    cost: CostModel = field(default_factory=CostModel)
    snowplow: SnowplowConfig = field(default_factory=SnowplowConfig)


# ----- coverage (Fig. 6) -----


@dataclass
class CoverageCampaignResult:
    """Per-run coverage series and the Fig. 6 summary numbers."""

    kernel_version: str
    horizon: float
    syzkaller_runs: list[FuzzStats]
    snowplow_runs: list[FuzzStats]

    def _grid(self) -> np.ndarray:
        return np.linspace(0.0, self.horizon, 97)

    def _mean_series(self, runs: list[FuzzStats]) -> np.ndarray:
        grid = self._grid()
        curves = []
        for stats in runs:
            times = [obs.time for obs in stats.observations]
            edges = [obs.edges for obs in stats.observations]
            curves.append(np.interp(grid, times, edges))
        return np.mean(curves, axis=0)

    def _band(self, runs: list[FuzzStats]) -> tuple[np.ndarray, np.ndarray]:
        grid = self._grid()
        curves = []
        for stats in runs:
            times = [obs.time for obs in stats.observations]
            edges = [obs.edges for obs in stats.observations]
            curves.append(np.interp(grid, times, edges))
        stacked = np.vstack(curves)
        return stacked.min(axis=0), stacked.max(axis=0)

    @property
    def syzkaller_final_mean(self) -> float:
        return float(
            np.mean([stats.final_edges for stats in self.syzkaller_runs])
        )

    @property
    def snowplow_final_mean(self) -> float:
        return float(
            np.mean([stats.final_edges for stats in self.snowplow_runs])
        )

    @property
    def coverage_improvement(self) -> float:
        """Fig. 6d: final-coverage improvement of Snowplow, in percent."""
        baseline = self.syzkaller_final_mean
        if baseline == 0:
            return 0.0
        return 100.0 * (self.snowplow_final_mean - baseline) / baseline

    @property
    def speedup(self) -> float:
        """Fig. 6a-c: horizon / time for Snowplow's mean curve to reach
        Syzkaller's final mean coverage (inf if it gets there instantly,
        <1 if it never does within the horizon)."""
        target = self.syzkaller_final_mean
        grid = self._grid()
        snow = self._mean_series(self.snowplow_runs)
        reached = np.nonzero(snow >= target)[0]
        if len(reached) == 0:
            return float(self.snowplow_final_mean >= target)
        time_to = grid[reached[0]]
        if time_to <= 0:
            return float("inf")
        return self.horizon / time_to

    def discovery_auc_ratio(self) -> float:
        """Area under the mean coverage curve, Snowplow over Syzkaller.

        >1 means Snowplow held more coverage through the campaign —
        i.e. discovered it earlier — even where finals converge.
        """
        snow = self._mean_series(self.snowplow_runs)
        syz = self._mean_series(self.syzkaller_runs)
        denominator = float(syz.sum())
        if denominator == 0:
            return 1.0
        return float(snow.sum()) / denominator

    def bands_overlap_after(self, time: float) -> bool:
        """Whether the min/max bands still overlap after ``time``."""
        grid = self._grid()
        _, syz_max = self._band(self.syzkaller_runs)
        snow_min, _ = self._band(self.snowplow_runs)
        mask = grid >= time
        return bool((syz_max[mask] >= snow_min[mask]).any())


def _build_syzkaller_loop(
    kernel: Kernel, run_seed: int, config: CampaignConfig,
    injector: FaultInjector | None = None,
    observer: Observer | None = None,
    worker: int = 0,
) -> FuzzLoop:
    executor = Executor(kernel, seed=derive_seed(run_seed, "exec"))
    generator = ProgramGenerator(kernel.table, split(run_seed, "gen"))
    engine = MutationEngine(
        TypeSelector(), SyzkallerLocalizer(k=1), generator,
        split(run_seed, "mutate"),
    )
    triage = CrashTriage(executor, known_crash_signatures(kernel))
    clock = VirtualClock(horizon=config.horizon)
    return FuzzLoop(
        kernel, engine, executor, triage, clock, config.cost,
        split(run_seed, "loop"), sample_interval=config.sample_interval,
        injector=injector, observer=observer, worker=worker,
    )


def _build_snowplow_loop(
    kernel: Kernel, trained: TrainedPMM, run_seed: int,
    config: CampaignConfig, oracle: bool = False,
    injector: FaultInjector | None = None,
    service=None,
    observer: Observer | None = None,
    worker: int = 0,
    analysis=None,
    director=None,
) -> SnowplowLoop:
    executor = Executor(kernel, seed=derive_seed(run_seed, "exec"))
    generator = ProgramGenerator(kernel.table, split(run_seed, "gen"))
    engine = MutationEngine(
        TypeSelector(), SyzkallerLocalizer(k=1), generator,
        split(run_seed, "mutate"),
    )
    triage = CrashTriage(executor, known_crash_signatures(kernel))
    clock = VirtualClock(horizon=config.horizon)
    if oracle:
        from repro.snowplow.oracle import OracleLocalizer

        localizer = OracleLocalizer(kernel)
    else:
        localizer = PMMLocalizer(
            trained.model, trained.encoder, kernel, executor,
            max_targets=config.snowplow.max_targets,
            threshold=config.snowplow.prediction_threshold,
        )
    return SnowplowLoop(
        kernel, engine, executor, triage, clock, config.cost,
        split(run_seed, "loop"), sample_interval=config.sample_interval,
        localizer=localizer, snowplow_config=config.snowplow,
        injector=injector, service=service, observer=observer,
        worker=worker, analysis=analysis, director=director,
    )


# ----- the one campaign entry point (CLI fuzz == service job) -----


def fuzz_run_seed(seed: int, kernel_version: str) -> int:
    """The `repro fuzz` seed derivation.

    Shared by the CLI and :mod:`repro.service` so a campaign submitted
    to the control plane replays the standalone ``repro fuzz`` run of
    the same spec bit-identically.
    """
    return derive_seed(seed, "cli-fuzz", kernel_version)


def fuzz_campaign_config(
    hours: float,
    seed: int,
    seed_corpus: int = 50,
    batch_size: int | None = None,
) -> CampaignConfig:
    """The `repro fuzz` campaign parameters for a given horizon/seed.

    One constructor for every front door (CLI flags, service specs) so
    sample cadence and Snowplow tuning can never drift between them.
    """
    snowplow = SnowplowConfig()
    if batch_size is not None:
        snowplow.max_batch_size = batch_size
    return CampaignConfig(
        horizon=hours * HOUR,
        runs=1,
        seed=seed,
        seed_corpus_size=seed_corpus,
        sample_interval=max(hours * HOUR / 16.0, 60.0),
        snowplow=snowplow,
    )


def build_fuzz_loop(
    kernel: Kernel,
    trained: TrainedPMM | None,
    run_seed: int,
    config: CampaignConfig,
    baseline: bool = False,
    oracle: bool = False,
    injector: FaultInjector | None = None,
    observer: Observer | None = None,
    analysis=None,
    director=None,
) -> FuzzLoop:
    """A seeded single-worker campaign loop, ready to ``run()``.

    Exactly the loop `repro fuzz` runs for ``--workers 1``: the
    Syzkaller baseline when ``baseline=True``, else a Snowplow loop
    (oracle- or PMM-localized), seeded from the ``(run_seed,
    "seed-corpus")`` stream.  The orchestrator drives the same builder,
    which is what makes standalone-vs-multiplexed bit-identity a
    structural property instead of a test-time coincidence.
    """
    if baseline:
        loop: FuzzLoop = _build_syzkaller_loop(
            kernel, run_seed, config, injector=injector, observer=observer,
        )
    else:
        loop = _build_snowplow_loop(
            kernel, trained, run_seed, config, oracle=oracle,
            injector=injector, observer=observer, analysis=analysis,
            director=director,
        )
    seeds = ProgramGenerator(
        kernel.table, split(run_seed, "seed-corpus")
    ).seed_corpus(config.seed_corpus_size)
    loop.seed(seeds)
    return loop


def run_coverage_campaign(
    kernel: Kernel,
    trained: TrainedPMM,
    config: CampaignConfig,
    oracle: bool = False,
) -> CoverageCampaignResult:
    """Fig. 6: repeated side-by-side runs with shared per-run seeds.

    ``oracle=True`` swaps PMM for the perfect white-box localizer
    (:mod:`repro.snowplow.oracle`) — the mechanism's upper bound.
    """
    syzkaller_runs: list[FuzzStats] = []
    snowplow_runs: list[FuzzStats] = []
    for run in range(config.runs):
        run_seed = derive_seed(config.seed, "run", run, kernel.version)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "seed-corpus")
        ).seed_corpus(config.seed_corpus_size)
        syz = _build_syzkaller_loop(kernel, run_seed, config)
        syz.seed([program.clone() for program in seeds])
        syzkaller_runs.append(syz.run())
        snow = _build_snowplow_loop(
            kernel, trained, run_seed, config, oracle=oracle
        )
        snow.seed([program.clone() for program in seeds])
        snowplow_runs.append(snow.run())
    return CoverageCampaignResult(
        kernel_version=kernel.version,
        horizon=config.horizon,
        syzkaller_runs=syzkaller_runs,
        snowplow_runs=snowplow_runs,
    )


# ----- crashes (Tables 2-4) -----


@dataclass
class CrashCampaignResult:
    """One exhaustive (7-day-style) campaign's crash ledger."""

    kernel_version: str
    snowplow_crashes: list[list[TriagedCrash]]  # per run
    syzkaller_crashes: list[list[TriagedCrash]]

    @staticmethod
    def _count(crashes: list[TriagedCrash], new: bool) -> int:
        return sum(1 for crash in crashes if crash.is_new == new)

    def table2_rows(self) -> dict[str, list[int]]:
        """Counts in Table 2's layout (per run, per fuzzer)."""
        return {
            "snowplow_new": [
                self._count(run, True) for run in self.snowplow_crashes
            ],
            "snowplow_known": [
                self._count(run, False) for run in self.snowplow_crashes
            ],
            "syzkaller_new": [
                self._count(run, True) for run in self.syzkaller_crashes
            ],
            "syzkaller_known": [
                self._count(run, False) for run in self.syzkaller_crashes
            ],
        }

    def unique_new_crashes(self) -> list[TriagedCrash]:
        """New crashes across all Snowplow runs, deduplicated."""
        seen: dict[str, TriagedCrash] = {}
        for run in self.snowplow_crashes:
            for crash in run:
                if crash.is_new and crash.signature not in seen:
                    seen[crash.signature] = crash
        return list(seen.values())


def run_crash_campaign(
    kernel: Kernel,
    trained: TrainedPMM,
    config: CampaignConfig,
    reproduce: bool = True,
) -> CrashCampaignResult:
    """Tables 2/3: exhaustive side-by-side fuzzing with crash triage."""
    snowplow_crashes: list[list[TriagedCrash]] = []
    syzkaller_crashes: list[list[TriagedCrash]] = []
    for run in range(config.runs):
        run_seed = derive_seed(config.seed, "crash-run", run, kernel.version)
        seeds = ProgramGenerator(
            kernel.table, split(run_seed, "seed-corpus")
        ).seed_corpus(config.seed_corpus_size)
        syz = _build_syzkaller_loop(kernel, run_seed, config)
        syz.seed([program.clone() for program in seeds])
        syz_stats = syz.run()
        syzkaller_crashes.append(list(syz_stats.crashes))
        snow = _build_snowplow_loop(kernel, trained, run_seed, config)
        snow.seed([program.clone() for program in seeds])
        snow_stats = snow.run()
        if reproduce:
            for crash in snow_stats.crashes:
                snow.triage.reproduce(crash)
        snowplow_crashes.append(list(snow_stats.crashes))
    return CrashCampaignResult(
        kernel_version=kernel.version,
        snowplow_crashes=snowplow_crashes,
        syzkaller_crashes=syzkaller_crashes,
    )


# ----- fault tolerance (failure model) -----


@dataclass
class FaultCampaignResult:
    """One seed run twice: fault-free, and under an injected fault plan.

    Graceful degradation means the faulted run ends within a tolerance
    of the fault-free coverage instead of collapsing, while the failure
    ledger (restarts, lost predictions, breaker trips, resumes) shows
    the faults actually happened.
    """

    kernel_version: str
    horizon: float
    fault_free: FuzzStats
    faulted: FuzzStats
    crash_time: float | None
    checkpoints_taken: int
    resumed: bool
    # Telemetry of the faulted run (``observe=True`` runs only).
    observer: Observer | None = None

    @property
    def coverage_ratio(self) -> float:
        """Faulted final edge coverage as a fraction of fault-free."""
        baseline = self.fault_free.final_edges
        if baseline == 0:
            return 1.0
        return self.faulted.final_edges / baseline

    @property
    def degradation_pct(self) -> float:
        return 100.0 * (1.0 - self.coverage_ratio)

    def degraded_gracefully(self, tolerance_pct: float = 15.0) -> bool:
        """Within tolerance of the fault-free run of the same seed."""
        return self.degradation_pct <= tolerance_pct


def run_fault_tolerance_campaign(
    kernel: Kernel,
    trained: TrainedPMM,
    config: CampaignConfig,
    plan: FaultPlan,
    checkpoint_interval: float | None = None,
    checkpoint_dir: str | None = None,
    observe: bool = False,
) -> FaultCampaignResult:
    """Run one seed fault-free and under ``plan``, with checkpoint/resume.

    The faulted run checkpoints every ``checkpoint_interval`` virtual
    seconds (default: an eighth of the horizon).  If the plan schedules
    a ``campaign_crash`` window, the live loop is discarded at that
    virtual time — exactly as a killed worker would lose it — and a
    fresh loop is rebuilt from the same construction seeds, restored
    from the latest checkpoint, and run to the horizon.  Everything,
    including the remainder of the fault schedule, replays from the
    single campaign seed.
    """
    if checkpoint_interval is None:
        checkpoint_interval = config.horizon / 8.0
    if checkpoint_interval <= 0:
        raise CampaignError(
            f"checkpoint interval must be positive, got {checkpoint_interval}"
        )
    run_seed = derive_seed(config.seed, "fault-run", kernel.version)
    seeds = ProgramGenerator(
        kernel.table, split(run_seed, "seed-corpus")
    ).seed_corpus(config.seed_corpus_size)

    # Reference: the same seed with nothing failing.
    clean = _build_snowplow_loop(kernel, trained, run_seed, config)
    clean.seed([program.clone() for program in seeds])
    fault_free = clean.run()

    # Degraded: same seed, same construction, faults injected.  Only
    # the faulted loop is observed — an observer shared with the clean
    # loop would collide on the unlabeled per-worker series.
    injector = FaultInjector(plan)
    observer = Observer() if observe else None
    loop = _build_snowplow_loop(
        kernel, trained, run_seed, config, injector=injector,
        observer=observer,
    )
    loop.seed([program.clone() for program in seeds])
    store = (
        CheckpointStore(checkpoint_dir, injector=injector)
        if checkpoint_dir is not None else None
    )
    crash_time = injector.crash_time()
    last_state: dict | None = None
    next_checkpoint = checkpoint_interval
    checkpoints = 0
    resumed = False
    while not loop.clock.expired():
        bound = next_checkpoint
        if crash_time is not None and not resumed:
            bound = min(bound, crash_time)
        loop.run_until(bound)
        if (
            crash_time is not None and not resumed
            and loop.clock.now >= crash_time
        ):
            # The injected crash kills the worker: the live loop (and
            # its in-flight inference) is gone.  Rebuild and resume.
            # The replacement gets a fresh observer; the checkpoint
            # carries the telemetry recorded up to the last save, so a
            # resumed run's exports replay from durable state alone.
            observer = Observer() if observe else None
            loop = _build_snowplow_loop(
                kernel, trained, run_seed, config,
                injector=FaultInjector(plan),
                observer=observer,
            )
            if last_state is not None:
                restore_loop_state(loop, last_state)
            else:
                # Crashed before the first checkpoint: restart from the
                # seed corpus, which is all a worker with no durable
                # state can do.
                loop.seed([program.clone() for program in seeds])
                loop.stats.resumes += 1
            resumed = True
            continue
        if not loop.clock.expired() and loop.clock.now >= next_checkpoint:
            # The checkpoint span goes in before the state capture so
            # the saved telemetry already contains it — a resumed run's
            # trace then matches an uninterrupted one span for span.
            if loop.tracer is not None:
                loop.tracer.instant(
                    loop.track, "checkpoint", loop.clock.now,
                    cat="checkpoint", number=checkpoints + 1,
                )
            last_state = loop_state(loop)
            if store is not None:
                store.save(last_state)
            checkpoints += 1
            next_checkpoint += checkpoint_interval
    faulted = loop.finalize()
    return FaultCampaignResult(
        kernel_version=kernel.version,
        horizon=config.horizon,
        fault_free=fault_free,
        faulted=faulted,
        crash_time=crash_time,
        checkpoints_taken=checkpoints,
        resumed=resumed,
        observer=observer,
    )


# ----- scaling (the fleet) -----


def _build_shared_tier(
    kernel: Kernel, trained: TrainedPMM, run_seed: int,
    config: CampaignConfig, oracle: bool = False,
    injector: FaultInjector | None = None,
    observer: Observer | None = None,
) -> SharedInferenceTier:
    """The cluster's central serving tier: one (batching) service whose
    predictor runs the localizer on tagged ``(worker_id, query)``
    payloads with a serve-side RNG stream."""
    cfg = config.snowplow
    if oracle:
        from repro.snowplow.oracle import OracleLocalizer

        localizer = OracleLocalizer(kernel)
    else:
        localizer = PMMLocalizer(
            trained.model, trained.encoder, kernel,
            Executor(kernel, seed=derive_seed(run_seed, "serve-exec")),
            max_targets=cfg.max_targets,
            threshold=cfg.prediction_threshold,
            profiler=observer.profiler if observer is not None else None,
        )
    serve_rng = split(run_seed, "serve")

    def predict(payload):
        _, query = payload
        program, coverage, targets, _ = query
        return localizer.localize(program, coverage, targets, serve_rng)

    latency = config.cost.inference_latency
    breaker = CircuitBreaker(
        failure_threshold=cfg.breaker_failure_threshold,
        reset_timeout=cfg.breaker_reset_factor * latency,
    )
    registry = observer.registry if observer is not None else None
    tracer = observer.tracer if observer is not None else None
    shed_timeout = (
        cfg.shed_timeout_factor * latency
        if cfg.shed_timeout_factor is not None else None
    )
    if cfg.max_batch_size > 1:
        service: InferenceService = BatchingInferenceService(
            predict_fn=predict,
            base_latency=cfg.batch_base_factor * latency,
            marginal_latency=cfg.batch_marginal_factor * latency,
            max_batch_size=cfg.max_batch_size,
            batch_timeout=cfg.batch_timeout_factor * latency,
            servers=cfg.servers,
            max_queue=cfg.max_queue,
            deadline=cfg.request_deadline_factor * latency,
            max_retries=cfg.max_retries,
            retry_backoff=cfg.retry_backoff_factor * latency,
            injector=injector,
            breaker=breaker,
            registry=registry,
            tracer=tracer,
            shed_timeout=shed_timeout,
        )
    else:
        service = InferenceService(
            predict_fn=predict,
            latency=latency,
            servers=cfg.servers,
            max_queue=cfg.max_queue,
            deadline=cfg.request_deadline_factor * latency,
            max_retries=cfg.max_retries,
            retry_backoff=cfg.retry_backoff_factor * latency,
            injector=injector,
            breaker=breaker,
            registry=registry,
            tracer=tracer,
            shed_timeout=shed_timeout,
        )
    return SharedInferenceTier(service)


def build_cluster(
    kernel: Kernel,
    trained: TrainedPMM | None,
    run_seed: int,
    config: CampaignConfig,
    cluster_config: ClusterConfig | None = None,
    baseline: bool = False,
    oracle: bool = False,
    injector: FaultInjector | None = None,
    observer: Observer | None = None,
) -> ClusterFuzzer:
    """Assemble a seeded, ready-to-run fleet.

    Worker ``i``'s RNG streams derive from ``(run_seed, "worker", i)``
    regardless of fleet size, so worker 0 of a 1-worker cluster and
    worker 0 of an 8-worker cluster run the same private schedule — the
    scaling sweep then measures sharing, not reseeding.  All workers
    start from one shared seed corpus.  ``baseline=True`` builds a
    Syzkaller (heuristics-only) fleet with no serving tier.

    ``cluster_config.shards > 1`` shards the hub by coverage-signature
    range; ``cluster_config.heartbeat_deadline`` attaches a
    :class:`~repro.cluster.FleetSupervisor` that restarts hung/dead
    workers with deterministically reseeded loops.
    """
    cluster_config = cluster_config or ClusterConfig()
    seeds = ProgramGenerator(
        kernel.table, split(run_seed, "seed-corpus")
    ).seed_corpus(config.seed_corpus_size)
    registry = observer.registry if observer is not None else None
    if cluster_config.shards > 1:
        hub: CorpusHub = ShardedHub(
            shards=cluster_config.shards, registry=registry,
        )
    else:
        hub = CorpusHub(registry=registry)
    tier = None
    if not baseline:
        tier = _build_shared_tier(
            kernel, trained, run_seed, config, oracle=oracle,
            injector=injector, observer=observer,
        )

    def loop_factory(index: int, seed: int) -> FuzzLoop:
        # Shared between generation-0 construction and supervisor
        # restarts: only the seed differs across a worker's generations.
        if baseline:
            loop: FuzzLoop = _build_syzkaller_loop(
                kernel, seed, config, injector=injector,
                observer=observer, worker=index,
            )
        else:
            loop = _build_snowplow_loop(
                kernel, trained, seed, config, oracle=oracle,
                injector=injector, service=tier.view(index),
                observer=observer, worker=index,
            )
        loop.seed([program.clone() for program in seeds])
        return loop

    workers = []
    for index in range(cluster_config.workers):
        loop = loop_factory(index, derive_seed(run_seed, "worker", index))
        workers.append(
            ClusterWorker(
                worker_id=index, loop=loop, hub=hub,
                sync_interval=cluster_config.sync_interval,
                sync_cost=cluster_config.sync_cost,
                injector=injector,
                max_sync_retries=cluster_config.max_sync_retries,
            )
        )
    supervisor = None
    if cluster_config.heartbeat_deadline is not None:
        supervisor = FleetSupervisor(
            workers, hub, loop_factory,
            run_seed=run_seed,
            heartbeat_deadline=cluster_config.heartbeat_deadline,
            check_interval=cluster_config.supervise_interval,
            injector=injector,
            observer=observer,
        )
    return ClusterFuzzer(
        workers, hub, tier=tier, observer=observer, supervisor=supervisor,
    )


@dataclass
class ScalingPoint:
    """One fleet size's outcome."""

    workers: int
    result: ClusterResult
    # Telemetry for this fleet size (``observe=True`` runs only); each
    # point gets a fresh Observer so per-worker series never collide
    # across fleet sizes.
    observer: Observer | None = None


@dataclass
class ScalingCampaignResult:
    """Coverage-vs-fleet-size sweep (plus serving-tier throughput)."""

    kernel_version: str
    horizon: float
    points: list[ScalingPoint]

    def final_edges(self) -> dict[int, int]:
        return {point.workers: point.result.final_edges for point in self.points}

    def observed_qps(self) -> dict[int, float]:
        """Completed inferences per virtual second, by fleet size."""
        rates: dict[int, float] = {}
        for point in self.points:
            stats = point.result.service_stats
            rates[point.workers] = (
                stats.completed / self.horizon
                if stats is not None and self.horizon > 0 else 0.0
            )
        return rates


def run_scaling_campaign(
    kernel: Kernel,
    trained: TrainedPMM | None,
    config: CampaignConfig,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    cluster_config: ClusterConfig | None = None,
    baseline: bool = False,
    oracle: bool = False,
    observe: bool = False,
) -> ScalingCampaignResult:
    """Sweep fleet sizes at a fixed per-worker virtual budget.

    Every fleet size runs from the same campaign-derived ``run_seed``,
    so the sweep isolates the effect of fleet width (hub sharing plus
    serving-tier contention) from reseeding noise.  ``observe=True``
    attaches a fresh :class:`~repro.observe.Observer` per fleet size;
    its exports are a pure function of the campaign seed.
    """
    if not worker_counts:
        raise CampaignError("scaling campaign needs at least one fleet size")
    base = cluster_config or ClusterConfig()
    run_seed = derive_seed(config.seed, "scaling", kernel.version)
    points = []
    for count in worker_counts:
        observer = Observer() if observe else None
        cluster = build_cluster(
            kernel, trained, run_seed, config,
            cluster_config=ClusterConfig(
                workers=count,
                sync_interval=base.sync_interval,
                sync_cost=base.sync_cost,
                shards=base.shards,
                heartbeat_deadline=base.heartbeat_deadline,
                supervise_interval=base.supervise_interval,
                max_sync_retries=base.max_sync_retries,
            ),
            baseline=baseline, oracle=oracle, observer=observer,
        )
        result = cluster.run()
        if observer is not None:
            end = max(
                worker.loop.clock.now for worker in cluster.workers
            )
            observer.tracer.record(
                "campaign", f"fleet{count}", 0.0, end,
                cat="campaign", workers=count,
            )
        points.append(
            ScalingPoint(workers=count, result=result, observer=observer)
        )
    return ScalingCampaignResult(
        kernel_version=kernel.version,
        horizon=config.horizon,
        points=points,
    )


# ----- chaos (the failure model at fleet scale) -----


def chaos_plan(
    seed: int, horizon: float, cluster_config: ClusterConfig
) -> FaultPlan:
    """A seeded cluster-level fault schedule covering all four kinds.

    Victims are drawn from ``derive_seed(seed, "chaos-plan")`` so the
    schedule is a pure function of the campaign seed and topology:

    - one worker killed at 25% of the horizon (restarted by the
      supervisor once its heartbeat deadline lapses);
    - one worker hung from 35% for up to two heartbeat deadlines;
    - one worker partitioned from the hub at 50% for long enough to
      exhaust its sync retries (exercising the drop-and-reoffer path);
    - one hub shard lost from 55% to 70% (sharded hubs only).
    """
    deadline = cluster_config.heartbeat_deadline or 0.25 * horizon
    rng = make_rng(derive_seed(seed, "chaos-plan"))
    kill_victim = int(rng.integers(cluster_config.workers))
    hang_victim = int(rng.integers(cluster_config.workers))
    partition_victim = int(rng.integers(cluster_config.workers))
    plan = (
        FaultPlan()
        .with_worker_kill(kill_victim, 0.25 * horizon)
        .with_worker_hang(
            hang_victim,
            0.35 * horizon,
            min(0.35 * horizon + 2 * deadline, 0.95 * horizon),
        )
        .with_hub_partition(
            partition_victim,
            0.50 * horizon,
            min(
                0.50 * horizon
                + (cluster_config.max_sync_retries + 2)
                * cluster_config.sync_interval,
                0.90 * horizon,
            ),
        )
    )
    if cluster_config.shards > 1:
        shard = int(rng.integers(cluster_config.shards))
        plan = plan.with_shard_loss(shard, 0.55 * horizon, 0.70 * horizon)
    return plan


@dataclass
class ChaosCampaignResult:
    """One seeded chaos campaign: the same supervised fleet run clean
    and under a cluster-level :func:`chaos_plan`, with the robustness
    invariants the gate asserts."""

    kernel_version: str
    horizon: float
    workers: int
    shards: int
    plan: FaultPlan
    clean: ClusterResult
    chaos: ClusterResult
    # Signatures of two independent restores of the mid-campaign
    # checkpoint, run to completion.  With in-flight inference the
    # resumed timeline legitimately differs from an uninterrupted one
    # (lost requests are booked as failures), so bit-identical resume
    # means: every restore of the same bytes replays identically.
    resume_signatures: tuple[tuple, tuple]
    restarts: int
    dropped_entries: int
    shed: int
    outstanding_lost: int
    peak_edges: int
    observer: Observer | None = None
    # Hub lineage accounting at the end of the chaos run: pushes /
    # accepted / duplicates / subsumed counters plus how many lineage
    # records the hub actually marked ``superseded_by``.
    hub_accounting: dict = field(default_factory=dict)

    @property
    def coverage_ratio(self) -> float:
        """Faulty-run final coverage as a fraction of the clean run's."""
        if self.clean.final_edges == 0:
            return 1.0
        return self.chaos.final_edges / self.clean.final_edges

    @property
    def zero_corpus_loss(self) -> bool:
        """No admitted entry's coverage left the hub for good: nothing
        is stranded in a dead shard's backlog and the fleet-union edge
        count ends at (or above) its high-water mark."""
        return (
            self.outstanding_lost == 0
            and self.chaos.final_edges >= self.peak_edges
        )

    @property
    def coverage_monotone(self) -> bool:
        """Fleet-union coverage never regressed across the timeline."""
        edges = [obs.edges for obs in self.chaos.hub_timeline]
        return all(b >= a for a, b in zip(edges, edges[1:]))

    @property
    def resume_identical(self) -> bool:
        return self.resume_signatures[0] == self.resume_signatures[1]

    def degraded_gracefully(self, threshold_pct: float = 10.0) -> bool:
        """Final coverage within ``threshold_pct`` of the no-fault run."""
        return self.coverage_ratio >= 1.0 - threshold_pct / 100.0

    @property
    def accounting_closed(self) -> bool:
        """Zero-loss lineage accounting: every offered entry is either
        accepted or a counted duplicate, and every subsumption left a
        ``superseded_by`` record behind (re-offers of an already-
        superseded entry re-bump the counter but add no record, so the
        record count is a lower bound, never zero while drops happened).
        """
        acc = self.hub_accounting
        if not acc:
            return True
        if acc["pushes"] != acc["accepted"] + acc["duplicates"]:
            return False
        if acc["superseded_records"] > acc["subsumed"]:
            return False
        return acc["subsumed"] == 0 or acc["superseded_records"] > 0

    def passed(self, threshold_pct: float = 10.0) -> bool:
        return (
            self.zero_corpus_loss
            and self.coverage_monotone
            and self.resume_identical
            and self.degraded_gracefully(threshold_pct)
            and self.accounting_closed
        )


def run_chaos_campaign(
    kernel: Kernel,
    trained: TrainedPMM | None,
    config: CampaignConfig,
    cluster_config: ClusterConfig | None = None,
    plan: FaultPlan | None = None,
    baseline: bool = False,
    oracle: bool = False,
    observe: bool = False,
) -> ChaosCampaignResult:
    """The chaos gate: a supervised, sharded fleet under seeded faults.

    Protocol: (1) run the fleet fault-free for the reference coverage;
    (2) run it under :func:`chaos_plan`, checkpointing at 80% of the
    horizon — after the killed worker's restart — then finishing from
    two *independent* restores of that checkpoint and comparing their
    result signatures bit-for-bit.  The result carries the invariants
    the gate asserts: zero corpus-entry loss, monotone fleet-union
    coverage within a bound of the clean run, and identical resumes.
    """
    cluster_config = cluster_config or ClusterConfig(
        workers=4, shards=2, heartbeat_deadline=900.0,
    )
    if cluster_config.heartbeat_deadline is None:
        raise CampaignError(
            "chaos campaign needs a supervised cluster: "
            "set ClusterConfig.heartbeat_deadline"
        )
    run_seed = derive_seed(config.seed, "chaos", kernel.version)
    plan = plan or chaos_plan(config.seed, config.horizon, cluster_config)

    clean_cluster = build_cluster(
        kernel, trained, run_seed, config,
        cluster_config=cluster_config, baseline=baseline, oracle=oracle,
    )
    clean_result = clean_cluster.run()

    # The chaos run proper is interrupted at 80% of the horizon and
    # finished twice from the same serialized checkpoint; the first
    # restore's completion is reported as *the* chaos run.
    ckpt_at = 0.8 * config.horizon
    probe = build_cluster(
        kernel, trained, run_seed, config,
        cluster_config=cluster_config, baseline=baseline, oracle=oracle,
        injector=FaultInjector(plan),
        observer=Observer() if observe else None,
    )
    probe.run_until(ckpt_at)
    state = json.loads(json.dumps(cluster_state(probe)))

    resumed: list[ClusterFuzzer] = []
    results: list[ClusterResult] = []
    for _ in range(2):
        cluster = build_cluster(
            kernel, trained, run_seed, config,
            cluster_config=cluster_config, baseline=baseline,
            oracle=oracle, injector=FaultInjector(plan),
            observer=Observer() if observe else None,
        )
        restore_cluster_state(cluster, state)
        resumed.append(cluster)
        results.append(cluster.run())
    chaos_result = results[0]
    hub = resumed[0].hub
    observer = resumed[0].observer

    timeline_edges = [obs.edges for obs in chaos_result.hub_timeline]
    peak_edges = max(timeline_edges, default=0)
    outstanding = (
        hub.outstanding_lost_entries()
        if isinstance(hub, ShardedHub) else 0
    )
    service = chaos_result.service_stats
    result = ChaosCampaignResult(
        kernel_version=kernel.version,
        horizon=config.horizon,
        workers=cluster_config.workers,
        shards=cluster_config.shards,
        plan=plan,
        clean=clean_result,
        chaos=chaos_result,
        resume_signatures=(results[0].signature(), results[1].signature()),
        restarts=(
            resumed[0].supervisor.restarts
            if resumed[0].supervisor is not None else 0
        ),
        dropped_entries=hub.stats.dropped_entries,
        shed=service.shed if service is not None else 0,
        outstanding_lost=outstanding,
        peak_edges=peak_edges,
        observer=observer,
        hub_accounting={
            "pushes": hub.stats.pushes,
            "accepted": hub.stats.accepted,
            "duplicates": hub.stats.duplicates,
            "subsumed": hub.stats.subsumed_entries,
            "superseded_records": hub.provenance.superseded_count,
        },
    )
    if observer is not None:
        # End-state gauges for the supervision SLO pack: these are the
        # chaos invariants themselves, sampled once at the horizon so
        # threshold rules see only the campaign's verdict.
        registry = observer.registry
        registry.gauge("chaos.lost_edges").set(
            max(0, peak_edges - chaos_result.final_edges)
        )
        registry.gauge("chaos.coverage_regressions").set(
            sum(
                1 for a, b in zip(timeline_edges, timeline_edges[1:])
                if b < a
            )
        )
        registry.gauge("chaos.coverage_ratio_pct").set(
            100.0 * result.coverage_ratio
        )
        registry.gauge("chaos.resume_identical").set(
            1 if result.resume_identical else 0
        )
        registry.gauge("chaos.outstanding_lost_entries").set(outstanding)
        observer.timeseries.sample(config.horizon, registry)
    return result


# ----- directed fuzzing (Table 5) -----


def default_directed_targets(kernel: Kernel, count: int = 12) -> list[int]:
    """Bug-related target code locations, mixing easy and hard.

    Table 5's dataset consists of code locations tied to SyzBot bugs;
    here the crash blocks of planted bugs provide the hard targets and
    shallow blocks of the same handlers the easy ones.
    """
    rng = split(derive_seed(0, "targets", kernel.version), "pick")
    hard = [
        kernel.bug_blocks[bug.bug_id]
        for bug in sorted(kernel.bugs, key=lambda bug: bug.bug_id)
        if not bug.known
    ]
    easy: list[int] = []
    for name in sorted(kernel.handlers):
        cfg = kernel.handlers[name]
        shallow = [
            block_id for block_id in cfg.block_ids()
            if kernel.blocks[block_id].role is BlockRole.BODY
            and cfg.depth_of(block_id) <= 1
        ]
        if shallow:
            easy.append(shallow[int(rng.integers(len(shallow)))])
    rng.shuffle(easy)
    half = count // 2
    targets = hard[:half] + easy[: count - min(half, len(hard))]
    return targets[:count]


def run_directed_campaign(
    kernel: Kernel,
    trained: TrainedPMM,
    targets: list[int],
    config: CampaignConfig,
    oracle=None,
    analysis=None,
) -> dict[int, dict[str, list[DirectedResult]]]:
    """Table 5: per-target time-to-reach for SyzDirect vs Snowplow-D.

    ``oracle``/``analysis`` (from :mod:`repro.analyze`) upgrade the
    SyzDirect mode to exact static steering slots and shared distance
    maps; both default to None so baseline runs stay byte-identical.
    """
    if not targets:
        raise CampaignError("directed campaign needs at least one target")
    results: dict[int, dict[str, list[DirectedResult]]] = {}
    for target in targets:
        per_mode: dict[str, list[DirectedResult]] = {
            "syzdirect": [], "snowplow_d": []
        }
        target_syscall = kernel.handler_of_block.get(target, "")
        for run in range(config.runs):
            run_seed = derive_seed(config.seed, "directed", target, run)
            seeds = ProgramGenerator(
                kernel.table, split(run_seed, "seed-corpus")
            ).seed_corpus(max(10, config.seed_corpus_size // 4))
            for mode in ("syzdirect", "snowplow_d"):
                executor = Executor(kernel, seed=derive_seed(run_seed, mode))
                generator = ProgramGenerator(
                    kernel.table, split(run_seed, "gen", mode)
                )
                if mode == "syzdirect":
                    localizer = SyzDirectLocalizer(
                        target_syscall, oracle=oracle
                    )
                    overhead = 0.0
                else:
                    localizer = PMMLocalizer(
                        trained.model, trained.encoder, kernel, executor
                    )
                    # Amortized inference overhead of the learned
                    # localizer (why Snowplow-D is marginally slower on
                    # trivial targets, Table 5).
                    overhead = 0.2 * config.cost.test_execution
                fuzzer = DirectedFuzzer(
                    kernel=kernel,
                    target_block=target,
                    executor=executor,
                    generator=generator,
                    localizer=localizer,
                    clock=VirtualClock(horizon=config.horizon),
                    cost=config.cost,
                    rng=split(run_seed, "loop", mode),
                    mutation_overhead=overhead,
                    analysis=analysis,
                )
                fuzzer.seed([program.clone() for program in seeds])
                per_mode[mode].append(fuzzer.run())
        results[target] = per_mode
    return results


# ----- patch-directed fuzzing (repro.analyze.impact) -----


@dataclass
class PatchCampaignResult:
    """A directed-vs-plain pair of runs against one release diff."""

    from_version: str
    to_version: str
    horizon: float
    targets: tuple[int, ...]
    directed: FuzzStats
    plain: FuzzStats
    directed_reached_at: dict[int, float]
    plain_reached_at: dict[int, float]
    directed_time: float
    plain_time: float
    directed_complete: bool
    plain_complete: bool

    def speedup(self) -> float:
        """Plain over directed time-to-all-targets (>1 = directed wins)."""
        if self.directed_time <= 0:
            return float("inf")
        return self.plain_time / self.directed_time

    def targets_reached_fraction(self) -> float:
        if not self.targets:
            return 1.0
        return len(self.directed_reached_at) / len(self.targets)


def run_patch_campaign(
    old_kernel: Kernel,
    new_kernel: Kernel,
    config: CampaignConfig,
    manifest=None,
) -> PatchCampaignResult:
    """Directed-vs-plain time-to-changed-surface on one release diff.

    Both arms run the *same* oracle Snowplow loop with the same run
    seed and a cloned seed corpus; the plain arm carries an
    observe-only :class:`~repro.analyze.impact.PatchDirector` (zero rng
    draws, so it is bit-identical to an undirected run) purely to
    record when each changed block is first covered, while the directed
    arm's director actively schedules distance-ranked targets and
    steers mutations toward them.  The ratio of the two
    time-to-all-targets numbers is the directed bench's headline.
    """
    from repro.analyze.impact import PatchDirector, build_target_manifest

    if manifest is None:
        manifest = build_target_manifest(old_kernel, new_kernel)
    targets = tuple(manifest.fuzzable_blocks())
    run_seed = derive_seed(
        config.seed, "patch", old_kernel.version, new_kernel.version
    )
    seeds = ProgramGenerator(
        new_kernel.table, split(run_seed, "seed-corpus")
    ).seed_corpus(config.seed_corpus_size)

    plain_director = PatchDirector(new_kernel, manifest, observe_only=True)
    plain_loop = _build_snowplow_loop(
        new_kernel, None, run_seed, config, oracle=True,
        director=plain_director,
    )
    plain_loop.seed([program.clone() for program in seeds])
    plain_stats = plain_loop.run()

    directed_director = PatchDirector(new_kernel, manifest)
    directed_loop = _build_snowplow_loop(
        new_kernel, None, run_seed, config, oracle=True,
        director=directed_director,
    )
    directed_loop.seed([program.clone() for program in seeds])
    directed_stats = directed_loop.run()

    return PatchCampaignResult(
        from_version=old_kernel.version,
        to_version=new_kernel.version,
        horizon=config.horizon,
        targets=targets,
        directed=directed_stats,
        plain=plain_stats,
        directed_reached_at=dict(directed_director.reached_at),
        plain_reached_at=dict(plain_director.reached_at),
        directed_time=directed_director.time_to_all(config.horizon),
        plain_time=plain_director.time_to_all(config.horizon),
        directed_complete=directed_director.complete,
        plain_complete=plain_director.complete,
    )
