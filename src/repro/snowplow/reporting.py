"""Human-readable rendering of the paper's tables and figures.

``scaling_json``/``chaos_json`` are the machine-readable twins of
``format_scaling``/``format_chaos``: canonical JSON (sorted keys,
stable separators) so the service and CI consume campaign outcomes
without screen-scraping the text tables.
"""

from __future__ import annotations

import json

import numpy as np

from repro.fuzzer.crash import TriagedCrash
from repro.fuzzer.directed import DirectedResult
from repro.kernel.bugs import CrashKind
from repro.pmm.metrics import SelectorMetrics
from repro.snowplow.campaign import (
    ChaosCampaignResult,
    CoverageCampaignResult,
    CrashCampaignResult,
    ScalingCampaignResult,
)

__all__ = [
    "chaos_json",
    "format_table1",
    "format_chaos",
    "format_fig6",
    "format_scaling",
    "format_specgen",
    "format_table2",
    "format_table3",
    "format_table5",
    "scaling_json",
    "specgen_json",
]

_TABLE3_ORDER = (
    CrashKind.NULL_DEREF,
    CrashKind.PAGING_FAULT,
    CrashKind.ASSERT,
    CrashKind.GPF,
    CrashKind.OOB,
    CrashKind.WARNING,
    CrashKind.OTHER,
)

_TABLE3_NAMES = {
    CrashKind.NULL_DEREF: "Null pointer dereference",
    CrashKind.PAGING_FAULT: "Paging fault",
    CrashKind.ASSERT: "Explicit assertion violation",
    CrashKind.GPF: "General protection fault",
    CrashKind.OOB: "Out of bounds access",
    CrashKind.WARNING: "Warning",
    CrashKind.RCU_STALL: "Other",
    CrashKind.OTHER: "Other",
}


def format_table1(
    pmm: SelectorMetrics,
    baseline: SelectorMetrics,
    baseline_name: str,
    static_oracle: SelectorMetrics | None = None,
) -> str:
    """Table 1: promising-arguments selector performance.

    ``static_oracle`` adds the upper-bound row from
    :class:`~repro.analyze.StaticOracleLocalizer` — exact by
    construction against the static ground truth — plus the gap between
    PMM and the statically attainable maximum.
    """
    lines = [
        "Table 1. Promising arguments selector performance.",
        f"{'Selector':<10} {'F1':>6} {'Precision':>9} {'Recall':>6} {'Jaccard':>7}",
    ]
    if static_oracle is not None:
        lines.append(static_oracle.row("StaticOrc"))
    lines.append(pmm.row("PMModel"))
    lines.append(baseline.row(baseline_name))
    if static_oracle is not None:
        lines.append(
            f"PMM vs static upper bound: "
            f"F1 -{(static_oracle.f1 - pmm.f1) * 100:.1f}pp, "
            f"precision -{(static_oracle.precision - pmm.precision) * 100:.1f}pp, "
            f"recall -{(static_oracle.recall - pmm.recall) * 100:.1f}pp"
        )
    return "\n".join(lines)


def format_fig6(results: list[CoverageCampaignResult]) -> str:
    """Fig. 6: per-kernel coverage summaries (a-c) and improvement (d)."""
    lines = ["Figure 6. Edge coverage, Snowplow vs Syzkaller."]
    for result in results:
        hours = result.horizon / 3600.0
        lines.append(
            f"  Linux {result.kernel_version} ({hours:.0f}h x "
            f"{len(result.syzkaller_runs)} runs): "
            f"Syzkaller {result.syzkaller_final_mean:.0f} edges, "
            f"Snowplow {result.snowplow_final_mean:.0f} edges "
            f"(+{result.coverage_improvement:.1f}%), "
            f"speedup {result.speedup:.1f}x"
        )
        grid = np.linspace(0.0, result.horizon, 9)[1:]
        snow = result._mean_series(result.snowplow_runs)
        syz = result._mean_series(result.syzkaller_runs)
        full = np.linspace(0.0, result.horizon, 97)
        snow_pts = np.interp(grid, full, snow)
        syz_pts = np.interp(grid, full, syz)
        lines.append(
            "    t(h):      " + " ".join(f"{t / 3600:6.1f}" for t in grid)
        )
        lines.append(
            "    Snowplow:  " + " ".join(f"{v:6.0f}" for v in snow_pts)
        )
        lines.append(
            "    Syzkaller: " + " ".join(f"{v:6.0f}" for v in syz_pts)
        )
    return "\n".join(lines)


def format_scaling(result: ScalingCampaignResult) -> str:
    """The fleet sweep: coverage vs fleet size, hub traffic, serving
    throughput, and per-worker breakdowns."""
    hours = result.horizon / 3600.0
    lines = [
        f"Scaling sweep on kernel {result.kernel_version} "
        f"({hours:.0f}h virtual per worker).",
        f"{'Workers':>7} {'Edges':>7} {'Execs':>9} {'Syncs':>6} "
        f"{'Hub acc/dup':>12} {'Infer q/s':>10} {'Batch':>6}",
    ]
    qps = result.observed_qps()
    for point in result.points:
        cluster = point.result
        merged = cluster.merged
        hub = cluster.hub_stats
        service = cluster.service_stats
        batch = (
            f"{service.mean_batch_size:6.2f}"
            if service is not None and service.batch_sizes else "     -"
        )
        lines.append(
            f"{point.workers:>7d} {cluster.final_edges:>7d} "
            f"{merged.executions:>9d} {merged.hub_syncs:>6d} "
            f"{hub.accepted:>5d}/{hub.duplicates:<6d} "
            f"{qps[point.workers]:>10.3f} {batch}"
        )
    for point in result.points:
        if point.workers <= 1:
            continue
        lines.append(f"  per-worker breakdown ({point.workers} workers):")
        for worker_id, stats in enumerate(point.result.worker_stats):
            lines.append(
                f"    worker {worker_id}: {stats.final_edges:6d} edges, "
                f"{stats.executions:8d} execs, "
                f"pushed {stats.hub_pushed}, pulled {stats.hub_pulled}"
            )
    return "\n".join(lines)


def scaling_json(result: ScalingCampaignResult) -> str:
    """Canonical JSON for the fleet sweep (``repro cluster --json``)."""
    qps = result.observed_qps()
    points = []
    for point in result.points:
        cluster = point.result
        merged = cluster.merged
        service = cluster.service_stats
        points.append({
            "workers": point.workers,
            "final_edges": cluster.final_edges,
            "final_blocks": cluster.final_blocks,
            "executions": merged.executions,
            "hub_syncs": merged.hub_syncs,
            "hub_accepted": cluster.hub_stats.accepted,
            "hub_duplicates": cluster.hub_stats.duplicates,
            "inference_qps": qps[point.workers],
            "mean_batch_size": (
                service.mean_batch_size
                if service is not None and service.batch_sizes else None
            ),
            "worker_stats": [
                {
                    "worker": worker_id,
                    "final_edges": stats.final_edges,
                    "executions": stats.executions,
                    "hub_pushed": stats.hub_pushed,
                    "hub_pulled": stats.hub_pulled,
                }
                for worker_id, stats in enumerate(cluster.worker_stats)
            ],
        })
    payload = {
        "kernel": result.kernel_version,
        "horizon_hours": result.horizon / 3600.0,
        "points": points,
    }
    return json.dumps(payload, sort_keys=True, indent=2)


def chaos_json(result: ChaosCampaignResult) -> str:
    """Canonical JSON for the chaos gate (``repro cluster chaos --json``)."""
    payload = {
        "kernel": result.kernel_version,
        "horizon_hours": result.horizon / 3600.0,
        "workers": result.workers,
        "shards": result.shards,
        "plan": result.plan.to_dict(),
        "recovery": {
            "restarts": result.restarts,
            "dropped_entries": result.dropped_entries,
            "shed": result.shed,
            "outstanding_lost": result.outstanding_lost,
        },
        "coverage": {
            "clean_edges": result.clean.final_edges,
            "chaos_edges": result.chaos.final_edges,
            "peak_edges": result.peak_edges,
            "ratio_pct": 100.0 * result.coverage_ratio,
        },
        "invariants": {
            "zero_corpus_loss": result.zero_corpus_loss,
            "coverage_monotone": result.coverage_monotone,
            "resume_identical": result.resume_identical,
            "degraded_gracefully": result.degraded_gracefully(),
        },
        "passed": result.passed(),
    }
    return json.dumps(payload, sort_keys=True, indent=2)


def format_chaos(result: ChaosCampaignResult) -> str:
    """The chaos gate: fault schedule, recovery actions, invariants."""
    hours = result.horizon / 3600.0
    verdict = "PASS" if result.passed() else "FAIL"
    lines = [
        f"Chaos campaign on kernel {result.kernel_version} "
        f"({hours:.1f}h virtual, {result.workers} workers, "
        f"{result.shards} hub shard(s)).",
        "  fault schedule:",
    ]
    for window in result.plan.windows:
        lines.append(
            f"    {window.site:<18} [{window.start:8.0f}, {window.end:8.0f}]"
        )
    lines.append(
        f"  recovery: {result.restarts} worker restart(s), "
        f"{result.dropped_entries} dropped hub entrie(s), "
        f"{result.shed} shed inference request(s)"
    )
    lines.append(
        f"  coverage: clean {result.clean.final_edges} edges, "
        f"chaos {result.chaos.final_edges} edges "
        f"({100.0 * result.coverage_ratio:.1f}% of clean, "
        f"peak {result.peak_edges})"
    )
    checks = (
        ("zero corpus-entry loss", result.zero_corpus_loss),
        ("fleet coverage monotone", result.coverage_monotone),
        ("kill+resume bit-identical", result.resume_identical),
        ("degraded gracefully (<=10%)", result.degraded_gracefully()),
    )
    for name, ok in checks:
        lines.append(f"  [{'ok' if ok else 'FAIL'}] {name}")
    lines.append(f"  verdict: {verdict}")
    return "\n".join(lines)


def format_specgen(result) -> str:
    """The spec-inference evaluation: fidelity and the coverage gap.

    ``result`` is a :class:`~repro.specgen.SpecgenCampaignResult`; the
    table shows, per release, how faithful the inferred table is to the
    hand-written stdlib and how much fuzzing coverage survives when the
    generator only knows the inferred specs.
    """
    lines = [
        f"Spec inference evaluation ({result.hours:.1f}h virtual per run, "
        f"size={result.size}, seed={result.seed}).",
        f"{'Kernel':<7} {'Specs':>11} {'KindAcc':>8} {'FlagRec':>8} "
        f"{'ResP/R':>11} {'Edges t/i':>13} {'Ratio':>7} {'Bugs t/i':>9}",
    ]
    for run in result.runs:
        fid = run.fidelity
        specs = f"{fid.matched_syscalls}/{fid.truth_syscalls}"
        res = f"{fid.resource_precision:.2f}/{fid.resource_recall:.2f}"
        edges = f"{run.truth_edges}/{run.inferred_edges}"
        bugs = f"{len(run.truth_bugs)}/{len(run.inferred_bugs)}"
        lines.append(
            f"{run.version:<7} {specs:>11} {fid.kind_accuracy:>8.3f} "
            f"{fid.flag_recall:>8.3f} {res:>11} {edges:>13} "
            f"{run.coverage_ratio:>6.1%} {bugs:>9}"
        )
    for run in result.runs:
        only_truth = sorted(set(run.truth_bugs) - set(run.inferred_bugs))
        only_inferred = sorted(set(run.inferred_bugs) - set(run.truth_bugs))
        if only_truth:
            lines.append(
                f"  {run.version}: bugs only with ground truth: "
                + ", ".join(only_truth)
            )
        if only_inferred:
            lines.append(
                f"  {run.version}: bugs only with inferred specs: "
                + ", ".join(only_inferred)
            )
    return "\n".join(lines)


def specgen_json(result) -> str:
    """Canonical JSON twin of :func:`format_specgen`."""
    return json.dumps(result.to_dict(), sort_keys=True, indent=2)


def format_table2(result: CrashCampaignResult) -> str:
    """Table 2: crashes found during the exhaustive campaign."""
    rows = result.table2_rows()
    runs = len(result.snowplow_crashes)
    header = "".join(f"  run{r + 1}" for r in range(runs))
    lines = [
        "Table 2. Crashes found during the exhaustive fuzzing campaign.",
        f"{'Status':<16}{'Snowplow':>12}{'Syzkaller':>18}",
        f"{'':<16}{header}{header}",
    ]
    new_row = "".join(f"{v:6d}" for v in rows["snowplow_new"]) + "".join(
        f"{v:6d}" for v in rows["syzkaller_new"]
    )
    known_row = "".join(f"{v:6d}" for v in rows["snowplow_known"]) + "".join(
        f"{v:6d}" for v in rows["syzkaller_known"]
    )
    lines.append(f"{'New Crashes':<16}{new_row}")
    lines.append(f"{'Known Crashes':<16}{known_row}")
    total_snow = [
        rows["snowplow_new"][r] + rows["snowplow_known"][r] for r in range(runs)
    ]
    total_syz = [
        rows["syzkaller_new"][r] + rows["syzkaller_known"][r]
        for r in range(runs)
    ]
    total_row = "".join(f"{v:6d}" for v in total_snow) + "".join(
        f"{v:6d}" for v in total_syz
    )
    lines.append(f"{'Total':<16}{total_row}")
    return "\n".join(lines)


def format_table3(crashes: list[TriagedCrash]) -> str:
    """Table 3: new crashes by manifestation and reproducer status."""
    counts: dict[str, list[int]] = {}
    for kind in _TABLE3_ORDER:
        counts.setdefault(_TABLE3_NAMES[kind], [0, 0])
    for crash in crashes:
        name = _TABLE3_NAMES.get(crash.category, "Other")
        bucket = counts.setdefault(name, [0, 0])
        bucket[0 if crash.has_reproducer else 1] += 1
    lines = [
        "Table 3. New crash reports by manifestation.",
        f"{'Category':<30} {'Repro: Yes':>10} {'No':>4}",
    ]
    total_yes = total_no = 0
    for name, (yes, no) in counts.items():
        lines.append(f"{name:<30} {yes:>10d} {no:>4d}")
        total_yes += yes
        total_no += no
    lines.append(f"{'Total':<30} {total_yes:>10d} {total_no:>4d}")
    return "\n".join(lines)


def format_table5(
    results: dict[int, dict[str, list[DirectedResult]]],
    kernel_version: str,
) -> str:
    """Table 5: average time-to-target and success rates."""
    lines = [
        f"Table 5. Directed fuzzing on kernel {kernel_version}: "
        "avg time-to-target in virtual seconds (successes/runs).",
        f"{'Target block':<14}{'SyzDirect':>18}{'Snowplow-D':>18}{'Speedup':>9}",
    ]
    both_syz_total = 0.0
    both_snow_total = 0.0
    both = 0
    for target, modes in sorted(results.items()):
        cells = {}
        for mode in ("syzdirect", "snowplow_d"):
            runs = modes[mode]
            times = [r.time_to_target for r in runs if r.reached]
            hits = len(times)
            if hits:
                cells[mode] = (float(np.mean(times)), hits, len(runs))
            else:
                cells[mode] = (None, 0, len(runs))
        syz_time, syz_hits, total_runs = cells["syzdirect"]
        snow_time, snow_hits, _ = cells["snowplow_d"]
        syz_cell = (
            f"{syz_time:8.0f} ({syz_hits}/{total_runs})"
            if syz_time is not None else f"      NA (0/{total_runs})"
        )
        snow_cell = (
            f"{snow_time:8.0f} ({snow_hits}/{total_runs})"
            if snow_time is not None else f"      NA (0/{total_runs})"
        )
        if syz_time is not None and snow_time is not None:
            speedup = f"{syz_time / max(snow_time, 1e-9):8.1f}"
            both_syz_total += syz_time
            both_snow_total += snow_time
            both += 1
        elif snow_time is not None:
            speedup = "     INF"
        else:
            speedup = "      NA"
        lines.append(f"{target:<14}{syz_cell:>18}{snow_cell:>18}{speedup:>9}")
    if both and both_snow_total > 0:
        lines.append(
            f"{'Subtotal':<14}{both_syz_total:>10.0f}{both_snow_total:>18.0f}"
            f"{both_syz_total / both_snow_total:>17.1f}"
        )
    return "\n".join(lines)
