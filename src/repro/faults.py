"""Deterministic fault injection and resilience primitives.

The paper's deployment is riddled with partial failures the rest of the
reproduction would otherwise pretend away: torchserve replicas time out
or crash and Syzkaller falls back to heuristic mutation (§3.4, §5.5),
QEMU VMs hang mid-program and are restarted from snapshot, and multi-day
campaigns survive worker restarts.  This module makes those failures
first-class *and reproducible*: a :class:`FaultPlan` describes, from a
single seed, exactly when and where faults fire, and a
:class:`FaultInjector` answers "does this operation fail?" queries
deterministically in virtual time.

Two kinds of faults compose:

- **windows** — outages with a fixed virtual-time extent (an inference
  service outage from t=A to t=B, a campaign-process crash at t=C);
- **rates** — per-operation failure probabilities drawn from a dedicated
  seeded stream per site, so the schedule at one site does not depend on
  how operations interleave at another.

Well-known sites (callers may invent more):

========================  ====================================================
``inference``             a model-server request times out (deadline exceeded)
``server_slot``           a serving slot crashes while holding the request
``executor``              a test call hangs; the watchdog kills and restarts
``corpus_store``          a transient corpus write failure (retried)
``checkpoint_store``      a transient checkpoint write failure (retried)
``campaign_crash``        the campaign worker dies (windows only; the first
                          window start is the kill time)
``worker_kill:<id>``      a fleet worker process dies at the window start and
                          stays dead until the supervisor restarts it
``worker_hang:<id>``      a fleet worker wedges: its clock advances but it
                          makes no progress (heartbeat goes stale)
``hub_partition:<id>``    a fleet worker is partitioned from the corpus hub;
                          sync round-trips fail throughout the window
``shard_loss:<n>``        corpus-hub shard ``n`` is lost at the window start
                          and recovers (reconciling) at the window end
========================  ====================================================

The injector's per-site draw streams are checkpointable
(:meth:`FaultInjector.state` / :meth:`FaultInjector.restore`), which is
what lets a resumed campaign replay the *remainder* of its fault
schedule bit-identically.

:class:`CircuitBreaker` is the standard three-state resilience pattern
(closed → open → half-open) in virtual time; :mod:`repro.pmm.serve`
uses it to stop hammering a failing inference tier and route
localization back to the heuristic fallback until a probe succeeds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.rng import derive_seed, make_rng

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultWindow",
]


# ----- the plan -----


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled outage: ``site`` fails throughout [start, end)."""

    site: str
    start: float
    end: float

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(
                f"window for {self.site!r} ends before it starts "
                f"({self.start} > {self.end})"
            )

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seed-reproducible fault schedule.

    ``rates`` maps a site to its per-operation failure probability;
    ``windows`` lists scheduled outages.  Everything stochastic derives
    from ``seed`` alone, so two injectors built from equal plans produce
    identical fault sequences for identical query sequences.
    """

    seed: int = 0
    rates: dict[str, float] = field(default_factory=dict)
    windows: tuple[FaultWindow, ...] = ()

    def __post_init__(self):
        for site, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"rate for {site!r} must be in [0, 1], got {rate}"
                )

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The empty plan (nothing ever fails)."""
        return cls(seed=seed)

    def with_window(self, site: str, start: float, end: float) -> "FaultPlan":
        """A copy with one more outage window."""
        return FaultPlan(
            seed=self.seed,
            rates=dict(self.rates),
            windows=self.windows + (FaultWindow(site, start, end),),
        )

    def with_rate(self, site: str, rate: float) -> "FaultPlan":
        """A copy with a per-operation failure rate for ``site``."""
        rates = dict(self.rates)
        rates[site] = rate
        return FaultPlan(seed=self.seed, rates=rates, windows=self.windows)

    def with_worker_kill(self, worker_id: int, time: float) -> "FaultPlan":
        """A copy where fleet worker ``worker_id`` dies at ``time``.

        The kill is an *event*, not an outage: the worker dies the first
        time its clock reaches the window start and stays dead until the
        supervisor restarts it, so the (zero-width) window's end is
        irrelevant.
        """
        return self.with_window(f"worker_kill:{worker_id}", time, time)

    def with_worker_hang(
        self, worker_id: int, start: float, end: float
    ) -> "FaultPlan":
        """A copy where worker ``worker_id`` wedges over [start, end)."""
        return self.with_window(f"worker_hang:{worker_id}", start, end)

    def with_hub_partition(
        self, worker_id: int, start: float, end: float
    ) -> "FaultPlan":
        """A copy where worker ``worker_id`` cannot reach the hub."""
        return self.with_window(f"hub_partition:{worker_id}", start, end)

    def with_shard_loss(
        self, shard: int, start: float, end: float
    ) -> "FaultPlan":
        """A copy where hub shard ``shard`` is down over [start, end)."""
        return self.with_window(f"shard_loss:{shard}", start, end)

    def with_campaign_crash(self, time: float) -> "FaultPlan":
        """A copy where the campaign process dies at ``time`` (an event,
        like :meth:`with_worker_kill`; the resume path picks it up via
        :meth:`crash_time`)."""
        return self.with_window("campaign_crash", time, time)

    def to_dict(self) -> dict:
        """A JSON-ready encoding (the wire/checkpoint format).

        Tenants attach degradation schedules to service campaign specs
        as plain JSON; :meth:`from_dict` round-trips to an equal plan,
        so two injectors built from the encoded and original plans fire
        identically.
        """
        return {
            "seed": self.seed,
            "rates": dict(sorted(self.rates.items())),
            "windows": [
                [window.site, window.start, window.end]
                for window in self.windows
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """The inverse of :meth:`to_dict`."""
        return cls(
            seed=int(payload.get("seed", 0)),
            rates={
                str(site): float(rate)
                for site, rate in payload.get("rates", {}).items()
            },
            windows=tuple(
                FaultWindow(str(site), float(start), float(end))
                for site, start, end in payload.get("windows", [])
            ),
        )

    def crash_time(self) -> float | None:
        """Virtual time of the first ``campaign_crash`` window, if any."""
        times = [
            window.start for window in self.windows
            if window.site == "campaign_crash"
        ]
        return min(times) if times else None

    def hang_start(self, worker_id: int, now: float) -> float | None:
        """Start of the hang window covering ``now`` for this worker,
        if any.  Hangs are process-scoped: callers compare this against
        the worker's birth time, so a supervisor restart (a fresh VM)
        cures a hang even while the window is still open."""
        site = f"worker_hang:{worker_id}"
        for window in self.windows:
            if window.site == site and window.covers(now):
                return window.start
        return None

    def kill_times(self, worker_id: int) -> tuple[float, ...]:
        """Scheduled kill times for ``worker_id``, in plan order."""
        site = f"worker_kill:{worker_id}"
        return tuple(
            window.start for window in self.windows if window.site == site
        )


# ----- the injector -----


class FaultInjector:
    """Answers "does this operation fail now?" deterministically.

    Each site draws from its own child stream of the plan seed, so the
    schedule at one site is invariant to traffic at every other site.
    ``fires`` consumes one draw per call (when the site has a nonzero
    rate); the per-site draw streams plus injection counters are the
    injector's whole mutable state, which :meth:`state`/:meth:`restore`
    round-trip for campaign checkpointing.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injected: dict[str, int] = {}
        self._rngs: dict[str, object] = {}

    # -- queries --

    def fires(self, site: str, now: float) -> bool:
        """True when an operation at ``site`` at virtual ``now`` fails."""
        if self.in_window(site, now):
            self._count(site)
            return True
        rate = self.plan.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        if float(self._rng(site).random()) < rate:
            self._count(site)
            return True
        return False

    def uniform(self, site: str) -> float:
        """A deterministic U[0,1) draw from ``site``'s stream.

        Used for fault *shape* parameters (e.g. how far into a call an
        injected hang strikes) so they ride the same seeded stream as
        the fault decisions themselves.
        """
        return float(self._rng(site).random())

    def in_window(self, site: str, now: float) -> bool:
        """Whether ``site`` is inside a scheduled outage at ``now``."""
        return any(
            window.site == site and window.covers(now)
            for window in self.plan.windows
        )

    def window_end(self, site: str, now: float) -> float | None:
        """End of the outage covering ``now`` at ``site``, if any."""
        ends = [
            window.end for window in self.plan.windows
            if window.site == site and window.covers(now)
        ]
        return max(ends) if ends else None

    def crash_time(self) -> float | None:
        """Kill time of the campaign worker (first crash window)."""
        return self.plan.crash_time()

    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- checkpointable state --

    def state(self) -> dict:
        """JSON-serializable snapshot of the draw streams and counters."""
        return {
            "injected": dict(self.injected),
            "rng": {
                site: rng.bit_generator.state
                for site, rng in self._rngs.items()
            },
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state`."""
        self.injected = dict(state.get("injected", {}))
        self._rngs = {}
        for site, rng_state in state.get("rng", {}).items():
            rng = make_rng(0)
            rng.bit_generator.state = rng_state
            self._rngs[site] = rng

    # -- internals --

    def _rng(self, site: str):
        rng = self._rngs.get(site)
        if rng is None:
            rng = make_rng(derive_seed(self.plan.seed, "fault", site))
            self._rngs[site] = rng
        return rng

    def _count(self, site: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1


# ----- the circuit breaker -----


class BreakerState(enum.Enum):
    """The classic three-state circuit-breaker machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker over virtual time.

    CLOSED admits everything.  After ``failure_threshold`` consecutive
    failures the breaker trips OPEN and rejects requests (callers fall
    back to their degraded path) until ``reset_timeout`` virtual seconds
    pass; the next request is then admitted as a HALF_OPEN probe.  A
    probe success closes the breaker, a probe failure re-trips it.

    Failures are *observed* at result-delivery time, which in virtual
    time lags the submission that caused them; the breaker only needs
    the observation order to be deterministic, which the virtual clock
    guarantees.
    """

    def __init__(self, failure_threshold: int = 4, reset_timeout: float = 600.0):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.trips = 0
        self.transitions: list[tuple[float, str]] = []
        self._probe_in_flight = False

    def allow(self, now: float) -> bool:
        """Whether a new request may be admitted at ``now``."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.reset_timeout:
                self._transition(BreakerState.HALF_OPEN, now)
                self._probe_in_flight = True
                return True
            return False
        # HALF_OPEN: one probe at a time.
        if not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.OPEN:
            # A stale pre-trip result delivered while open.  Only a
            # half-open probe admitted by ``allow`` may close the
            # breaker: when the virtual clock jumps past several probe
            # windows in one tick, a burst of stale successes must not
            # close it without a single probe having run.
            return
        if (
            self.state is BreakerState.HALF_OPEN
            and not self._probe_in_flight
        ):
            # Half-open with no reserved probe (e.g. after
            # ``cancel_probe``): same stale-result situation.
            return
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, now)
        self._probe_in_flight = False

    def cancel_probe(self) -> None:
        """Release the half-open probe reservation without an outcome.

        Used when the caller admitted a request past the breaker but
        then dropped it for an unrelated reason (e.g. a full queue), so
        the probe slot is not leaked.
        """
        self._probe_in_flight = False

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip(now)
        self._probe_in_flight = False

    # -- checkpointable state --

    def state_dict(self) -> dict:
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "opened_at": self.opened_at,
            "trips": self.trips,
            "transitions": [list(item) for item in self.transitions],
            "probe_in_flight": self._probe_in_flight,
        }

    def restore(self, state: dict) -> None:
        self.state = BreakerState(state["state"])
        self.consecutive_failures = int(state["consecutive_failures"])
        self.opened_at = float(state["opened_at"])
        self.trips = int(state["trips"])
        self.transitions = [
            (float(time), str(name)) for time, name in state["transitions"]
        ]
        self._probe_in_flight = bool(state["probe_in_flight"])

    # -- internals --

    def _trip(self, now: float) -> None:
        self.trips += 1
        self.opened_at = now
        self._transition(BreakerState.OPEN, now)

    def _transition(self, state: BreakerState, now: float) -> None:
        self.state = state
        self.transitions.append((now, state.value))
