"""Fleet supervision: heartbeat liveness and deterministic restarts.

Real fuzzing fleets lose workers constantly — QEMU wedges, OOM kills,
kernel panics taking the manager down with the guest.  Syzkaller's
answer (and the orchestrator pattern in frameworks like mugbear) is a
supervisor that watches per-worker heartbeats and restarts anything
that goes quiet.  :class:`FleetSupervisor` reproduces that loop on the
virtual clock:

- every worker's :attr:`~repro.cluster.scheduler.ClusterWorker.last_progress`
  is its heartbeat — hung and dead workers stop advancing it;
- on a fixed check cadence the supervisor declares any worker whose
  heartbeat is older than ``heartbeat_deadline`` dead and restarts it;
- a restart builds a **fresh** loop through the campaign's loop
  factory, seeded with ``derive_seed(run_seed, "worker", id, "restart",
  generation)`` — deterministic, so two runs of the same chaos plan
  restart identically — and re-seeds the new corpus from the hub, so
  no fleet-level coverage is lost with the dead incarnation;
- checks also drive shard-loss fault windows against a
  :class:`~repro.cluster.shards.ShardedHub` (failover at window start,
  reconciliation at window end).

Supervision state (generations, restart counts, next check time) is
checkpointable, so a resumed campaign reproduces every later restart
decision bit-identically.
"""

from __future__ import annotations

from repro.errors import SupervisionError
from repro.rng import derive_seed

__all__ = ["FleetSupervisor"]


class FleetSupervisor:
    """Heartbeat-based liveness supervisor for a worker fleet."""

    def __init__(
        self,
        workers,
        hub,
        loop_factory,
        run_seed: int,
        heartbeat_deadline: float,
        check_interval: float | None = None,
        injector=None,
        observer=None,
    ):
        if heartbeat_deadline <= 0:
            raise SupervisionError(
                f"heartbeat_deadline must be positive, got "
                f"{heartbeat_deadline}"
            )
        self.workers = sorted(workers, key=lambda worker: worker.worker_id)
        self.hub = hub
        self.loop_factory = loop_factory
        self.run_seed = run_seed
        self.heartbeat_deadline = heartbeat_deadline
        self.check_interval = (
            check_interval if check_interval is not None
            else heartbeat_deadline / 2.0
        )
        if self.check_interval <= 0:
            raise SupervisionError(
                f"check_interval must be positive, got {self.check_interval}"
            )
        self.injector = injector
        self.observer = observer
        self.next_check = self.check_interval
        self.generations = {
            worker.worker_id: worker.generation for worker in self.workers
        }
        self.checks = 0
        self.restarts = 0

    # ----- scheduler hook -----

    def poll(self, up_to: float, have_runnable: bool) -> list:
        """Run every check due before ``up_to``; returns restarted workers.

        With runnable workers in the scheduler's heap, checks simply
        interleave in virtual-time order.  With the heap drained but
        dead workers remaining, checks keep firing into the future
        (bounded by the fleet horizon) until one revives a worker —
        that is what prevents an all-dead fleet from deadlocking the
        event loop.
        """
        revived: list = []
        bound = min(up_to, self._fleet_horizon())
        while self.next_check <= bound:
            if not have_runnable:
                if not self._revivable():
                    break
            revived.extend(self.check(self.next_check))
            self.next_check += self.check_interval
            if not have_runnable and revived:
                break
        return revived

    # ----- the check -----

    def check(self, at: float) -> list:
        """One supervision pass at virtual ``at``: drive shard fault
        windows, then restart every worker whose heartbeat expired."""
        self.checks += 1
        self._drive_shard_faults(at)
        revived = []
        for worker in self.workers:
            if worker.loop.clock.expired():
                continue
            stale = at - worker.last_progress >= self.heartbeat_deadline
            if worker.killed and not stale:
                # Known-dead but inside the grace period: the real
                # supervisor cannot see the crash, only the silence.
                continue
            if stale:
                self._restart(worker, at)
                revived.append(worker)
        if self.observer is not None:
            registry = self.observer.registry
            registry.gauge("supervise.restarts").set(self.restarts)
            registry.gauge("supervise.dead_workers").set(
                sum(1 for worker in self.workers if worker.killed)
            )
            if hasattr(self.hub, "alive_shards"):
                registry.gauge("hub.shards_alive").set(
                    self.hub.alive_shards()
                )
        return revived

    def _restart(self, worker, at: float) -> None:
        worker_id = worker.worker_id
        generation = self.generations[worker_id] + 1
        self.generations[worker_id] = generation
        seed = derive_seed(
            self.run_seed, "worker", worker_id, "restart", generation
        )
        loop = self.loop_factory(worker_id, seed)
        # The new incarnation starts where the fleet is now, never
        # behind its predecessor's clock (a hung worker kept ticking).
        restart_at = max(at, worker.loop.clock.now, loop.clock.now)
        loop.clock.advance(restart_at - loop.clock.now, "dead")
        # Re-seed from the hub: everything the fleet shared survives
        # the dead incarnation.
        for entry in self.hub.entries:
            loop.accumulated.merge(entry.coverage)
            loop.corpus.add(
                entry.program, entry.coverage,
                signal=entry.signal, hints=entry.hints,
            )
        worker.loop = loop
        worker.killed = False
        worker.generation = generation
        worker.born = restart_at
        worker.last_progress = restart_at
        worker.next_sync = restart_at + worker.sync_interval
        worker.sync_epoch = self.hub.epoch
        worker._synced_entries = len(loop.corpus.entries)
        worker.dropped = []
        worker._sync_failures = 0
        self.restarts += 1
        if self.observer is not None:
            self.observer.tracer.instant(
                "supervise", "worker_restart", restart_at, cat="supervise",
                worker=worker_id, generation=generation,
            )

    def _drive_shard_faults(self, at: float) -> None:
        if self.injector is None or not hasattr(self.hub, "fail_shard"):
            return
        for shard in range(self.hub.shards):
            down = self.injector.in_window(f"shard_loss:{shard}", at)
            failed = shard in self.hub.failed_shards
            if down and not failed:
                parked = self.hub.fail_shard(shard, at)
                if self.observer is not None:
                    self.observer.tracer.instant(
                        "supervise", "shard_failover", at, cat="fault",
                        shard=shard, parked=parked,
                    )
            elif not down and failed:
                readmitted = self.hub.recover_shard(shard, at)
                if self.observer is not None:
                    self.observer.tracer.instant(
                        "supervise", "shard_recover", at, cat="fault",
                        shard=shard, readmitted=readmitted,
                    )

    # ----- internals -----

    def _revivable(self) -> bool:
        return any(
            worker.killed and not worker.loop.clock.expired()
            for worker in self.workers
        )

    def _fleet_horizon(self) -> float:
        return max(worker.loop.clock.horizon for worker in self.workers)

    # ----- checkpointable state -----

    def state_dict(self) -> dict:
        return {
            "next_check": self.next_check,
            "generations": {
                str(worker_id): generation
                for worker_id, generation in sorted(self.generations.items())
            },
            "checks": self.checks,
            "restarts": self.restarts,
        }

    def restore(self, state: dict) -> None:
        self.next_check = float(state["next_check"])
        self.generations = {
            int(worker_id): int(generation)
            for worker_id, generation in state["generations"].items()
        }
        self.checks = int(state["checks"])
        self.restarts = int(state["restarts"])
