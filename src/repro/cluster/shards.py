"""A sharded, partition-tolerant corpus hub.

syz-hub is a single process; at fleet scale its dedup table and corpus
store become both a throughput bottleneck and a single point of failure.
:class:`ShardedHub` splits the hub by **coverage-signature range**: each
entry's signature hashes to a 64-bit key, and shard ``i`` owns the
``i``-th equal slice of the key space.  Three mechanisms ride on top:

- **Bloom pre-dedup** — each shard keeps a small deterministic bloom
  filter over its signatures; a definitely-new signature skips the full
  set compare (counted as ``hub.bloom_skips``).  False positives fall
  through to the exact check, so dedup decisions are identical to the
  unsharded hub's.
- **Epoch-based replication** — at the start of every push round, each
  live shard's replica watermark advances to the hub epoch: everything
  accepted in *prior* rounds is replicated.  Only the current round's
  tail is vulnerable to shard loss.
- **Failover and reconciliation** — :meth:`fail_shard` drops the dead
  shard's unreplicated tail from the serving store (its replicated
  prefix keeps being served, i.e. the replica covers the range) and
  parks the tail in a backlog; :meth:`recover_shard` merges the backlog
  back, re-admitting entries the fleet did not rediscover during the
  outage, under fresh epochs so later pulls propagate them.  The
  coverage timeline reports the high-water union, which stays monotone
  through failover; a campaign that recovers every failed shard before
  finalizing loses no entries (``peak == final``).

The hub's mutable state (including shard watermarks, failed set, and
backlog) is checkpointable via ``state_dict``/``restore``, so a resumed
campaign replays failover decisions bit-identically.
"""

from __future__ import annotations

from hashlib import blake2b

from repro.errors import CheckpointError
from repro.fuzzer.loop import FuzzObservation
from repro.kernel.coverage import Coverage
from repro.observe import MetricsRegistry
from repro.observe.provenance import UNION, LineageRecord
from repro.syzlang.parser import parse_program, serialize_program

from .hub import CorpusHub, HubEntry

__all__ = ["BloomFilter", "ShardedHub", "signature_digest"]


def signature_digest(signature) -> int:
    """A stable 64-bit key for a coverage signature (edge frozenset)."""
    payload = ";".join(f"{src},{dst}" for src, dst in sorted(signature))
    raw = blake2b(payload.encode("ascii"), digest_size=8).digest()
    return int.from_bytes(raw, "big")


class BloomFilter:
    """A tiny deterministic bloom filter over signature digests.

    Positions derive from disjoint 16-bit slices of the 64-bit digest,
    so membership is a pure function of the signature — no randomized
    hashing, hence bit-identical across runs and after rebuilds.  The
    filter is never serialized: restores and failovers rebuild it from
    the surviving signatures.
    """

    def __init__(self, bits: int = 4096, hashes: int = 3):
        if bits < 8 or hashes < 1 or hashes * 16 > 64:
            raise ValueError(f"bad bloom shape: bits={bits} hashes={hashes}")
        self.bits = bits
        self.hashes = hashes
        self._mask = 0

    def _positions(self, digest: int):
        for i in range(self.hashes):
            yield (digest >> (16 * i)) % self.bits

    def add(self, digest: int) -> None:
        for position in self._positions(digest):
            self._mask |= 1 << position

    def might_contain(self, digest: int) -> bool:
        return all(
            self._mask >> position & 1 for position in self._positions(digest)
        )


class ShardedHub(CorpusHub):
    """A :class:`CorpusHub` split by coverage-signature range.

    Drop-in for ``CorpusHub``: the sync protocol (push/pull/epochs) and
    dedup decisions are identical in fault-free runs; sharding only
    changes *where* signatures live and what a shard loss can take out.
    """

    def __init__(self, shards: int = 4, registry: MetricsRegistry | None = None):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        super().__init__(registry=registry)
        self.shards = shards
        self._shard_signatures: list[set[frozenset]] = [
            set() for _ in range(shards)
        ]
        self._blooms = [BloomFilter() for _ in range(shards)]
        # Highest epoch each shard's replica is known to hold.
        self._replica_epoch = [0] * shards
        self._failed: set[int] = set()
        # Unreplicated tails parked at failover, keyed by shard.
        self._backlog: dict[int, list[HubEntry]] = {}
        # epoch -> shard for entries in the serving store.
        self._entry_shard: dict[int, int] = {}
        # High-water union sizes; the timeline reports these so the
        # cluster coverage curve stays monotone through failover.
        self._peak_edges = 0
        self._peak_blocks = 0

    # ----- placement -----

    def shard_of(self, signature) -> int:
        """The shard owning ``signature``'s slice of the key range."""
        return signature_digest(signature) * self.shards >> 64

    def alive_shards(self) -> int:
        return self.shards - len(self._failed)

    @property
    def failed_shards(self) -> frozenset:
        return frozenset(self._failed)

    def outstanding_lost_entries(self) -> int:
        """Entries parked in failover backlogs, awaiting reconciliation."""
        return sum(len(tail) for tail in self._backlog.values())

    # ----- the sync protocol -----

    def push(self, worker_id: int, entries, now: float) -> int:
        # Replication round: everything accepted before this push has
        # reached the live shards' replicas by now.
        for shard in range(self.shards):
            if shard not in self._failed:
                self._replica_epoch[shard] = self.epoch
        accepted = 0
        for entry in entries:
            self.stats.pushes += 1
            signature = frozenset(entry.coverage.edges)
            lineage = getattr(entry, "lineage", None)
            digest = signature_digest(signature)
            shard = digest * self.shards >> 64
            if not self._blooms[shard].might_contain(digest):
                # Bloom says definitely-new: skip the exact compare.
                self.stats.bloom_skips += 1
                seen = False
            else:
                seen = signature in self._shard_signatures[shard]
            if seen or not entry.coverage.new_edges(self.coverage):
                self.stats.duplicates += 1
                self._subsume(lineage, signature)
                continue
            if lineage is not None:
                lineage = self.provenance.record(lineage)
            self._admit(
                HubEntry(
                    program=entry.program.clone(),
                    coverage=entry.coverage.copy(),
                    signal=entry.signal,
                    hints=frozenset(entry.hints),
                    origin=worker_id,
                    epoch=0,
                    lineage=lineage,
                ),
                shard,
                signature,
                digest,
                now,
            )
            accepted += 1
            self.stats.accepted += 1
        return accepted

    def _admit(
        self,
        entry: HubEntry,
        shard: int,
        signature: frozenset,
        digest: int,
        now: float,
    ) -> None:
        self.epoch += 1
        entry.epoch = self.epoch
        self.entries.append(entry)
        self._signatures.add(signature)
        if entry.lineage is not None:
            self._signature_owner[signature] = entry.lineage.entry_id
        self._shard_signatures[shard].add(signature)
        self._blooms[shard].add(digest)
        self._entry_shard[entry.epoch] = shard
        self.coverage.merge(entry.coverage)
        self._peak_edges = max(self._peak_edges, len(self.coverage.edges))
        self._peak_blocks = max(self._peak_blocks, len(self.coverage.blocks))
        self.timeline.append(
            FuzzObservation(
                time=now,
                edges=self._peak_edges,
                blocks=self._peak_blocks,
                executions=0,
            )
        )

    # ----- failover -----

    def fail_shard(self, shard: int, now: float) -> int:
        """Lose ``shard``: serve its range from the replica.

        The replicated prefix of the shard's entries stays available;
        the unreplicated tail (entries accepted after the shard's
        replica watermark) is parked in a backlog until recovery.
        Returns how many entries the failover parked.
        """
        if not 0 <= shard < self.shards:
            raise ValueError(f"no such shard {shard}")
        if shard in self._failed:
            return 0
        self._failed.add(shard)
        watermark = self._replica_epoch[shard]
        lost = [
            entry for entry in self.entries
            if self._entry_shard[entry.epoch] == shard
            and entry.epoch > watermark
        ]
        if lost:
            lost_epochs = {entry.epoch for entry in lost}
            self.entries = [
                entry for entry in self.entries
                if entry.epoch not in lost_epochs
            ]
            for entry in lost:
                signature = frozenset(entry.coverage.edges)
                self._signatures.discard(signature)
                self._signature_owner.pop(signature, None)
                self._shard_signatures[shard].discard(signature)
                del self._entry_shard[entry.epoch]
            self._rebuild_bloom(shard)
            self._recompute_union()
        self._backlog[shard] = lost
        self.stats.lost_entries += len(lost)
        self.stats.failovers += 1
        return len(lost)

    def recover_shard(self, shard: int, now: float) -> int:
        """Bring ``shard`` back and reconcile its diverged tail.

        Backlog entries the fleet rediscovered during the outage are
        dropped as subsumed; the rest are re-admitted under fresh epochs
        so subsequent pulls propagate them fleet-wide.  Returns how many
        entries were re-admitted.
        """
        if shard not in self._failed:
            return 0
        self._failed.discard(shard)
        readmitted = 0
        for entry in self._backlog.pop(shard, []):
            signature = frozenset(entry.coverage.edges)
            if (
                signature in self._shard_signatures[shard]
                or not entry.coverage.new_edges(self.coverage)
            ):
                # Rediscovered during the outage: the backlog entry is
                # subsumed, not silently gone.  (Not a push, so only the
                # subsumption is booked — no pushes/duplicates bump.)
                self.stats.subsumed_entries += 1
                if entry.lineage is not None:
                    owner = self._signature_owner.get(signature)
                    self.provenance.record(entry.lineage)
                    self.provenance.supersede(
                        entry.lineage.entry_id,
                        owner if owner is not None else UNION,
                    )
                continue
            self._admit(
                entry, shard, signature, signature_digest(signature), now
            )
            readmitted += 1
        self.stats.reconciled += readmitted
        self._replica_epoch[shard] = self.epoch
        return readmitted

    def recover_all(self, now: float) -> int:
        """Recover every failed shard (campaign teardown path)."""
        return sum(
            self.recover_shard(shard, now) for shard in sorted(self._failed)
        )

    def _rebuild_bloom(self, shard: int) -> None:
        bloom = BloomFilter()
        for signature in self._shard_signatures[shard]:
            bloom.add(signature_digest(signature))
        self._blooms[shard] = bloom

    def _recompute_union(self) -> None:
        coverage = Coverage()
        for entry in self.entries:
            coverage.merge(entry.coverage)
        self.coverage = coverage

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["shards"] = self.shards
        state["replica_epoch"] = list(self._replica_epoch)
        state["failed"] = sorted(self._failed)
        state["backlog"] = {
            str(shard): [
                {
                    "program": serialize_program(entry.program),
                    "traces": [
                        list(trace) for trace in entry.coverage.call_traces
                    ],
                    "signal": entry.signal,
                    "hints": sorted(entry.hints),
                    "origin": entry.origin,
                    "epoch": entry.epoch,
                    "lineage": (
                        entry.lineage.to_dict()
                        if entry.lineage is not None else None
                    ),
                }
                for entry in tail
            ]
            for shard, tail in sorted(self._backlog.items())
        }
        state["peak_edges"] = self._peak_edges
        state["peak_blocks"] = self._peak_blocks
        return state

    def restore(self, state: dict, table) -> None:
        if int(state.get("shards", 1)) != self.shards:
            raise CheckpointError(
                f"checkpoint has {state.get('shards')} hub shards, "
                f"cluster was built with {self.shards}"
            )
        super().restore(state, table)
        self._shard_signatures = [set() for _ in range(self.shards)]
        self._entry_shard = {}
        for entry in self.entries:
            signature = frozenset(entry.coverage.edges)
            shard = self.shard_of(signature)
            self._shard_signatures[shard].add(signature)
            self._entry_shard[entry.epoch] = shard
        for shard in range(self.shards):
            self._rebuild_bloom(shard)
        self._replica_epoch = [int(mark) for mark in state["replica_epoch"]]
        self._failed = set(int(shard) for shard in state["failed"])
        self._backlog = {
            int(shard): [
                HubEntry(
                    program=parse_program(entry_state["program"], table),
                    coverage=Coverage.from_traces(entry_state["traces"]),
                    signal=int(entry_state["signal"]),
                    hints=frozenset(entry_state["hints"]),
                    origin=int(entry_state["origin"]),
                    epoch=int(entry_state["epoch"]),
                    lineage=(
                        self.provenance.record(
                            LineageRecord.from_dict(entry_state["lineage"])
                        )
                        if entry_state.get("lineage") is not None else None
                    ),
                )
                for entry_state in tail
            ]
            for shard, tail in state["backlog"].items()
        }
        self._peak_edges = int(state["peak_edges"])
        self._peak_blocks = int(state["peak_blocks"])
