"""Deterministic discrete-event scheduling of a fuzzing fleet.

Every worker owns a :class:`~repro.vclock.VirtualClock`; the scheduler
interleaves them by always stepping the worker whose clock is furthest
behind, breaking ties by worker id.  Because each step advances the
stepped worker's clock by the virtual cost of what it simulated, the
interleaving — and therefore every shared-state interaction (corpus-hub
syncs, shared serving-tier submissions) — is a pure function of the
campaign seed.  That is what makes N-worker cluster runs bit-reproducible
and checkpoint/resume exact.

Workers sync against the :class:`~repro.cluster.hub.CorpusHub` on a
fixed virtual cadence, paying ``CostModel.hub_sync`` per round-trip, so
corpus sharing has a cost and a propagation lag like the real syz-hub.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.fuzzer.loop import FuzzLoop, FuzzObservation, FuzzStats

from .hub import CorpusHub, HubStats
from .serving import SharedInferenceTier

__all__ = [
    "ClusterConfig",
    "ClusterFuzzer",
    "ClusterResult",
    "ClusterScheduler",
    "ClusterWorker",
]


@dataclass
class ClusterConfig:
    """Fleet-shape knobs of a cluster campaign."""

    workers: int = 4
    # Virtual seconds between a worker's hub syncs (10 virtual minutes
    # under the scaled cost model — syz-hub managers poll on the order
    # of minutes, not per-execution).
    sync_interval: float = 600.0
    # Cost charged per sync round-trip; None uses ``CostModel.hub_sync``.
    sync_cost: float | None = None
    # Corpus-hub shards; >1 builds a ShardedHub with failover.
    shards: int = 1
    # Heartbeat liveness: a worker whose last progress is older than
    # this is declared dead and restarted.  None disables supervision.
    heartbeat_deadline: float | None = None
    # Supervisor check cadence; None defaults to half the deadline.
    supervise_interval: float | None = None
    # Failed hub sync rounds tolerated (per partition) before the push
    # batch is dropped with ``hub.dropped_entries`` accounting.
    max_sync_retries: int = 2

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"cluster needs at least 1 worker, got {self.workers}")
        if self.sync_interval <= 0:
            raise ValueError(
                f"sync_interval must be positive, got {self.sync_interval}"
            )
        if self.shards < 1:
            raise ValueError(f"need at least one hub shard, got {self.shards}")
        if self.heartbeat_deadline is not None and self.heartbeat_deadline <= 0:
            raise ValueError(
                f"heartbeat_deadline must be positive, got "
                f"{self.heartbeat_deadline}"
            )
        if self.supervise_interval is not None and self.supervise_interval <= 0:
            raise ValueError(
                f"supervise_interval must be positive, got "
                f"{self.supervise_interval}"
            )
        if self.max_sync_retries < 0:
            raise ValueError(
                f"max_sync_retries must be >= 0, got {self.max_sync_retries}"
            )


class ClusterWorker:
    """One fuzz loop plus its hub-sync bookkeeping."""

    def __init__(
        self,
        worker_id: int,
        loop: FuzzLoop,
        hub: CorpusHub,
        sync_interval: float = 600.0,
        sync_cost: float | None = None,
        injector=None,
        max_sync_retries: int = 2,
    ):
        self.worker_id = worker_id
        self.loop = loop
        self.hub = hub
        self.sync_interval = sync_interval
        self.sync_cost = (
            sync_cost if sync_cost is not None else loop.cost.hub_sync
        )
        self.next_sync = sync_interval
        # Hub epoch of the last pull; pulls are incremental on this.
        self.sync_epoch = 0
        # Corpus entries already offered to the hub (a prefix: pulled
        # entries are appended past this mark and never pushed back).
        self._synced_entries = 0
        # Cluster-level fault state (see repro.faults site table).
        self.injector = injector
        self.max_sync_retries = max_sync_retries
        self.killed = False
        # Incarnation number; bumped by the supervisor on each restart.
        self.generation = 0
        # Birth time of this incarnation.  Hang windows are process-
        # scoped: a restart after the window opened is a fresh VM and
        # immune to it (the supervisor's restart actually cures hangs).
        self.born = 0.0
        # Heartbeat: virtual time of the last productive step.  Hung and
        # dead workers stop advancing it, which is what the supervisor's
        # deadline detects.
        self.last_progress = 0.0
        self._sync_failures = 0
        # Corpus indices whose push batch was dropped under partition;
        # re-offered at flush so the hub union loses nothing.
        self.dropped: list[int] = []
        # Kill-window starts already fired (a kill is an event, not an
        # outage: it must not re-fire on the restarted incarnation).
        self._consumed_kills: set[float] = set()

    def step(self) -> bool:
        """One scheduler quantum: a hub sync if one is due, otherwise a
        fuzz-loop iteration.  Returns False once the worker stops
        running — clock expired, or killed by a fault."""
        clock = self.loop.clock
        if self.killed or clock.expired():
            return False
        now = clock.now
        if self._kill_due(now):
            self.killed = True
            if self.loop.tracer is not None:
                self.loop.tracer.instant(
                    self.loop.track, "worker_killed", now, cat="fault",
                    generation=self.generation,
                )
            return False
        if self.injector is not None:
            hang_start = self.injector.plan.hang_start(self.worker_id, now)
            if hang_start is not None and self.born <= hang_start:
                # Wedged: virtual time passes but no work happens and
                # the heartbeat goes stale, which is what the
                # supervisor sees.
                clock.advance(self.loop.cost.test_execution, "hung")
                return True
        if now >= self.next_sync:
            self.sync()
        else:
            self.loop._iterate()
        self.last_progress = clock.now
        return True

    def _kill_due(self, now: float) -> bool:
        if self.injector is None:
            return False
        for start in self.injector.plan.kill_times(self.worker_id):
            if start <= now and start not in self._consumed_kills:
                self._consumed_kills.add(start)
                return True
        return False

    def sync(self) -> None:
        """One hub round-trip: push fresh corpus entries, pull the rest
        of the fleet's, merge their coverage, pay the sync cost."""
        loop = self.loop
        start = loop.clock.now
        if self.injector is not None and self.injector.in_window(
            f"hub_partition:{self.worker_id}", start
        ):
            self._sync_partitioned(start)
            return
        self._sync_failures = 0
        with loop._section("loop.hub_sync"):
            fresh = loop.corpus.entries[self._synced_entries:]
            accepted = self.hub.push(self.worker_id, fresh, loop.clock.now)
            pulled, self.sync_epoch = self.hub.pull(
                self.worker_id, self.sync_epoch
            )
            for entry in pulled:
                loop.accumulated.merge(entry.coverage)
                # Pulled lineage lands in the local ledger too, so this
                # worker's descendants of a foreign entry chain through
                # it without waiting for the fleet-level merge.
                if entry.lineage is not None:
                    loop.provenance.record(entry.lineage)
                loop.corpus.add(
                    entry.program, entry.coverage,
                    signal=entry.signal, hints=entry.hints,
                    lineage=entry.lineage,
                )
            self._synced_entries = len(loop.corpus.entries)
            loop.stats.hub_syncs += 1
            loop.stats.hub_pushed += accepted
            loop.stats.hub_pulled += len(pulled)
            loop.clock.advance(self.sync_cost, "hub_sync")
        if loop.observer is not None:
            # Fleet-union coverage as a gauge: the scaling claim is a
            # trajectory, so the time-series needs it, not just the
            # final number.
            union = self.hub.coverage
            loop.observer.registry.gauge("hub.edges").set(len(union.edges))
            loop.observer.registry.gauge("hub.blocks").set(
                len(union.blocks)
            )
            loop.observer.sample(loop.clock.now)
        if loop.tracer is not None:
            loop.tracer.record(
                loop.track, "hub_sync", start, loop.clock.now,
                cat="hub_sync", pushed=accepted, pulled=len(pulled),
            )
        while self.next_sync <= loop.clock.now:
            self.next_sync += self.sync_interval

    def _sync_partitioned(self, start: float) -> None:
        """A sync round-trip that cannot reach the hub.

        The worker still pays the round-trip cost (it tried), counts
        the failure, and after ``max_sync_retries`` consecutive failed
        rounds drops the pending push batch — visibly, through the
        ``hub.dropped_entries`` counter and a tracer instant, never
        silently.  Dropped entries are remembered and re-offered at
        flush, so a recovered partition loses no coverage.
        """
        loop = self.loop
        self._sync_failures += 1
        self.hub.stats.sync_failures += 1
        with loop._section("loop.hub_sync"):
            loop.clock.advance(self.sync_cost, "hub_sync")
        if self._sync_failures > self.max_sync_retries:
            fresh = list(
                range(self._synced_entries, len(loop.corpus.entries))
            )
            if fresh:
                self.dropped.extend(fresh)
                self.hub.stats.dropped_entries += len(fresh)
                self._synced_entries = len(loop.corpus.entries)
                if loop.tracer is not None:
                    loop.tracer.instant(
                        loop.track, "hub_dropped", loop.clock.now,
                        cat="fault", entries=len(fresh),
                    )
            self._sync_failures = 0
        if loop.tracer is not None:
            loop.tracer.record(
                loop.track, "hub_sync_failed", start, loop.clock.now,
                cat="hub_sync", retries=self._sync_failures,
            )
        while self.next_sync <= loop.clock.now:
            self.next_sync += self.sync_interval

    def flush(self) -> None:
        """Final push at the horizon (no pull, no time charge) so the
        hub union reflects everything the fleet found.  Batches dropped
        under partition are re-offered first; a worker that died and was
        never restarted cannot flush."""
        if self.killed:
            return
        corpus = self.loop.corpus.entries
        fresh = [corpus[index] for index in self.dropped]
        fresh += corpus[self._synced_entries:]
        accepted = self.hub.push(self.worker_id, fresh, self.loop.clock.now)
        self.dropped = []
        self._synced_entries = len(corpus)
        self.loop.stats.hub_pushed += accepted


class ClusterScheduler:
    """Min-heap event loop over (virtual-time, worker-id)."""

    def __init__(self, workers: list[ClusterWorker]):
        self.workers = sorted(workers, key=lambda worker: worker.worker_id)
        ids = [worker.worker_id for worker in self.workers]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate worker ids: {ids}")
        self._by_id = {worker.worker_id: worker for worker in self.workers}

    def run_until(self, time: float, supervisor=None) -> None:
        """Step workers in deterministic order until every clock reaches
        ``time`` (or its horizon).

        With a supervisor attached, its checks interleave with worker
        events in virtual-time order: before each event the supervisor
        runs every check due up to that event, and workers it restarts
        re-enter the heap.  When the heap drains while dead workers
        remain, checks keep firing into the future until the deadline
        detector revives them (or the horizon passes).
        """
        heap: list[tuple[float, int]] = []
        for worker in self.workers:
            clock = worker.loop.clock
            if not worker.killed and not clock.expired() and clock.now < time:
                heapq.heappush(heap, (clock.now, worker.worker_id))
        while True:
            if supervisor is not None:
                up_to = heap[0][0] if heap else time
                for revived in supervisor.poll(up_to, bool(heap)):
                    clock = revived.loop.clock
                    if not clock.expired() and clock.now < time:
                        heapq.heappush(
                            heap, (clock.now, revived.worker_id)
                        )
            if not heap:
                break
            _, worker_id = heapq.heappop(heap)
            worker = self._by_id[worker_id]
            clock = worker.loop.clock
            if clock.expired() or clock.now >= time:
                continue
            alive = worker.step()
            if alive and not clock.expired() and clock.now < time:
                heapq.heappush(heap, (clock.now, worker_id))


@dataclass
class ClusterResult:
    """What a cluster campaign reports for one fleet size."""

    workers: int
    horizon: float
    worker_stats: list[FuzzStats]
    merged: FuzzStats
    hub_edges: int
    hub_blocks: int
    hub_timeline: list[FuzzObservation] = field(default_factory=list)
    hub_stats: HubStats = field(default_factory=HubStats)
    service_stats: object | None = None

    @property
    def final_edges(self) -> int:
        """Fleet-union edge coverage (the hub's, after the final flush)."""
        return self.hub_edges

    @property
    def final_blocks(self) -> int:
        return self.hub_blocks

    def signature(self) -> tuple:
        """A compact fingerprint of everything determinism must preserve:
        fleet totals, per-worker counters, and the hub growth timeline.
        Two runs (or a run and its resumed twin) match iff these do."""
        return (
            self.final_edges,
            self.final_blocks,
            self.merged.executions,
            self.merged.mutations,
            tuple(
                (
                    stats.executions, stats.corpus_size, stats.hub_syncs,
                    stats.hub_pushed, stats.hub_pulled,
                )
                for stats in self.worker_stats
            ),
            tuple(
                (observation.time, observation.edges)
                for observation in self.hub_timeline
            ),
        )


class ClusterFuzzer:
    """Facade tying workers, hub, scheduler, and serving tier together."""

    def __init__(
        self,
        workers: list[ClusterWorker],
        hub: CorpusHub,
        tier: SharedInferenceTier | None = None,
        observer=None,
        supervisor=None,
    ):
        self.workers = sorted(workers, key=lambda worker: worker.worker_id)
        self.hub = hub
        self.tier = tier
        self.observer = observer
        self.supervisor = supervisor
        self.scheduler = ClusterScheduler(self.workers)
        if observer is not None:
            # The hub's ledger joins the workers' (the loops attach
            # themselves) so the exported lineage.json resolves entries
            # the hub holds that their finder deduped away locally.
            observer.attach_provenance(hub.provenance)

    def run_until(self, time: float) -> None:
        self.scheduler.run_until(time, supervisor=self.supervisor)

    def run(self) -> ClusterResult:
        self.run_until(float("inf"))
        return self.finalize()

    # Multiplexing hooks: the service orchestrator time-slices many
    # campaigns over one fleet by driving each ``run_until`` in bounded
    # increments, so it needs to read fleet progress without finalizing.

    @property
    def now(self) -> float:
        """Fleet-local virtual time: how far every runnable worker has
        been driven.  Killed workers pin this to their kill time until a
        supervisor revives them (an unsupervised kill is permanent, so
        their stopped clock is excluded)."""
        clocks = [
            worker.loop.clock.now
            for worker in self.workers
            if not (worker.killed and self.supervisor is None)
        ]
        return min(clocks, default=0.0)

    @property
    def horizon(self) -> float:
        return max(worker.loop.clock.horizon for worker in self.workers)

    @property
    def done(self) -> bool:
        """True once no worker can make further progress: each clock has
        expired, or the worker is dead with nobody to revive it."""
        return all(
            worker.loop.clock.expired()
            or (worker.killed and self.supervisor is None)
            for worker in self.workers
        )

    def finalize(self) -> ClusterResult:
        if hasattr(self.hub, "recover_all"):
            # Campaign teardown recovers any still-failed shard so the
            # final union reconciles every parked backlog entry.
            self.hub.recover_all(
                max(worker.loop.clock.now for worker in self.workers)
            )
        for worker in self.workers:
            worker.flush()
        worker_stats = [worker.loop.finalize() for worker in self.workers]
        merged = FuzzStats.merge(worker_stats)
        if self.tier is not None:
            # The shared tier's breaker is cluster-level state; workers
            # leave it zeroed so the merge cannot double-count trips.
            merged.breaker_trips = self.tier.service.stats.breaker_trips
            merged.breaker_state = self.tier.service.stats.breaker_state
        return ClusterResult(
            workers=len(self.workers),
            horizon=max(
                worker.loop.clock.horizon for worker in self.workers
            ),
            worker_stats=worker_stats,
            merged=merged,
            hub_edges=len(self.hub.coverage.edges),
            hub_blocks=len(self.hub.coverage.blocks),
            hub_timeline=list(self.hub.timeline),
            hub_stats=self.hub.stats,
            service_stats=(
                self.tier.service.stats if self.tier is not None else None
            ),
        )
