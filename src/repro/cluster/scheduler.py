"""Deterministic discrete-event scheduling of a fuzzing fleet.

Every worker owns a :class:`~repro.vclock.VirtualClock`; the scheduler
interleaves them by always stepping the worker whose clock is furthest
behind, breaking ties by worker id.  Because each step advances the
stepped worker's clock by the virtual cost of what it simulated, the
interleaving — and therefore every shared-state interaction (corpus-hub
syncs, shared serving-tier submissions) — is a pure function of the
campaign seed.  That is what makes N-worker cluster runs bit-reproducible
and checkpoint/resume exact.

Workers sync against the :class:`~repro.cluster.hub.CorpusHub` on a
fixed virtual cadence, paying ``CostModel.hub_sync`` per round-trip, so
corpus sharing has a cost and a propagation lag like the real syz-hub.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.fuzzer.loop import FuzzLoop, FuzzObservation, FuzzStats

from .hub import CorpusHub, HubStats
from .serving import SharedInferenceTier

__all__ = [
    "ClusterConfig",
    "ClusterFuzzer",
    "ClusterResult",
    "ClusterScheduler",
    "ClusterWorker",
]


@dataclass
class ClusterConfig:
    """Fleet-shape knobs of a cluster campaign."""

    workers: int = 4
    # Virtual seconds between a worker's hub syncs (10 virtual minutes
    # under the scaled cost model — syz-hub managers poll on the order
    # of minutes, not per-execution).
    sync_interval: float = 600.0
    # Cost charged per sync round-trip; None uses ``CostModel.hub_sync``.
    sync_cost: float | None = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"cluster needs at least 1 worker, got {self.workers}")
        if self.sync_interval <= 0:
            raise ValueError(
                f"sync_interval must be positive, got {self.sync_interval}"
            )


class ClusterWorker:
    """One fuzz loop plus its hub-sync bookkeeping."""

    def __init__(
        self,
        worker_id: int,
        loop: FuzzLoop,
        hub: CorpusHub,
        sync_interval: float = 600.0,
        sync_cost: float | None = None,
    ):
        self.worker_id = worker_id
        self.loop = loop
        self.hub = hub
        self.sync_interval = sync_interval
        self.sync_cost = (
            sync_cost if sync_cost is not None else loop.cost.hub_sync
        )
        self.next_sync = sync_interval
        # Hub epoch of the last pull; pulls are incremental on this.
        self.sync_epoch = 0
        # Corpus entries already offered to the hub (a prefix: pulled
        # entries are appended past this mark and never pushed back).
        self._synced_entries = 0

    def step(self) -> bool:
        """One scheduler quantum: a hub sync if one is due, otherwise a
        fuzz-loop iteration.  Returns False once the clock expired."""
        if self.loop.clock.expired():
            return False
        if self.loop.clock.now >= self.next_sync:
            self.sync()
        else:
            self.loop._iterate()
        return True

    def sync(self) -> None:
        """One hub round-trip: push fresh corpus entries, pull the rest
        of the fleet's, merge their coverage, pay the sync cost."""
        loop = self.loop
        start = loop.clock.now
        fresh = loop.corpus.entries[self._synced_entries:]
        accepted = self.hub.push(self.worker_id, fresh, loop.clock.now)
        pulled, self.sync_epoch = self.hub.pull(
            self.worker_id, self.sync_epoch
        )
        for entry in pulled:
            loop.accumulated.merge(entry.coverage)
            loop.corpus.add(
                entry.program, entry.coverage,
                signal=entry.signal, hints=entry.hints,
            )
        self._synced_entries = len(loop.corpus.entries)
        loop.stats.hub_syncs += 1
        loop.stats.hub_pushed += accepted
        loop.stats.hub_pulled += len(pulled)
        loop.clock.advance(self.sync_cost, "hub_sync")
        if loop.observer is not None:
            # Fleet-union coverage as a gauge: the scaling claim is a
            # trajectory, so the time-series needs it, not just the
            # final number.
            union = self.hub.coverage
            loop.observer.registry.gauge("hub.edges").set(len(union.edges))
            loop.observer.registry.gauge("hub.blocks").set(
                len(union.blocks)
            )
            loop.observer.sample(loop.clock.now)
        if loop.tracer is not None:
            loop.tracer.record(
                loop.track, "hub_sync", start, loop.clock.now,
                cat="hub_sync", pushed=accepted, pulled=len(pulled),
            )
        while self.next_sync <= loop.clock.now:
            self.next_sync += self.sync_interval

    def flush(self) -> None:
        """Final push at the horizon (no pull, no time charge) so the
        hub union reflects everything the fleet found."""
        fresh = self.loop.corpus.entries[self._synced_entries:]
        accepted = self.hub.push(self.worker_id, fresh, self.loop.clock.now)
        self._synced_entries = len(self.loop.corpus.entries)
        self.loop.stats.hub_pushed += accepted


class ClusterScheduler:
    """Min-heap event loop over (virtual-time, worker-id)."""

    def __init__(self, workers: list[ClusterWorker]):
        self.workers = sorted(workers, key=lambda worker: worker.worker_id)
        ids = [worker.worker_id for worker in self.workers]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate worker ids: {ids}")
        self._by_id = {worker.worker_id: worker for worker in self.workers}

    def run_until(self, time: float) -> None:
        """Step workers in deterministic order until every clock reaches
        ``time`` (or its horizon)."""
        heap: list[tuple[float, int]] = []
        for worker in self.workers:
            clock = worker.loop.clock
            if not clock.expired() and clock.now < time:
                heapq.heappush(heap, (clock.now, worker.worker_id))
        while heap:
            _, worker_id = heapq.heappop(heap)
            worker = self._by_id[worker_id]
            clock = worker.loop.clock
            if clock.expired() or clock.now >= time:
                continue
            worker.step()
            if not clock.expired() and clock.now < time:
                heapq.heappush(heap, (clock.now, worker_id))


@dataclass
class ClusterResult:
    """What a cluster campaign reports for one fleet size."""

    workers: int
    horizon: float
    worker_stats: list[FuzzStats]
    merged: FuzzStats
    hub_edges: int
    hub_blocks: int
    hub_timeline: list[FuzzObservation] = field(default_factory=list)
    hub_stats: HubStats = field(default_factory=HubStats)
    service_stats: object | None = None

    @property
    def final_edges(self) -> int:
        """Fleet-union edge coverage (the hub's, after the final flush)."""
        return self.hub_edges

    @property
    def final_blocks(self) -> int:
        return self.hub_blocks


class ClusterFuzzer:
    """Facade tying workers, hub, scheduler, and serving tier together."""

    def __init__(
        self,
        workers: list[ClusterWorker],
        hub: CorpusHub,
        tier: SharedInferenceTier | None = None,
        observer=None,
    ):
        self.workers = sorted(workers, key=lambda worker: worker.worker_id)
        self.hub = hub
        self.tier = tier
        self.observer = observer
        self.scheduler = ClusterScheduler(self.workers)

    def run_until(self, time: float) -> None:
        self.scheduler.run_until(time)

    def run(self) -> ClusterResult:
        self.run_until(float("inf"))
        return self.finalize()

    def finalize(self) -> ClusterResult:
        for worker in self.workers:
            worker.flush()
        worker_stats = [worker.loop.finalize() for worker in self.workers]
        merged = FuzzStats.merge(worker_stats)
        if self.tier is not None:
            # The shared tier's breaker is cluster-level state; workers
            # leave it zeroed so the merge cannot double-count trips.
            merged.breaker_trips = self.tier.service.stats.breaker_trips
            merged.breaker_state = self.tier.service.stats.breaker_state
        return ClusterResult(
            workers=len(self.workers),
            horizon=max(
                worker.loop.clock.horizon for worker in self.workers
            ),
            worker_stats=worker_stats,
            merged=merged,
            hub_edges=len(self.hub.coverage.edges),
            hub_blocks=len(self.hub.coverage.blocks),
            hub_timeline=list(self.hub.timeline),
            hub_stats=self.hub.stats,
            service_stats=(
                self.tier.service.stats if self.tier is not None else None
            ),
        )
