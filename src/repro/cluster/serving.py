"""One serving tier, many workers.

The paper's deployment funnels every fuzzing VM's localization queries
into a central GPU pool (§3.4, §5.5).  :class:`SharedInferenceTier`
reproduces that topology: a single (typically batching) inference
service owned by the cluster, with a per-worker
:class:`WorkerServiceView` that a :class:`~repro.snowplow.fuzzer.SnowplowLoop`
uses exactly like a private service.  The view tags submissions with its
worker id; when any worker polls, the tier drains everything the shared
service completed and routes each result to its owner's mailbox, so a
prediction is never delivered to the wrong loop no matter how the
scheduler interleaves polls.

Views deliberately have no ``state_dict``/``restore``: the shared
service is checkpointed once with the cluster, not once per worker.
"""

from __future__ import annotations

from repro.pmm.serve import InferenceService

__all__ = ["SharedInferenceTier", "WorkerServiceView"]


class SharedInferenceTier:
    """Routes one shared :class:`InferenceService` to many workers."""

    def __init__(self, service: InferenceService):
        self.service = service
        self._completed: dict[int, list] = {}
        self._failures: dict[int, list] = {}

    def view(self, worker_id: int) -> "WorkerServiceView":
        return WorkerServiceView(self, worker_id)

    def reset(self) -> None:
        """Drop undelivered mailboxes (checkpoint restore: anything not
        yet delivered died with the in-flight requests)."""
        self._completed.clear()
        self._failures.clear()

    def _distribute(self, now: float) -> None:
        for payload, result in self.service.poll(now):
            worker_id, query = payload
            self._completed.setdefault(worker_id, []).append((query, result))
        for payload, reason in self.service.drain_failures():
            worker_id, query = payload
            self._failures.setdefault(worker_id, []).append((query, reason))


class WorkerServiceView:
    """A worker's handle on the shared tier (the InferenceService
    surface a fuzz loop consumes: submit/poll/drain_failures)."""

    def __init__(self, tier: SharedInferenceTier, worker_id: int):
        self.tier = tier
        self.worker_id = worker_id

    def submit(self, query, now: float) -> float | None:
        return self.tier.service.submit((self.worker_id, query), now)

    def poll(self, now: float) -> list:
        self.tier._distribute(now)
        return self.tier._completed.pop(self.worker_id, [])

    def drain_failures(self) -> list:
        return self.tier._failures.pop(self.worker_id, [])

    def pending_count(self) -> int:
        return self.tier.service.pending_count()

    @property
    def stats(self):
        return self.tier.service.stats
