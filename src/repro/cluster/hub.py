"""The corpus hub: a syz-hub analogue for multi-worker campaigns.

Real Syzkaller fleets share progress through syz-hub: every manager
periodically connects, uploads the corpus entries it found since its
last visit, and downloads what the rest of the fleet found meanwhile.
:class:`CorpusHub` reproduces that protocol over virtual time.  Pushes
dedup by **coverage signature** (the entry's edge set frozen as an
identity) and by marginal value (an entry whose edges the hub already
holds in union is a duplicate even under a novel signature), so the hub
corpus stays minimal no matter how many workers rediscover the same
behaviour.  Pulls are incremental: each worker remembers the hub epoch
of its last sync and receives only entries accepted after it, excluding
its own uploads.

The hub also keeps the fleet-wide coverage union and a timeline of when
that union grew — the cluster-level coverage-over-time curve that
scaling campaigns report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzzer.loop import FuzzObservation
from repro.kernel.coverage import Coverage
from repro.observe import MetricsRegistry
from repro.observe.provenance import UNION, LineageRecord, ProvenanceLog
from repro.syzlang.parser import parse_program, serialize_program
from repro.syzlang.program import Program

__all__ = ["CorpusHub", "HubEntry", "HubStats"]


@dataclass
class HubEntry:
    """One corpus entry as the hub stores it."""

    program: Program
    coverage: Coverage
    signal: int
    hints: frozenset[int]
    # Worker that uploaded the entry; pulls never echo a worker's own
    # uploads back at it.
    origin: int
    # Hub epoch at acceptance; pulls are incremental on this.
    epoch: int
    # Lineage record carried from the uploading worker (None when the
    # uploader tracked no lineage).
    lineage: LineageRecord | None = None


# Every HubStats counter: a ``hub.<name>`` registry series.  The first
# five are the core sync protocol; the rest are the fleet-resilience
# accounting paths (partition retries/drops, bloom pre-dedup, shard
# failover) so nothing fails silently.
_HUB_COUNTERS = (
    "pushes", "accepted", "duplicates", "pulls", "pulled_entries",
    "sync_failures", "dropped_entries", "bloom_skips",
    "lost_entries", "failovers", "reconciled",
    # Entries dropped with their lineage booked (``superseded_by``)
    # instead of silently discarded: push-dedup collisions and
    # rediscovered failover-backlog entries.
    "subsumed_entries",
)


class HubStats:
    """Hub-side sync accounting (views over ``hub.*`` registry series)."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        labels: dict | None = None,
        **counters,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = dict(labels or {})
        self._instruments = {
            name: self.registry.counter(f"hub.{name}", **self.labels)
            for name in _HUB_COUNTERS
        }
        for name, value in counters.items():
            if name not in self._instruments:
                raise TypeError(f"HubStats got an unexpected counter {name!r}")
            self._instruments[name].set(value)

    def counter_values(self) -> dict[str, int]:
        return {
            name: instrument.value
            for name, instrument in self._instruments.items()
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, HubStats):
            return NotImplemented
        return self.counter_values() == other.counter_values()

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}={value}"
            for name, value in self.counter_values().items()
        )
        return f"HubStats({body})"


def _hub_counter_property(name: str) -> property:
    def _get(self):
        return self._instruments[name].value

    def _set(self, value):
        self._instruments[name].set(value)

    return property(_get, _set, doc=f"view over the hub.{name} series")


for _counter_name in _HUB_COUNTERS:
    setattr(HubStats, _counter_name, _hub_counter_property(_counter_name))
del _counter_name


class CorpusHub:
    """Central corpus exchange with signature dedup and sync epochs."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.entries: list[HubEntry] = []
        self.coverage = Coverage()
        self.epoch = 0
        self.stats = HubStats(registry=registry)
        # Fleet-union coverage growth, stamped at push time.
        self.timeline: list[FuzzObservation] = []
        self._signatures: set[frozenset] = set()
        # The hub's own lineage ledger: every offered record is kept
        # (accepted or subsumed), so fleet-level explain queries resolve
        # entries a worker found but the hub deduped away.
        self.provenance = ProvenanceLog()
        # signature -> entry id that owns it, for naming the superseder
        # when a later offer collides.
        self._signature_owner: dict[frozenset, str] = {}

    def _subsume(self, lineage, signature: frozenset) -> None:
        """Book a dedup drop against the dropped entry's lineage.

        A re-offer of the *same* content (a worker pushing back what it
        pulled, replication echo) is a plain duplicate, not a
        subsumption; only a genuinely different entry losing to the
        signature owner (or to the hub's coverage union) is booked.
        """
        if lineage is None:
            return
        owner = self._signature_owner.get(signature)
        if owner == lineage.entry_id:
            return
        self.stats.subsumed_entries += 1
        self.provenance.record(lineage)
        self.provenance.supersede(
            lineage.entry_id, owner if owner is not None else UNION
        )

    # ----- the sync protocol -----

    def push(self, worker_id: int, entries, now: float) -> int:
        """Offer corpus entries; returns how many the hub accepted.

        ``entries`` is any iterable of corpus-entry-like objects
        (``program``/``coverage``/``signal``/``hints``).  An entry is a
        duplicate if its coverage signature was seen before or if it
        adds no edge to the hub union.
        """
        accepted = 0
        for entry in entries:
            self.stats.pushes += 1
            signature = frozenset(entry.coverage.edges)
            lineage = getattr(entry, "lineage", None)
            if (
                signature in self._signatures
                or not entry.coverage.new_edges(self.coverage)
            ):
                self.stats.duplicates += 1
                self._subsume(lineage, signature)
                continue
            if lineage is not None:
                lineage = self.provenance.record(lineage)
                self._signature_owner[signature] = lineage.entry_id
            self._signatures.add(signature)
            self.epoch += 1
            self.entries.append(
                HubEntry(
                    program=entry.program.clone(),
                    coverage=entry.coverage.copy(),
                    signal=entry.signal,
                    hints=frozenset(entry.hints),
                    origin=worker_id,
                    epoch=self.epoch,
                    lineage=lineage,
                )
            )
            self.coverage.merge(entry.coverage)
            self.timeline.append(
                FuzzObservation(
                    time=now,
                    edges=len(self.coverage.edges),
                    blocks=len(self.coverage.blocks),
                    executions=0,
                )
            )
            accepted += 1
            self.stats.accepted += 1
        return accepted

    def pull(
        self, worker_id: int, since_epoch: int
    ) -> tuple[list[HubEntry], int]:
        """Entries accepted after ``since_epoch`` from other workers,
        plus the hub epoch to remember for the next sync."""
        self.stats.pulls += 1
        pulled = [
            entry
            for entry in self.entries
            if entry.epoch > since_epoch and entry.origin != worker_id
        ]
        self.stats.pulled_entries += len(pulled)
        return pulled, self.epoch

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (coverage/signatures rebuild on
        restore from the per-entry traces)."""
        return {
            "epoch": self.epoch,
            "entries": [
                {
                    "program": serialize_program(entry.program),
                    "traces": [
                        list(trace) for trace in entry.coverage.call_traces
                    ],
                    "signal": entry.signal,
                    "hints": sorted(entry.hints),
                    "origin": entry.origin,
                    "epoch": entry.epoch,
                    "lineage": (
                        entry.lineage.to_dict()
                        if entry.lineage is not None else None
                    ),
                }
                for entry in self.entries
            ],
            "timeline": [
                [obs.time, obs.edges, obs.blocks, obs.executions]
                for obs in self.timeline
            ],
            "stats": self.stats.counter_values(),
            "provenance": self.provenance.state_dict(),
        }

    def restore(self, state: dict, table) -> None:
        """Rebuild the hub from :meth:`state_dict` output against the
        kernel's syscall ``table``."""
        self.entries.clear()
        self.coverage = Coverage()
        self._signatures.clear()
        self._signature_owner.clear()
        self.epoch = int(state["epoch"])
        self.provenance.restore(
            state.get("provenance", ProvenanceLog().state_dict())
        )
        for entry_state in state["entries"]:
            coverage = Coverage.from_traces(entry_state["traces"])
            lineage_state = entry_state.get("lineage")
            lineage = None
            if lineage_state is not None:
                # Point at the ledger's copy so the record identity the
                # live hub had (entry and ledger sharing one object)
                # survives the round-trip.
                lineage = self.provenance.record(
                    LineageRecord.from_dict(lineage_state)
                )
            signature = frozenset(coverage.edges)
            self.entries.append(
                HubEntry(
                    program=parse_program(entry_state["program"], table),
                    coverage=coverage,
                    signal=int(entry_state["signal"]),
                    hints=frozenset(entry_state["hints"]),
                    origin=int(entry_state["origin"]),
                    epoch=int(entry_state["epoch"]),
                    lineage=lineage,
                )
            )
            self._signatures.add(signature)
            if lineage is not None:
                self._signature_owner[signature] = lineage.entry_id
            self.coverage.merge(coverage)
        self.timeline = [
            FuzzObservation(
                time=float(time), edges=int(edges), blocks=int(blocks),
                executions=int(executions),
            )
            for time, edges, blocks, executions in state["timeline"]
        ]
        # Restore counters in place so the stats view keeps pointing at
        # the registry series it was built over.
        for key, value in state["stats"].items():
            setattr(self.stats, key, int(value))
