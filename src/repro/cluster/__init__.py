"""repro.cluster: a deterministic multi-worker fuzzing cluster.

The paper runs Snowplow as a fleet: many fuzzing VMs sharing a corpus
(via a syz-hub analogue) and a central batched GPU serving tier (§3.4,
§5.5).  This package reproduces that topology over virtual time —
bit-reproducibly, so scaling experiments and checkpoint/resume stay
exact science rather than wall-clock accidents.  The resilience layer
(:mod:`~repro.cluster.supervise`, :mod:`~repro.cluster.shards`) keeps
the fleet making coverage progress while individual workers hang,
crash, get partitioned from the hub, or lose a hub shard.
"""

from repro.cluster.hub import CorpusHub, HubEntry, HubStats
from repro.cluster.scheduler import (
    ClusterConfig,
    ClusterFuzzer,
    ClusterResult,
    ClusterScheduler,
    ClusterWorker,
)
from repro.cluster.serving import SharedInferenceTier, WorkerServiceView
from repro.cluster.shards import BloomFilter, ShardedHub, signature_digest
from repro.cluster.supervise import FleetSupervisor

__all__ = [
    "BloomFilter",
    "ClusterConfig",
    "ClusterFuzzer",
    "ClusterResult",
    "ClusterScheduler",
    "ClusterWorker",
    "CorpusHub",
    "FleetSupervisor",
    "HubEntry",
    "HubStats",
    "SharedInferenceTier",
    "ShardedHub",
    "WorkerServiceView",
    "signature_digest",
]
