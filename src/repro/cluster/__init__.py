"""repro.cluster: a deterministic multi-worker fuzzing cluster.

The paper runs Snowplow as a fleet: many fuzzing VMs sharing a corpus
(via a syz-hub analogue) and a central batched GPU serving tier (§3.4,
§5.5).  This package reproduces that topology over virtual time —
bit-reproducibly, so scaling experiments and checkpoint/resume stay
exact science rather than wall-clock accidents.
"""

from repro.cluster.hub import CorpusHub, HubEntry, HubStats
from repro.cluster.scheduler import (
    ClusterConfig,
    ClusterFuzzer,
    ClusterResult,
    ClusterScheduler,
    ClusterWorker,
)
from repro.cluster.serving import SharedInferenceTier, WorkerServiceView

__all__ = [
    "ClusterConfig",
    "ClusterFuzzer",
    "ClusterResult",
    "ClusterScheduler",
    "ClusterWorker",
    "CorpusHub",
    "HubEntry",
    "HubStats",
    "SharedInferenceTier",
    "WorkerServiceView",
]
