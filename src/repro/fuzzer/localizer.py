"""Argument-mutation localizers.

A localizer answers the *where* question of Figure 1: given the test to
mutate (and optionally its kernel coverage and a desired target), pick
which argument(s) to mutate.  The fuzzer ships two heuristic localizers;
the learned one (PMM) lives in :mod:`repro.snowplow.fuzzer` and plugs in
through the same interface.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.kernel.coverage import Coverage
from repro.syzlang.program import ArgPath, Program

__all__ = ["Localizer", "RandomLocalizer", "SyzkallerLocalizer"]


class Localizer(Protocol):
    """The localization interface (Figure 1's ``localizer`` function)."""

    def localize(
        self,
        program: Program,
        coverage: Coverage | None,
        targets: set[int] | None,
        rng: np.random.Generator,
    ) -> list[ArgPath]:
        """Argument paths to mutate, most promising first."""
        ...


class RandomLocalizer:
    """Uniformly random choice of K distinct argument sites.

    This is the paper's ``Rand.K`` baseline (Table 1, K=8).
    """

    def __init__(self, k: int = 8):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    def localize(self, program, coverage, targets, rng) -> list[ArgPath]:
        """K distinct argument sites chosen uniformly at random."""
        sites = program.mutation_sites()
        if not sites:
            return []
        count = min(self.k, len(sites))
        picks = rng.permutation(len(sites))[:count]
        return [sites[int(pick)] for pick in picks]


class SyzkallerLocalizer:
    """Syzkaller's default heuristic: target-agnostic, arity-biased.

    Per §2, the default localizer "ignores the target, and ... randomly
    picks an argument from the system call with the largest arity": calls
    are weighted by how many mutable sites they expose, then one site of
    the chosen call is picked uniformly.
    """

    def __init__(self, k: int = 1):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    def localize(self, program, coverage, targets, rng) -> list[ArgPath]:
        """Arity-biased site choice (Syzkaller's default heuristic)."""
        sites = program.mutation_sites()
        if not sites:
            return []
        by_call: dict[int, list[ArgPath]] = {}
        for site in sites:
            by_call.setdefault(site.call_index, []).append(site)
        call_indices = sorted(by_call)
        weights = np.array(
            [len(by_call[index]) for index in call_indices], dtype=float
        )
        weights /= weights.sum()
        picked: list[ArgPath] = []
        for _ in range(self.k):
            call_index = call_indices[int(rng.choice(len(call_indices), p=weights))]
            call_sites = by_call[call_index]
            picked.append(call_sites[int(rng.integers(len(call_sites)))])
        # De-duplicate while preserving order.
        unique: list[ArgPath] = []
        seen: set[ArgPath] = set()
        for site in picked:
            if site not in seen:
                seen.add(site)
                unique.append(site)
        return unique
