"""Mutation types and the argument instantiator.

The instantiator implements Syzkaller's per-type "palette" of argument
mutations (§2): randomize a flag word, replace an integer with an
interesting constant, resize or rewrite a buffer, re-point a resource,
deliberately desynchronise a length field, and so on.  Localization (the
*where*) is someone else's job — see :mod:`repro.fuzzer.localizer` — the
instantiator only decides *how* to rewrite the value at a given path.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import MutationError
from repro.syzlang.generator import ProgramGenerator
from repro.syzlang.program import (
    ArgPath,
    ArrayValue,
    BufferValue,
    IntValue,
    Program,
    PtrValue,
    ResourceValue,
    StructValue,
    Value,
)
from repro.syzlang.types import (
    BufferKind,
    BufferType,
    FlagsType,
    IntType,
    LenType,
    ResourceType,
)

__all__ = ["MutationType", "ArgumentInstantiator"]


class MutationType(enum.Enum):
    """The high-level mutation palette (Figure 1's type selection)."""

    ARGUMENT_MUTATION = "argument_mutation"
    SYSCALL_INSERTION = "syscall_insertion"
    SYSCALL_REMOVAL = "syscall_removal"


class ArgumentInstantiator:
    """Rewrites the argument value at a chosen path.

    ``hints`` are comparison operands observed while executing the base
    test (KCOV_CMP feedback): Syzkaller replaces integers with operands
    the kernel actually compared against, which is how exact-match
    branch conditions become flippable in practice.
    """

    def __init__(self, generator: ProgramGenerator, rng: np.random.Generator):
        self.generator = generator
        self.rng = rng

    def instantiate(
        self,
        program: Program,
        path: ArgPath,
        hints: set[int] | None = None,
        hint_prob: float = 0.30,
    ) -> None:
        """Mutate ``program`` in place at ``path``.

        Raises :class:`MutationError` if the path does not address a
        mutable value.
        """
        value = program.get(path)
        ty = value.ty
        if isinstance(value, IntValue) and isinstance(ty, FlagsType):
            value.value = self._mutate_flags(ty, value.value)
        elif isinstance(value, IntValue) and isinstance(ty, LenType):
            value.value = self._mutate_len(program, path, value.value, hints)
        elif isinstance(value, IntValue) and isinstance(ty, IntType):
            value.value = self._mutate_int(ty, value.value, hints, hint_prob)
        elif isinstance(value, BufferValue):
            value.data = self._mutate_buffer(ty, value.data)
        elif isinstance(value, ResourceValue):
            self._mutate_resource(program, path, value)
        else:
            raise MutationError(
                f"value at {path} ({type(value).__name__}) is not mutable"
            )

    # ----- per-type strategies -----

    def _pick_hint(self, ty: IntType, hints: set[int]) -> int | None:
        usable = [
            h for h in hints if ty.minimum <= h <= ty.upper_bound
        ]
        if not usable:
            return None
        usable.sort()
        return int(usable[int(self.rng.integers(len(usable)))])

    def _mutate_int(
        self, ty: IntType, old: int, hints: set[int] | None = None,
        hint_prob: float = 0.30,
    ) -> int:
        roll = self.rng.random()
        if hints and roll < hint_prob:
            hinted = self._pick_hint(ty, hints)
            if hinted is not None:
                if ty.align > 1:
                    hinted -= hinted % ty.align
                return max(hinted, ty.minimum)
        if ty.interesting and roll < 0.45:
            # "Replace an integer with a constant": comparison-guided
            # constants are the most productive integer strategy.
            return int(ty.interesting[int(self.rng.integers(len(ty.interesting)))])
        if roll < 0.55:
            delta = int(self.rng.integers(1, 9))
            sign = 1 if self.rng.random() < 0.5 else -1
            new = old + sign * delta
        elif roll < 0.75:
            new = 1 << int(self.rng.integers(0, ty.bits))
        elif roll < 0.85:
            new = old ^ (1 << int(self.rng.integers(0, ty.bits)))
        else:
            value = IntValue(ty, 0)
            value.value = self.generator._random_int(ty)
            new = value.value
        new = min(max(new, ty.minimum), ty.upper_bound)
        if ty.align > 1:
            new -= new % ty.align
            new = max(new, ty.minimum)
        return new

    def _mutate_flags(self, ty: FlagsType, old: int) -> int:
        bits = [bit for _, bit in ty.flags if bit]
        if not bits:
            return old
        roll = self.rng.random()
        if roll < 0.35:
            # Toggle one flag.
            return old ^ bits[int(self.rng.integers(len(bits)))]
        if roll < 0.65:
            # Set a fresh combination of 1-3 flags.
            count = int(self.rng.integers(1, min(3, len(bits)) + 1))
            picks = self.rng.permutation(len(bits))[:count]
            new = 0
            for pick in picks:
                new |= bits[int(pick)]
            return new
        if roll < 0.80:
            return ty.all_bits()
        if roll < 0.90:
            return 0
        return int(self.rng.integers(0, 1 << min(ty.bits, 16)))

    def _mutate_len(
        self,
        program: Program,
        path: ArgPath,
        old: int,
        hints: set[int] | None = None,
    ) -> int:
        roll = self.rng.random()
        if hints and roll < 0.20:
            usable = sorted(h for h in hints if 0 <= h < 1 << 32)
            if usable:
                hinted = int(usable[int(self.rng.integers(len(usable)))])
                # Exceed the compared bound: length checks are usually
                # "len > limit" guards.
                return hinted + 1
        if roll < 0.35:
            # Deliberate desync: a length larger than the real buffer —
            # the pattern that triggers the ATA out-of-bounds write.
            return 1 << int(self.rng.integers(4, 17))
        if roll < 0.55:
            return 0
        if roll < 0.75:
            return max(0, old + int(self.rng.integers(-4, 5)))
        # Re-synchronise with the sibling buffer.
        program.resolve_len_fields()
        refreshed = program.get(path)
        assert isinstance(refreshed, IntValue)
        return refreshed.value

    def _mutate_buffer(self, ty: BufferType, old: bytes) -> bytes:
        roll = self.rng.random()
        if ty.values and roll < 0.30:
            return bytes(ty.values[int(self.rng.integers(len(ty.values)))])
        if roll < 0.60:
            # Resize across the full permitted range (bug guards often
            # test extreme lengths random generation never produces).
            length = int(self.rng.integers(ty.min_len, ty.max_len + 1))
            if length <= len(old):
                return old[:length]
            pad = self.rng.integers(0, 256, size=length - len(old), dtype=np.uint8)
            return old + bytes(pad)
        if roll < 0.85 and old:
            data = bytearray(old)
            index = int(self.rng.integers(len(data)))
            data[index] = int(self.rng.integers(256))
            return bytes(data)
        length = int(self.rng.integers(ty.min_len, min(ty.max_len, 32) + 1))
        return bytes(self.rng.integers(0, 256, size=length, dtype=np.uint8))

    def _mutate_resource(
        self, program: Program, path: ArgPath, value: ResourceValue
    ) -> None:
        assert isinstance(value.ty, ResourceType)
        needed = value.ty.resource
        candidates: list[int | None] = [None]
        for index in range(path.call_index):
            produced = program.calls[index].spec.produces
            if produced is not None and produced.compatible_with(needed):
                candidates.append(index)
        choice = candidates[int(self.rng.integers(len(candidates)))]
        value.producer = choice
