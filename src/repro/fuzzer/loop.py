"""The main fuzzing loop (Figure 1's ``fuzz_corpus``).

The loop runs against the virtual clock: every mutation, execution, and
VM reset charges its cost, and coverage is sampled on a fixed virtual
cadence so campaigns produce the coverage-over-time series of Figure 6.
``FuzzLoop`` is the Syzkaller baseline; Snowplow subclasses it to route
argument localization through asynchronous PMM inference.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignError
from repro.faults import FaultInjector
from repro.fuzzer.corpus import Corpus, CorpusEntry
from repro.fuzzer.crash import CrashTriage, TriagedCrash
from repro.fuzzer.engine import MutationEngine, MutationOutcome, MutationType
from repro.kernel.build import Kernel
from repro.kernel.coverage import Coverage
from repro.kernel.executor import Executor
from repro.observe import LabeledCounterMap, MetricsRegistry, Observer
from repro.observe.provenance import (
    SEED_ENGINE,
    LineageRecord,
    ProvenanceLog,
    entry_id_for,
)
from repro.syzlang.program import Program
from repro.vclock import CostModel, VirtualClock

__all__ = ["FuzzLoop", "FuzzObservation", "FuzzStats"]

# A transient corpus-store write failure is retried at most this often
# before the write is forced through (the store is durable, just flaky).
_CORPUS_WRITE_ATTEMPTS = 5


@dataclass(frozen=True)
class FuzzObservation:
    """One point of the coverage-over-time series."""

    time: float
    edges: int
    blocks: int
    executions: int


# Every FuzzStats counter, in declaration order.  Each one is a
# ``fuzz.<name>`` series in the backing metrics registry.
_FUZZ_COUNTERS = (
    "executions",
    "corpus_size",
    # --- resilience accounting (fault-injected campaigns) ---
    # Hung calls the watchdog converted into VM restarts.
    "exec_timeouts",
    "vm_restarts",
    # Inference requests submitted to / completed by the serving tier.
    "inference_submitted",
    "inference_completed",
    # Inference requests lost to timeouts/slot crashes (incl. in-flight
    # predictions dropped by a checkpoint resume).
    "inference_failures",
    # Mutation queries routed to the heuristic localizer because the
    # serving tier rejected the submission (queue full / breaker open).
    "heuristic_fallbacks",
    # Transient corpus-store write failures that were retried.
    "corpus_write_retries",
    # Circuit-breaker visibility, synced from InferenceStats at the end
    # of a Snowplow run.
    "breaker_trips",
    # Times this run was restored from a campaign checkpoint.
    "resumes",
    # Frontier targets dropped because static analysis proved them
    # unreachable (repro.analyze; only with an attached analysis).
    "dead_targets_skipped",
    # --- cluster accounting (repro.cluster) ---
    # Corpus-hub sync round-trips, and entries pushed to / pulled from
    # the hub by this worker.
    "hub_syncs",
    "hub_pushed",
    "hub_pulled",
)

# Process incidents rather than simulated work: excluded from canonical
# metric exports so kill+resume runs export byte-identically.
_DIAGNOSTIC_COUNTERS = frozenset({"resumes"})


class FuzzStats:
    """Everything a campaign reports about one fuzzer run.

    Counter attributes keep the original dataclass surface
    (``stats.executions += 1``, keyword construction, ``merge``) but are
    thin views over ``fuzz.*`` series in a
    :class:`~repro.observe.MetricsRegistry` — pass a shared registry
    (plus ``labels={"worker": i}`` in a fleet) and the campaign's
    exported metrics JSON carries every per-worker series with no second
    bookkeeping path.  The coverage timeline, crash list, and breaker
    state stay plain attributes: they are structured records, not
    scalars.
    """

    # Counters that sum when runs are merged (everything except the
    # timeline, crashes, mutations, and breaker state).
    _SUMMED = _FUZZ_COUNTERS

    def __init__(
        self,
        observations: list[FuzzObservation] | None = None,
        crashes: list[TriagedCrash] | None = None,
        mutations: dict[str, int] | None = None,
        breaker_state: str = "closed",
        registry: MetricsRegistry | None = None,
        labels: dict | None = None,
        **counters,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = dict(labels or {})
        self._instruments = {
            name: self.registry.counter(
                f"fuzz.{name}",
                diagnostic=name in _DIAGNOSTIC_COUNTERS,
                **self.labels,
            )
            for name in _FUZZ_COUNTERS
        }
        self._mutations = LabeledCounterMap(
            self.registry, "fuzz.mutations", "type", self.labels
        )
        self.observations = list(observations) if observations else []
        self.crashes = list(crashes) if crashes else []
        self.breaker_state = breaker_state
        if mutations:
            self._mutations.replace(dict(mutations))
        for name, value in counters.items():
            if name not in self._instruments:
                raise TypeError(
                    f"FuzzStats got an unexpected counter {name!r}"
                )
            self._instruments[name].set(value)

    @property
    def mutations(self):
        """Per-mutation-type tally (``fuzz.mutations{type=...}`` view)."""
        return self._mutations

    @mutations.setter
    def mutations(self, mapping) -> None:
        self._mutations.replace(dict(mapping))

    def counter_values(self) -> dict[str, int]:
        return {
            name: instrument.value
            for name, instrument in self._instruments.items()
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, FuzzStats):
            return NotImplemented
        return (
            self.counter_values() == other.counter_values()
            and dict(self.mutations) == dict(other.mutations)
            and self.observations == other.observations
            and self.crashes == other.crashes
            and self.breaker_state == other.breaker_state
        )

    def __repr__(self) -> str:
        nonzero = ", ".join(
            f"{name}={value}"
            for name, value in self.counter_values().items()
            if value
        )
        return f"FuzzStats({nonzero})"

    @property
    def final_edges(self) -> int:
        """Edge coverage at the end of the run."""
        return self.observations[-1].edges if self.observations else 0

    @property
    def final_blocks(self) -> int:
        """Block coverage at the end of the run."""
        return self.observations[-1].blocks if self.observations else 0

    def signature(self) -> tuple:
        """A hashable digest of everything the campaign *computed*.

        Counts the simulated work — canonical counters, mutation tally,
        crash set, and the full coverage timeline — while excluding
        process incidents (the diagnostic ``resumes`` counter), so two
        replays of the same campaign compare equal even when one of them
        was resumed from a checkpoint.  This is the single-worker
        counterpart of :meth:`repro.cluster.ClusterResult.signature`:
        the standalone-vs-service isolation gate compares exactly this.
        """
        return (
            tuple(
                (name, value)
                for name, value in sorted(self.counter_values().items())
                if name not in _DIAGNOSTIC_COUNTERS
            ),
            tuple(sorted(dict(self.mutations).items())),
            tuple(
                (crash.signature, crash.is_new) for crash in self.crashes
            ),
            self.breaker_state,
            tuple(
                (obs.time, obs.edges, obs.blocks, obs.executions)
                for obs in self.observations
            ),
        )

    def time_to_edges(self, edges: int) -> float | None:
        """First virtual time at which coverage reached ``edges``."""
        for observation in self.observations:
            if observation.edges >= edges:
                return observation.time
        return None

    @classmethod
    def merge(cls, runs: list["FuzzStats"]) -> "FuzzStats":
        """Aggregate several (e.g. per-worker) runs into one ledger.

        Counters sum; mutation tallies sum key-wise; crashes concatenate
        with per-signature dedup; the coverage timelines merge onto the
        union of their sample times, taking at each instant the **best
        coverage any run holds** (with hub syncing this envelope tracks
        the fleet union up to one sync interval of lag) and the **sum of
        executions**.  ``time_to_edges`` then reads naturally off the
        merged timeline.
        """
        merged = cls()
        if not runs:
            return merged
        for stats in runs:
            for counter in cls._SUMMED:
                setattr(
                    merged, counter,
                    getattr(merged, counter) + getattr(stats, counter),
                )
            for name, count in stats.mutations.items():
                merged.mutations[name] = merged.mutations.get(name, 0) + count
        for rank in ("open", "half_open"):
            if any(stats.breaker_state == rank for stats in runs):
                merged.breaker_state = rank
                break
        seen_crashes: set[str] = set()
        for stats in runs:
            for crash in stats.crashes:
                if crash.signature not in seen_crashes:
                    seen_crashes.add(crash.signature)
                    merged.crashes.append(crash)
        times = sorted(
            {obs.time for stats in runs for obs in stats.observations}
        )
        cursors = [0] * len(runs)
        latest: list[FuzzObservation | None] = [None] * len(runs)
        for time in times:
            for index, stats in enumerate(runs):
                series = stats.observations
                while (
                    cursors[index] < len(series)
                    and series[cursors[index]].time <= time
                ):
                    latest[index] = series[cursors[index]]
                    cursors[index] += 1
            merged.observations.append(
                FuzzObservation(
                    time=time,
                    edges=max(
                        (obs.edges for obs in latest if obs is not None),
                        default=0,
                    ),
                    blocks=max(
                        (obs.blocks for obs in latest if obs is not None),
                        default=0,
                    ),
                    executions=sum(
                        obs.executions for obs in latest if obs is not None
                    ),
                )
            )
        return merged


def _counter_property(name: str) -> property:
    def _get(self):
        return self._instruments[name].value

    def _set(self, value):
        self._instruments[name].set(value)

    return property(_get, _set, doc=f"view over the fuzz.{name} series")


for _counter_name in _FUZZ_COUNTERS:
    setattr(FuzzStats, _counter_name, _counter_property(_counter_name))
del _counter_name


class FuzzLoop:
    """Coverage-guided fuzzing against a synthetic kernel."""

    def __init__(
        self,
        kernel: Kernel,
        engine: MutationEngine,
        executor: Executor,
        triage: CrashTriage,
        clock: VirtualClock,
        cost: CostModel,
        rng: np.random.Generator,
        sample_interval: float = 300.0,
        injector: FaultInjector | None = None,
        observer: Observer | None = None,
        worker: int = 0,
    ):
        self.kernel = kernel
        self.engine = engine
        self.executor = executor
        self.triage = triage
        self.clock = clock
        self.cost = cost
        self.rng = rng
        self.sample_interval = sample_interval
        self.injector = injector
        if injector is not None and executor.injector is None:
            # One plan drives every layer: attach the loop's injector to
            # the executor so VM hangs ride the same seeded schedule.
            executor.injector = injector
            executor.watchdog = True
        self.corpus = Corpus()
        self.accumulated = Coverage()
        self.observer = observer
        self.worker = worker
        self.track = f"worker{worker}"
        self.tracer = observer.tracer if observer is not None else None
        self.profiler = observer.profiler if observer is not None else None
        if observer is not None and executor.profiler is None:
            executor.profiler = observer.profiler
        # The lineage ledger: always kept (it is pure bookkeeping over
        # work the loop does anyway), exported when an observer rides
        # along, checkpointed with the loop state.
        self.provenance = ProvenanceLog()
        if observer is not None:
            observer.attach_provenance(self.provenance)
        self.stats = FuzzStats(
            registry=observer.registry if observer is not None else None,
            labels={"worker": worker} if observer is not None else None,
        )
        self._last_sample = -sample_interval

    # ----- setup -----

    def seed(self, programs: list[Program]) -> None:
        """Execute the initial seed corpus and admit its coverage."""
        if not programs:
            raise CampaignError("seed corpus must not be empty")
        for program in programs:
            result = self._execute(program)
            if result is None:
                continue
            new_edges = result.coverage.new_edges(self.accumulated)
            self.accumulated.merge(result.coverage)
            record = LineageRecord(
                entry_id=entry_id_for(program, result.coverage),
                parent_id=None, engine=SEED_ENGINE, operator="seed",
                slot="-", burst_id=None, predicted=0,
                gain=len(new_edges), time=self.clock.now,
                worker=self.worker,
            )
            self.provenance.admit(record, new_edges)
            self._admit(
                program, result.coverage, signal=len(new_edges),
                hints=frozenset(result.comparison_operands),
                lineage=record,
            )

    # ----- the loop -----

    def run(self) -> FuzzStats:
        """Fuzz until the virtual clock reaches its horizon."""
        self._require_seeded()
        while not self.clock.expired():
            self._iterate()
        return self.finalize()

    def run_until(self, time: float) -> None:
        """Fuzz until virtual ``time`` (or the horizon), whichever first.

        Used by checkpointed campaigns to run in bounded segments; call
        :meth:`finalize` once the horizon is reached.
        """
        self._require_seeded()
        while not self.clock.expired() and self.clock.now < time:
            self._iterate()

    def finalize(self) -> FuzzStats:
        """Take the final coverage sample and return the run's stats."""
        self._sample(force=True)
        self.stats.corpus_size = len(self.corpus)
        if self.observer is not None:
            registry = self.observer.registry
            total = self.clock.now
            # Publish the clock's per-label charges as gauges — the
            # virtual-time breakdown behind the flame summary — plus
            # each phase's share of the campaign, so `observe diff` can
            # compare phase profiles across runs.
            for label, seconds in sorted(self.clock.charges.items()):
                registry.gauge(
                    f"time.{label}", **self.stats.labels
                ).set(seconds)
                if total > 0:
                    registry.gauge(
                        f"time.share.{label}", **self.stats.labels
                    ).set(round(seconds / total, 6))
            if total > 0:
                # The vectorization baseline: simulated executions per
                # virtual second (direction-tagged lower-is-worse in
                # `flag_regressions`).
                registry.gauge(
                    "fuzz.execs_per_vsecond", **self.stats.labels
                ).set(round(self.stats.executions / total, 6))
            # Continuous-sampling profile (loop.mutate/exec/triage/
            # hub_sync + executor/localizer sections).  Diagnostic: the
            # profiler is not checkpointed, so a resumed run would
            # otherwise export different canonical metrics.
            self.observer.profiler.publish(registry, diagnostic=True)
        return self.stats

    def _iterate(self) -> None:
        """One loop iteration (guaranteed to advance the clock)."""
        self._sample()
        entry = self.corpus.choose(self.rng)
        start = self.clock.now
        with self._section("loop.mutate"):
            outcome = self.propose_mutation(entry)
        if outcome is not None:
            self._run_candidate(entry, outcome)
        if self.tracer is not None:
            self.tracer.record(
                self.track, "iteration", start, self.clock.now,
                cat="iteration",
            )

    def _require_seeded(self) -> None:
        if not self.corpus.entries:
            raise CampaignError("seed() must be called before run()")

    def propose_mutation(self, entry: CorpusEntry) -> MutationOutcome | None:
        """One mutation of the chosen base test.

        Subclasses (Snowplow) override this to consult the learned
        localizer; returning None skips the iteration (time must have
        been charged by the override to guarantee progress).
        """
        start = self.clock.now
        self.clock.advance(self.cost.mutation, "mutation")
        outcome = self.engine.mutate_test(
            entry.program, entry.coverage, hints=entry.hints
        )
        if self.tracer is not None:
            self.tracer.record(
                self.track, "mutate", start, self.clock.now, cat="mutate",
                type=outcome.mutation_type.value if outcome else "none",
            )
        return outcome

    # ----- internals -----

    def _section(self, name: str):
        """Profiler section for continuous per-phase sampling (no-op
        without an observer)."""
        if self.profiler is None:
            return nullcontext()
        return self.profiler.section(name, self.clock)

    def _mutation_meta(self) -> tuple[str, str, str | None, int]:
        """``(engine, slot, burst_id, predicted)`` for the mutation the
        loop just proposed.  SnowplowLoop overrides this to report the
        PMM/oracle slot and burst metadata when a burst steered it."""
        return "syzkaller", "heuristic", None, 0

    def _stamp(
        self,
        entry: CorpusEntry,
        outcome: MutationOutcome,
        coverage: Coverage,
        meta: tuple[str, str, str | None, int],
    ) -> LineageRecord:
        engine, slot, burst_id, predicted = meta
        return LineageRecord(
            entry_id=entry_id_for(outcome.program, coverage),
            parent_id=(
                entry.lineage.entry_id if entry.lineage is not None else None
            ),
            engine=engine,
            operator=outcome.mutation_type.value,
            slot=slot,
            burst_id=burst_id,
            predicted=predicted,
            gain=0,
            time=self.clock.now,
            worker=self.worker,
        )

    def _run_candidate(self, entry: CorpusEntry, outcome: MutationOutcome) -> None:
        type_name = outcome.mutation_type.value
        self.stats.mutations[type_name] = (
            self.stats.mutations.get(type_name, 0) + 1
        )
        meta = self._mutation_meta()
        self.provenance.note_mutation(meta[0], meta[1])
        result = self._execute(outcome.program)
        if result is None:
            return
        record: LineageRecord | None = None
        if result.crash is not None:
            crash = self.triage.observe(outcome.program, result.crash)
            if crash is not None:
                with self._section("loop.triage"):
                    triage_start = self.clock.now
                    self.clock.advance(self.cost.triage, "triage")
                    self.stats.crashes.append(crash)
                # Crashing programs get a lineage record even when they
                # are not admitted to the corpus: `observe explain
                # bug:<sig>` must always find a chain.
                record = self._stamp(entry, outcome, result.coverage, meta)
                record = self.provenance.record(record)
                self.provenance.note_crash(crash.signature, record.entry_id)
                if self.tracer is not None:
                    self.tracer.record(
                        self.track, "triage", triage_start, self.clock.now,
                        cat="triage",
                    )
                    self.tracer.instant(
                        self.track, "crash", self.clock.now, cat="crash",
                        signature=crash.signature,
                    )
        new_edges = result.coverage.new_edges(self.accumulated)
        if new_edges:
            if record is None:
                record = self._stamp(entry, outcome, result.coverage, meta)
            record.gain = len(new_edges)
            self.accumulated.merge(result.coverage)
            self.provenance.admit(record, new_edges)
            self._admit(
                outcome.program, result.coverage, signal=len(new_edges),
                hints=frozenset(result.comparison_operands),
                lineage=record,
            )
            self.on_new_coverage(entry, outcome, result.coverage)

    def on_new_coverage(self, entry, outcome, coverage) -> None:
        """Hook for subclasses; default does nothing."""

    def _admit(
        self,
        program: Program,
        coverage: Coverage,
        signal: int,
        hints: frozenset[int],
        lineage: LineageRecord | None = None,
    ) -> CorpusEntry:
        """Write a new entry to the corpus store, riding out transient
        failures (a flaky disk/DB write under fault injection).  Each
        retry costs a mutation-scale slice of virtual time."""
        if self.injector is not None:
            attempts = 0
            while (
                attempts < _CORPUS_WRITE_ATTEMPTS
                and self.injector.fires("corpus_store", self.clock.now)
            ):
                attempts += 1
                self.stats.corpus_write_retries += 1
                self.clock.advance(self.cost.mutation, "corpus_retry")
        return self.corpus.add(
            program, coverage, signal=signal, hints=hints, lineage=lineage
        )

    def _execute(self, program: Program):
        if self.clock.expired():
            return None
        start = self.clock.now
        with self._section("loop.exec"):
            self.clock.advance(self.cost.test_execution, "execution")
            self.stats.executions += 1
            result = self.executor.run(program, now=self.clock.now)
            if result.timed_out:
                # The watchdog killed a hung VM; restarting from snapshot
                # costs real fleet time (§3.1's snapshot semantics).
                self.stats.exec_timeouts += 1
                self.stats.vm_restarts += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        self.track, "exec_timeout", self.clock.now,
                        cat="fault",
                    )
                self.clock.advance(self.cost.vm_reset, "vm_restart")
        if self.tracer is not None:
            self.tracer.record(
                self.track, "exec", start, self.clock.now, cat="exec",
            )
        return result

    def _sample(self, force: bool = False) -> None:
        if force or self.clock.now - self._last_sample >= self.sample_interval:
            self._last_sample = self.clock.now
            self.stats.observations.append(
                FuzzObservation(
                    time=self.clock.now,
                    edges=len(self.accumulated.edges),
                    blocks=len(self.accumulated.blocks),
                    executions=self.stats.executions,
                )
            )
            if self.observer is not None:
                # Publish coverage as gauges so the time-series (and the
                # SLO stall detector) see the trajectory, then take the
                # cadenced registry sample.  The store enforces its own
                # interval, so per-worker calls cost one comparison.
                self.stats.corpus_size = len(self.corpus)
                registry = self.observer.registry
                registry.gauge(
                    "fuzz.edges", **self.stats.labels
                ).set(len(self.accumulated.edges))
                registry.gauge(
                    "fuzz.blocks", **self.stats.labels
                ).set(len(self.accumulated.blocks))
                self.observer.sample(self.clock.now)
