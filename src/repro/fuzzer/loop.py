"""The main fuzzing loop (Figure 1's ``fuzz_corpus``).

The loop runs against the virtual clock: every mutation, execution, and
VM reset charges its cost, and coverage is sampled on a fixed virtual
cadence so campaigns produce the coverage-over-time series of Figure 6.
``FuzzLoop`` is the Syzkaller baseline; Snowplow subclasses it to route
argument localization through asynchronous PMM inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CampaignError
from repro.fuzzer.corpus import Corpus, CorpusEntry
from repro.fuzzer.crash import CrashTriage, TriagedCrash
from repro.fuzzer.engine import MutationEngine, MutationOutcome, MutationType
from repro.kernel.build import Kernel
from repro.kernel.coverage import Coverage
from repro.kernel.executor import Executor
from repro.syzlang.program import Program
from repro.vclock import CostModel, VirtualClock

__all__ = ["FuzzLoop", "FuzzObservation", "FuzzStats"]


@dataclass(frozen=True)
class FuzzObservation:
    """One point of the coverage-over-time series."""

    time: float
    edges: int
    blocks: int
    executions: int


@dataclass
class FuzzStats:
    """Everything a campaign reports about one fuzzer run."""

    observations: list[FuzzObservation] = field(default_factory=list)
    crashes: list[TriagedCrash] = field(default_factory=list)
    executions: int = 0
    mutations: dict[str, int] = field(default_factory=dict)
    corpus_size: int = 0

    @property
    def final_edges(self) -> int:
        """Edge coverage at the end of the run."""
        return self.observations[-1].edges if self.observations else 0

    @property
    def final_blocks(self) -> int:
        """Block coverage at the end of the run."""
        return self.observations[-1].blocks if self.observations else 0

    def time_to_edges(self, edges: int) -> float | None:
        """First virtual time at which coverage reached ``edges``."""
        for observation in self.observations:
            if observation.edges >= edges:
                return observation.time
        return None


class FuzzLoop:
    """Coverage-guided fuzzing against a synthetic kernel."""

    def __init__(
        self,
        kernel: Kernel,
        engine: MutationEngine,
        executor: Executor,
        triage: CrashTriage,
        clock: VirtualClock,
        cost: CostModel,
        rng: np.random.Generator,
        sample_interval: float = 300.0,
    ):
        self.kernel = kernel
        self.engine = engine
        self.executor = executor
        self.triage = triage
        self.clock = clock
        self.cost = cost
        self.rng = rng
        self.sample_interval = sample_interval
        self.corpus = Corpus()
        self.accumulated = Coverage()
        self.stats = FuzzStats()
        self._last_sample = -sample_interval

    # ----- setup -----

    def seed(self, programs: list[Program]) -> None:
        """Execute the initial seed corpus and admit its coverage."""
        if not programs:
            raise CampaignError("seed corpus must not be empty")
        for program in programs:
            result = self._execute(program)
            if result is None:
                continue
            new_edges = result.coverage.new_edges(self.accumulated)
            self.accumulated.merge(result.coverage)
            self.corpus.add(
                program, result.coverage, signal=len(new_edges),
                hints=frozenset(result.comparison_operands),
            )

    # ----- the loop -----

    def run(self) -> FuzzStats:
        """Fuzz until the virtual clock reaches its horizon."""
        if not self.corpus.entries:
            raise CampaignError("seed() must be called before run()")
        while not self.clock.expired():
            self._sample()
            entry = self.corpus.choose(self.rng)
            outcome = self.propose_mutation(entry)
            if outcome is None:
                continue
            self._run_candidate(entry, outcome)
        self._sample(force=True)
        self.stats.corpus_size = len(self.corpus)
        return self.stats

    def propose_mutation(self, entry: CorpusEntry) -> MutationOutcome | None:
        """One mutation of the chosen base test.

        Subclasses (Snowplow) override this to consult the learned
        localizer; returning None skips the iteration (time must have
        been charged by the override to guarantee progress).
        """
        self.clock.advance(self.cost.mutation, "mutation")
        return self.engine.mutate_test(
            entry.program, entry.coverage, hints=entry.hints
        )

    # ----- internals -----

    def _run_candidate(self, entry: CorpusEntry, outcome: MutationOutcome) -> None:
        type_name = outcome.mutation_type.value
        self.stats.mutations[type_name] = (
            self.stats.mutations.get(type_name, 0) + 1
        )
        result = self._execute(outcome.program)
        if result is None:
            return
        if result.crash is not None:
            crash = self.triage.observe(outcome.program, result.crash)
            if crash is not None:
                self.clock.advance(self.cost.triage, "triage")
                self.stats.crashes.append(crash)
        new_edges = result.coverage.new_edges(self.accumulated)
        if new_edges:
            self.accumulated.merge(result.coverage)
            self.corpus.add(
                outcome.program, result.coverage, signal=len(new_edges),
                hints=frozenset(result.comparison_operands),
            )
            self.on_new_coverage(entry, outcome, result.coverage)

    def on_new_coverage(self, entry, outcome, coverage) -> None:
        """Hook for subclasses; default does nothing."""

    def _execute(self, program: Program):
        if self.clock.expired():
            return None
        self.clock.advance(self.cost.test_execution, "execution")
        self.stats.executions += 1
        return self.executor.run(program)

    def _sample(self, force: bool = False) -> None:
        if force or self.clock.now - self._last_sample >= self.sample_interval:
            self._last_sample = self.clock.now
            self.stats.observations.append(
                FuzzObservation(
                    time=self.clock.now,
                    edges=len(self.accumulated.edges),
                    blocks=len(self.accumulated.blocks),
                    executions=self.stats.executions,
                )
            )
