"""The three-stage mutation engine of Figure 1.

``mutate_test`` composes the policy functions exactly as the paper's
pseudocode: the *selector* picks a mutation type, the *localizer* picks
where to apply it, and the *instantiator* performs it.  The engine is
strategy-agnostic: Syzkaller is this engine with heuristic policies,
Snowplow is this engine with a learned argument localizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MutationError
from repro.fuzzer.localizer import Localizer
from repro.fuzzer.mutations import ArgumentInstantiator, MutationType
from repro.kernel.coverage import Coverage
from repro.rng import choice_weighted
from repro.syzlang.generator import ProgramGenerator
from repro.syzlang.program import ArgPath, Program

__all__ = ["TypeSelector", "MutationEngine", "MutationOutcome"]


class TypeSelector:
    """Syzkaller-style fixed-probability mutation-type selection.

    The default selector flips a biased coin, ignoring the target (§2).
    """

    def __init__(
        self,
        argument_weight: float = 0.60,
        insertion_weight: float = 0.30,
        removal_weight: float = 0.10,
    ):
        if min(argument_weight, insertion_weight, removal_weight) < 0:
            raise ValueError("mutation-type weights must be non-negative")
        self.weights = {
            MutationType.ARGUMENT_MUTATION: argument_weight,
            MutationType.SYSCALL_INSERTION: insertion_weight,
            MutationType.SYSCALL_REMOVAL: removal_weight,
        }

    def select(
        self, program: Program, targets: set[int] | None,
        rng: np.random.Generator,
    ) -> MutationType:
        """Pick a mutation type with the configured biased coin."""
        types = list(self.weights)
        weights = [self.weights[m_type] for m_type in types]
        choice = choice_weighted(rng, types, weights)
        if choice is MutationType.SYSCALL_REMOVAL and len(program) <= 1:
            return MutationType.ARGUMENT_MUTATION
        return choice


@dataclass
class MutationOutcome:
    """What mutate_test produced and where it mutated."""

    program: Program
    mutation_type: MutationType
    mutated_paths: list[ArgPath]


class MutationEngine:
    """Applies one mutation to a base test."""

    def __init__(
        self,
        selector: TypeSelector,
        localizer: Localizer,
        generator: ProgramGenerator,
        rng: np.random.Generator,
    ):
        self.selector = selector
        self.localizer = localizer
        self.generator = generator
        self.instantiator = ArgumentInstantiator(generator, rng)
        self.rng = rng

    def mutate_test(
        self,
        base: Program,
        base_coverage: Coverage | None = None,
        targets: set[int] | None = None,
        forced_paths: list[ArgPath] | None = None,
        hints: frozenset[int] | None = None,
    ) -> MutationOutcome:
        """One mutation of ``base`` (Figure 1's ``mutate_test``).

        ``forced_paths`` bypasses type selection and localization: it is
        how asynchronous PMM predictions are injected once inference
        completes (§3.4).
        """
        mutated = base.clone()
        if forced_paths is not None:
            # PMM-guided bursts target comparison-guarded branches by
            # construction, so comparison-operand hints apply with high
            # probability (Syzkaller's comparison-guided mutation mode).
            applied = self._apply_argument_mutations(
                mutated, forced_paths, hints, hint_prob=0.6
            )
            return MutationOutcome(
                mutated, MutationType.ARGUMENT_MUTATION, applied
            )
        m_type = self.selector.select(mutated, targets, self.rng)
        if m_type is MutationType.ARGUMENT_MUTATION:
            paths = self.localizer.localize(
                mutated, base_coverage, targets, self.rng
            )
            applied = self._apply_argument_mutations(mutated, paths, hints)
            return MutationOutcome(mutated, m_type, applied)
        if m_type is MutationType.SYSCALL_INSERTION:
            self._insert_call(mutated)
            return MutationOutcome(mutated, m_type, [])
        self._remove_call(mutated)
        return MutationOutcome(mutated, m_type, [])

    # ----- helpers -----

    def _apply_argument_mutations(
        self,
        program: Program,
        paths: list[ArgPath],
        hints: frozenset[int] | None = None,
        hint_prob: float = 0.30,
    ) -> list[ArgPath]:
        applied: list[ArgPath] = []
        for path in paths:
            try:
                self.instantiator.instantiate(
                    program, path, set(hints) if hints else None,
                    hint_prob=hint_prob,
                )
            except MutationError:
                continue
            applied.append(path)
        return applied

    def _insert_call(self, program: Program) -> None:
        producers: dict[str, list[int]] = {}
        for index, call in enumerate(program.calls):
            produced = call.spec.produces
            kind = produced
            while kind is not None:
                producers.setdefault(kind.name, []).append(index)
                kind = kind.parent
        table = self.generator.table
        spec = table.specs[int(self.rng.integers(len(table.specs)))]
        position = int(self.rng.integers(0, len(program) + 1))
        available = {
            kind: [idx for idx in indices if idx < position]
            for kind, indices in producers.items()
        }
        call = self.generator.random_call(spec, available)
        program.insert_call(position, call)

    def _remove_call(self, program: Program) -> None:
        if len(program) <= 1:
            return
        index = int(self.rng.integers(len(program)))
        program.remove_call(index)
