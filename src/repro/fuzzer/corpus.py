"""The corpus of interesting tests and its scheduling policy."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernel.coverage import Coverage
from repro.syzlang.program import Program

__all__ = ["Corpus", "CorpusEntry"]


@dataclass
class CorpusEntry:
    """One corpus test with its (deterministic) coverage."""

    program: Program
    coverage: Coverage
    # How much new coverage this test contributed when admitted; used as
    # a scheduling prior (Syzkaller's "signal" notion).
    signal: int = 0
    # How many times this entry has been chosen as a mutation base.
    picked: int = 0
    # Comparison operands observed when this test executed (KCOV_CMP
    # feedback), fed to the instantiator's hint strategy.
    hints: frozenset[int] = frozenset()
    # Provenance record stamped at mutation time (a
    # repro.observe.provenance.LineageRecord); None when lineage
    # tracking is off for this loop.
    lineage: "object | None" = None


@dataclass
class Corpus:
    """Corpus with signal-weighted test selection.

    Selection favours tests that contributed more new edges and have been
    mutated less, approximating Syzkaller's prioritisation without its
    full bookkeeping.
    """

    entries: list[CorpusEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def add(
        self,
        program: Program,
        coverage: Coverage,
        signal: int,
        hints: frozenset[int] = frozenset(),
        lineage=None,
    ) -> CorpusEntry:
        """Admit a (cloned) test with its coverage and KCOV_CMP hints."""
        entry = CorpusEntry(
            program=program.clone(), coverage=coverage.copy(),
            signal=signal, hints=hints, lineage=lineage,
        )
        self.entries.append(entry)
        return entry

    def choose(self, rng: np.random.Generator) -> CorpusEntry:
        """Pick a base test to mutate (Figure 1's ``choose_test``)."""
        if not self.entries:
            raise IndexError("cannot choose from an empty corpus")
        weights = np.array(
            [
                (1.0 + entry.signal) / (1.0 + 0.05 * entry.picked)
                for entry in self.entries
            ],
            dtype=float,
        )
        weights /= weights.sum()
        entry = self.entries[int(rng.choice(len(self.entries), p=weights))]
        entry.picked += 1
        return entry

    def total_signal(self) -> int:
        """Sum of admission signals (diagnostics)."""
        return sum(entry.signal for entry in self.entries)
