"""The paper's Figure 1 controller API, verbatim.

The library's object-oriented loop (:mod:`repro.fuzzer.loop`) is what
campaigns use; this module additionally exposes the exact functional
decomposition of the paper's pseudocode — ``fuzz_corpus(corpus,
choose_test, selector, localizer, instantiator, targets)`` — so the
controller-policy experiments read like the paper.

Policies are plain callables:

- ``choose_test(corpus, uncovered, covered, targets, rng) -> (test, target)``
- ``selector(test, target, rng) -> MutationType``
- ``localizer(test, target, m_type, rng) -> list[ArgPath]``
- ``instantiator(test, target, m_type, location, rng) -> None`` (mutates
  in place)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import CampaignError
from repro.fuzzer.mutations import MutationType
from repro.kernel.build import Kernel
from repro.kernel.executor import Executor
from repro.syzlang.program import ArgPath, Program

__all__ = ["FuzzReport", "fuzz_corpus", "mutate_test", "apply_mutation"]


@dataclass
class FuzzReport:
    """What the Figure 1 loop produced."""

    covered: set[int] = field(default_factory=set)
    crashes: list = field(default_factory=list)
    executions: int = 0
    corpus: list[Program] = field(default_factory=list)
    targets_reached: set[int] = field(default_factory=set)


def apply_mutation(
    test: Program,
    m_type: MutationType,
    location: list[ArgPath],
    instantiation: Callable[[Program, list[ArgPath]], None],
) -> Program:
    """Figure 1 line 34: apply one mutation, returning a new test."""
    mutated = test.clone()
    instantiation(mutated, location)
    return mutated


def mutate_test(
    test_to_mutate: Program,
    target: int | None,
    selector,
    localizer,
    instantiator,
    rng: np.random.Generator,
) -> Program:
    """Figure 1 lines 25-38: type selection, localization, instantiation."""
    m_type = selector(test_to_mutate, target, rng)
    location = localizer(test_to_mutate, target, m_type, rng)
    return apply_mutation(
        test_to_mutate,
        m_type,
        location,
        lambda program, paths: instantiator(
            program, target, m_type, paths, rng
        ),
    )


def fuzz_corpus(
    corpus: list[Program],
    choose_test,
    selector,
    localizer,
    instantiator,
    kernel: Kernel,
    executor: Executor,
    rng: np.random.Generator,
    targets: set[int] | None = None,
    max_executions: int = 10_000,
    update_corpus=None,
) -> FuzzReport:
    """Figure 1 lines 1-23, with an execution budget instead of an
    unbounded ``while``.

    ``targets=None`` makes the campaign undirected (line 4: every block
    of the kernel CFG is desirable); otherwise the loop runs until all
    targets are covered or the budget is spent.
    """
    if not corpus:
        raise CampaignError("fuzz_corpus needs a non-empty corpus")
    uncovered: set[int] = set(kernel.blocks)
    covered: set[int] = set()
    desired = set(kernel.blocks) if targets is None else set(targets)
    report = FuzzReport(corpus=[program.clone() for program in corpus])

    while not desired <= covered and report.executions < max_executions:
        test, target = choose_test(
            report.corpus, uncovered, covered, desired, rng
        )
        mutated = mutate_test(
            test, target, selector, localizer, instantiator, rng
        )
        result = executor.run(mutated)
        report.executions += 1
        if result.crash is not None:
            report.crashes.append((mutated, result.crash))
        coverage = result.coverage.blocks
        new_blocks = coverage - covered
        if update_corpus is not None:
            update_corpus(report.corpus, test, mutated, coverage, uncovered)
        elif new_blocks:
            report.corpus.append(mutated)
        uncovered -= coverage
        covered |= coverage
        report.targets_reached = desired & covered

    report.covered = covered
    return report
