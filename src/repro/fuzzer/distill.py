"""Corpus distillation (the Moonshine role).

Continuous fuzzing accumulates enormous corpora with heavily redundant
coverage; Moonshine [38] showed that distilling seeds to a small subset
preserving total coverage dramatically improves OS-fuzzer seed quality.
The paper builds its training corpus from Syzbot artifacts the same way
(sampling unique tests).

``distill_corpus`` implements the standard greedy weighted set-cover:
repeatedly keep the test contributing the most not-yet-covered edges,
stopping when coverage is exhausted (or a size budget is hit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.coverage import Coverage
from repro.kernel.executor import Executor
from repro.syzlang.program import Program

__all__ = ["DistilledCorpus", "distill_corpus"]


@dataclass
class DistilledCorpus:
    """The distillation result."""

    programs: list[Program]
    coverages: list[Coverage]
    total_edges: int
    original_size: int

    @property
    def reduction(self) -> float:
        """Fraction of the corpus removed."""
        if self.original_size == 0:
            return 0.0
        return 1.0 - len(self.programs) / self.original_size


def distill_corpus(
    programs: list[Program],
    executor: Executor,
    max_programs: int | None = None,
    min_gain: int = 1,
) -> DistilledCorpus:
    """Greedy set-cover distillation of ``programs`` by edge coverage.

    Each program is executed once (deterministically); crashing seeds
    are dropped, as in the paper's data collection.  ``min_gain`` is the
    smallest marginal edge contribution worth keeping a test for.
    """
    executed: list[tuple[Program, Coverage]] = []
    for program in programs:
        result = executor.run(program)
        if result.crashed:
            continue
        executed.append((program, result.coverage))

    remaining = list(range(len(executed)))
    covered: set[tuple[int, int]] = set()
    kept: list[int] = []
    budget = max_programs if max_programs is not None else len(executed)
    while remaining and len(kept) < budget:
        best_index = None
        best_gain = min_gain - 1
        for index in remaining:
            gain = len(executed[index][1].edges - covered)
            if gain > best_gain:
                best_gain = gain
                best_index = index
        if best_index is None:
            break
        kept.append(best_index)
        covered |= executed[best_index][1].edges
        remaining.remove(best_index)

    kept.sort()
    return DistilledCorpus(
        programs=[executed[index][0] for index in kept],
        coverages=[executed[index][1] for index in kept],
        total_edges=len(covered),
        original_size=len(programs),
    )
