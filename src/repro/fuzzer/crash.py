"""Crash triage, deduplication, reproduction, and categorisation.

Implements the §5.3.2 pipeline: noisy crash classes are filtered out,
crashes are deduplicated by description, checked against the known
(Syzbot) backlog, and replayed in bug-reproduction mode where a
syz-repro-style minimiser tries to distil a hermetic reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.bugs import CrashKind, CrashReport
from repro.kernel.executor import Executor
from repro.syzlang.program import Program

__all__ = ["CrashTriage", "TriagedCrash", "categorize_description"]

# §5.3.2: crashes matching these markers are "usually less severe or too
# ambiguous to locate the error" and are dropped before analysis.
_FILTERED_MARKERS = ("INFO:", "SYZFAIL", "lost connection to the VM")

_REPRO_ATTEMPTS = 3


def categorize_description(description: str) -> CrashKind:
    """Map a crash headline to its Table 3 category."""
    lowered = description.lower()
    if "kasan" in lowered or "out-of-bounds" in lowered:
        return CrashKind.OOB
    if "null pointer" in lowered:
        return CrashKind.NULL_DEREF
    if "page fault" in lowered:
        return CrashKind.PAGING_FAULT
    if "kernel bug at" in lowered:
        return CrashKind.ASSERT
    if "general protection fault" in lowered:
        return CrashKind.GPF
    if "warning" in lowered:
        return CrashKind.WARNING
    return CrashKind.OTHER


@dataclass
class TriagedCrash:
    """One deduplicated crash after triage."""

    signature: str
    category: CrashKind
    is_new: bool
    crashing_program: Program
    reproducer: Program | None = None
    # Diagnostic back-pointer to the planted bug (not available to a real
    # fuzzer; used by the experiment harness to attribute crashes).
    bug_id: str = ""

    @property
    def has_reproducer(self) -> bool:
        """Whether syz-repro produced a minimised reproducer."""
        return self.reproducer is not None


class CrashTriage:
    """Stateful crash pipeline for one fuzzing campaign."""

    def __init__(self, executor: Executor, known_signatures: set[str]):
        self.executor = executor
        self.known_signatures = set(known_signatures)
        self._seen: dict[str, TriagedCrash] = {}

    @property
    def crashes(self) -> list[TriagedCrash]:
        """All deduplicated crashes observed so far."""
        return list(self._seen.values())

    def observe(
        self, program: Program, report: CrashReport
    ) -> TriagedCrash | None:
        """Process one raw crash; returns the triaged record when the
        crash survives filtering and is not a duplicate."""
        description = report.description
        if any(marker in description for marker in _FILTERED_MARKERS):
            return None
        if description in self._seen:
            return None
        crash = TriagedCrash(
            signature=description,
            category=categorize_description(description),
            is_new=description not in self.known_signatures,
            crashing_program=program.clone(),
            bug_id=report.bug.bug_id,
        )
        self._seen[description] = crash
        return crash

    # ----- reproduction (syz-repro) -----

    def reproduce(self, crash: TriagedCrash) -> Program | None:
        """Replay and minimise the crashing test.

        Returns the minimised reproducer, or None when the crash does not
        reproduce (e.g. concurrency-dependent bugs).  The result is also
        recorded on ``crash``.
        """
        program = crash.crashing_program
        if not self._replays(program, crash.bug_id):
            crash.reproducer = None
            return None
        minimized = self._minimize(program, crash.bug_id)
        crash.reproducer = minimized
        return minimized

    def _replays(self, program: Program, bug_id: str) -> bool:
        for _ in range(_REPRO_ATTEMPTS):
            result = self.executor.run(program)
            if result.crash is not None and result.crash.bug.bug_id == bug_id:
                return True
        return False

    def _minimize(self, program: Program, bug_id: str) -> Program:
        """Greedy call removal while the crash persists."""
        current = program.clone()
        index = len(current) - 1
        while index >= 0 and len(current) > 1:
            candidate = current.clone()
            candidate.remove_call(index)
            if self._replays(candidate, bug_id):
                current = candidate
            index -= 1
        return current
