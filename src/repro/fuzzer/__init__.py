"""The kernel fuzzer.

Reimplements the Syzkaller workflow the paper abstracts in Figure 1: a
corpus of interesting tests, a three-stage mutation engine (type
*selector*, mutation *localizer*, argument *instantiator*), the fuzzing
loop with coverage feedback and virtual-time accounting, crash triage
with syz-repro-style reproducer minimisation, and a SyzDirect-like
directed mode.
"""

from repro.fuzzer.corpus import Corpus, CorpusEntry
from repro.fuzzer.mutations import ArgumentInstantiator, MutationType
from repro.fuzzer.localizer import (
    Localizer,
    RandomLocalizer,
    SyzkallerLocalizer,
)
from repro.fuzzer.engine import MutationEngine, TypeSelector
from repro.fuzzer.loop import FuzzLoop, FuzzObservation, FuzzStats
from repro.fuzzer.crash import CrashTriage, TriagedCrash
from repro.fuzzer.directed import DirectedFuzzer, DirectedResult
from repro.fuzzer.distill import DistilledCorpus, distill_corpus
from repro.fuzzer.api import FuzzReport, fuzz_corpus
from repro.fuzzer.stats import MutationYield, YieldProbe

__all__ = [
    "ArgumentInstantiator",
    "Corpus",
    "CorpusEntry",
    "CrashTriage",
    "DirectedFuzzer",
    "DirectedResult",
    "DistilledCorpus",
    "FuzzReport",
    "distill_corpus",
    "fuzz_corpus",
    "FuzzLoop",
    "FuzzObservation",
    "FuzzStats",
    "Localizer",
    "MutationEngine",
    "MutationType",
    "MutationYield",
    "YieldProbe",
    "RandomLocalizer",
    "SyzkallerLocalizer",
    "TriagedCrash",
    "TypeSelector",
]
