"""Directed kernel fuzzing (the SyzDirect role, §5.4).

A directed fuzzer tries to *reach* a specific kernel block instead of
maximising total coverage.  The reimplementation captures SyzDirect's
mechanism class:

- static distance: a reverse-BFS hop count toward the target over the
  kernel CFG, used to rank corpus tests by their closest approach;
- resource-aware call planting: if the base test never invokes the
  target's system call, insert it (with any producer calls its resources
  need);
- argument prioritisation: once the right call is present, argument
  mutations are focused on that call.

Snowplow-D is the same fuzzer with the argument localizer swapped for
PMM, queried with the target block marked (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignError
from repro.fuzzer.corpus import Corpus
from repro.fuzzer.localizer import Localizer
from repro.fuzzer.mutations import ArgumentInstantiator
from repro.kernel.build import Kernel
from repro.kernel.coverage import Coverage
from repro.kernel.executor import Executor
from repro.syzlang.generator import ProgramGenerator
from repro.syzlang.program import ArgPath, Program
from repro.vclock import CostModel, VirtualClock

__all__ = [
    "DirectedFuzzer",
    "DirectedResult",
    "SyzDirectLocalizer",
    "plant_target_call",
]


def plant_target_call(
    program: Program,
    generator: ProgramGenerator,
    target_syscall: str,
    rng: np.random.Generator,
) -> bool:
    """Append ``target_syscall`` to ``program``, resource-aware.

    Producers for any resources the call consumes that the program does
    not already produce are inserted first (SyzDirect's call planting).
    Mutates ``program`` in place; returns False when the syscall is
    unknown to the generator's table.
    """
    if not target_syscall or target_syscall not in generator.table:
        return False
    spec = generator.table.lookup(target_syscall)
    position = len(program.calls)
    producers: dict[str, list[int]] = {}
    for index, call in enumerate(program.calls):
        produced = call.spec.produces
        kind = produced
        while kind is not None:
            producers.setdefault(kind.name, []).append(index)
            kind = kind.parent
    for needed in spec.consumes():
        if needed.name not in producers:
            producer_specs = generator.table.producers_of(needed)
            if producer_specs:
                producer = producer_specs[
                    int(rng.integers(len(producer_specs)))
                ]
                call = generator.random_call(producer, producers)
                program.insert_call(position, call)
                position += 1
                producers.setdefault(needed.name, []).append(position - 1)
    program.insert_call(position, generator.random_call(spec, producers))
    return True


class SyzDirectLocalizer:
    """SyzDirect's heuristic argument localization.

    Prefers arguments of calls invoking the target's own system call;
    falls back to arguments of upstream resource producers, then to any
    argument — encoding the "mutate upstream calls that enable the right
    downstream call" heuristic described in §2.

    With a :class:`~repro.analyze.deps.DependencyOracle` attached, the
    heuristic is bypassed whenever the oracle derives exact steering
    slots for the target on this program: the statically-sliced
    ``(syscall, path)`` sites are returned directly (deterministically,
    no rng draw), and the heuristic only handles targets or programs the
    slice does not cover.
    """

    def __init__(self, target_syscall: str, k: int = 2, oracle=None):
        self.target_syscall = target_syscall
        self.k = k
        self.oracle = oracle

    def localize(self, program, coverage, targets, rng) -> list[ArgPath]:
        """Oracle slots when sliced, else sites on target-syscall calls
        first, then their upstream resource producers, then anything."""
        if self.oracle is not None and targets:
            exact: list[ArgPath] = []
            pending: list[ArgPath] = []
            seen: set[ArgPath] = set()
            seen_pending: set[ArgPath] = set()
            for target in sorted(targets):
                deps = self.oracle.dependencies(target)
                for path in deps.steering_paths(program):
                    if path not in seen:
                        seen.add(path)
                        exact.append(path)
                for path in deps.pending_paths(program):
                    if path not in seen_pending:
                        seen_pending.add(path)
                        pending.append(path)
            # Only the still-violated slots: re-randomizing slots the
            # base already satisfies would throw that progress away.
            # Never truncated to k either — every slot is *mandatory*,
            # so a deterministic cap would permanently starve the slots
            # beyond it.  All-satisfied programs (state deps, or a
            # not-taken edge) fall back to the full slot set.
            if pending:
                return pending
            if exact:
                return exact
        sites = program.mutation_sites()
        if not sites:
            return []
        target_calls = {
            index
            for index, call in enumerate(program.calls)
            if call.spec.full_name == self.target_syscall
        }
        upstream: set[int] = set()
        for index in target_calls:
            spec = program.calls[index].spec
            for needed in spec.consumes():
                for j, call in enumerate(program.calls[:index]):
                    produced = call.spec.produces
                    if produced is not None and produced.compatible_with(needed):
                        upstream.add(j)
        primary = [s for s in sites if s.call_index in target_calls]
        secondary = [s for s in sites if s.call_index in upstream]
        pool = primary or secondary or sites
        count = min(self.k, len(pool))
        picks = rng.permutation(len(pool))[:count]
        return [pool[int(pick)] for pick in picks]


@dataclass
class DirectedResult:
    """Outcome of one directed-fuzzing run."""

    target_block: int
    reached: bool
    time_to_target: float | None
    executions: int


class DirectedFuzzer:
    """Reach a target kernel block as fast as possible."""

    def __init__(
        self,
        kernel: Kernel,
        target_block: int,
        executor: Executor,
        generator: ProgramGenerator,
        localizer: Localizer,
        clock: VirtualClock,
        cost: CostModel,
        rng: np.random.Generator,
        insert_target_prob: float = 0.3,
        # Extra per-mutation cost (virtual s), e.g. amortized inference
        # for a learned localizer; reproduces Table 5's slight slowdowns
        # on trivial targets.
        mutation_overhead: float = 0.0,
        # Optional repro.analyze.ReachabilityAnalysis: shares its
        # memoized reverse-BFS distance maps instead of recomputing one
        # per fuzzer instance.
        analysis=None,
    ):
        if target_block not in kernel.blocks:
            raise CampaignError(f"unknown target block {target_block}")
        self.kernel = kernel
        self.target_block = target_block
        self.target_syscall = kernel.handler_of_block.get(target_block, "")
        self.executor = executor
        self.generator = generator
        self.localizer = localizer
        self.clock = clock
        self.cost = cost
        self.rng = rng
        self.insert_target_prob = insert_target_prob
        self.mutation_overhead = mutation_overhead
        self.instantiator = ArgumentInstantiator(generator, rng)
        if analysis is not None:
            self.distance = analysis.distance_to(target_block)
        else:
            self.distance = kernel.distance_to(target_block)
        self.corpus = Corpus()
        self._closeness: list[int] = []

    # ----- setup -----

    def seed(self, programs: list[Program]) -> None:
        """Execute the seed corpus and record closest approaches."""
        for program in programs:
            if self.clock.expired():
                break
            self.clock.advance(self.cost.test_execution, "execution")
            result = self.executor.run(program)
            self.corpus.add(program, result.coverage, signal=1)
            self._closeness.append(self._approach(result.coverage))

    def _approach(self, coverage: Coverage) -> int:
        """Hops from the test's closest covered block to the target."""
        best = 10**9
        for block in coverage.blocks:
            hops = self.distance.get(block)
            if hops is not None and hops < best:
                best = hops
        return best

    # ----- the search -----

    def run(self) -> DirectedResult:
        """Search until the target is covered or the horizon expires."""
        if not self.corpus.entries:
            raise CampaignError("seed() must be called before run()")
        executions = 0
        while not self.clock.expired():
            index = self._choose_index()
            base = self.corpus.entries[index]
            candidate = self._mutate(base.program, base.coverage)
            self.clock.advance(
                self.cost.mutation + self.mutation_overhead, "mutation"
            )
            self.clock.advance(self.cost.test_execution, "execution")
            executions += 1
            result = self.executor.run(candidate)
            if self.target_block in result.coverage.blocks:
                return DirectedResult(
                    target_block=self.target_block,
                    reached=True,
                    time_to_target=self.clock.now,
                    executions=executions,
                )
            approach = self._approach(result.coverage)
            if approach < min(self._closeness, default=10**9):
                self.corpus.add(candidate, result.coverage, signal=1)
                self._closeness.append(approach)
        return DirectedResult(
            target_block=self.target_block,
            reached=False,
            time_to_target=None,
            executions=executions,
        )

    def _choose_index(self) -> int:
        """Pick the base test, favouring closest approach (SyzDirect's
        seed-selection heuristic)."""
        weights = np.array(
            [1.0 / (1.0 + hops) for hops in self._closeness], dtype=float
        )
        weights /= weights.sum()
        return int(self.rng.choice(len(weights), p=weights))

    def _mutate(self, base: Program, coverage: Coverage) -> Program:
        mutated = base.clone()
        has_target_call = any(
            call.spec.full_name == self.target_syscall
            for call in mutated.calls
        )
        if not has_target_call or self.rng.random() < self.insert_target_prob:
            self._insert_target_call(mutated)
            return mutated
        paths = self.localizer.localize(
            mutated, coverage, {self.target_block}, self.rng
        )
        for path in paths:
            try:
                self.instantiator.instantiate(mutated, path)
            except Exception:
                continue
        return mutated

    def _insert_target_call(self, program: Program) -> None:
        """Plant the target's system call, with producers for its
        resources (resource-aware planting)."""
        plant_target_call(program, self.generator, self.target_syscall, self.rng)
