"""Campaign instrumentation: per-mutation-type yield accounting.

Understanding *where* a fuzzer's coverage comes from — argument
mutations vs call insertions vs removals, and for Snowplow, guided
bursts vs heuristic fallback — is how mutation policies get debugged and
tuned.  :class:`YieldProbe` wraps any :class:`FuzzLoop` (including
:class:`SnowplowLoop`) and attributes every new edge to the mutation
that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fuzzer.loop import FuzzLoop

__all__ = ["MutationYield", "YieldProbe"]


@dataclass
class MutationYield:
    """Accumulated outcome of one mutation class."""

    mutations: int = 0
    new_edges: int = 0
    productive: int = 0  # mutations that found any new coverage

    @property
    def edges_per_mutation(self) -> float:
        return self.new_edges / self.mutations if self.mutations else 0.0

    @property
    def hit_rate(self) -> float:
        return self.productive / self.mutations if self.mutations else 0.0


@dataclass
class YieldProbe:
    """Attaches to a loop and breaks down coverage yield by mutation.

    Usage::

        probe = YieldProbe.attach(loop)
        loop.seed(...); loop.run()
        print(probe.report())

    For :class:`~repro.snowplow.fuzzer.SnowplowLoop`, guided bursts are
    reported separately from the heuristic fallback under the keys
    ``argument_mutation(guided)`` and ``argument_mutation``.
    """

    yields: dict[str, MutationYield] = field(default_factory=dict)

    @classmethod
    def attach(cls, loop: FuzzLoop) -> "YieldProbe":
        probe = cls()
        original = loop._run_candidate

        def instrumented(entry, outcome):
            # Snowplow clears _active_burst inside _run_candidate, so the
            # guided flag must be read before delegating.
            guided = getattr(loop, "_active_burst", None) is not None
            before = len(loop.accumulated.edges)
            original(entry, outcome)
            gained = len(loop.accumulated.edges) - before
            key = outcome.mutation_type.value
            if key == "argument_mutation" and guided:
                key = "argument_mutation(guided)"
            bucket = probe.yields.setdefault(key, MutationYield())
            bucket.mutations += 1
            bucket.new_edges += gained
            if gained:
                bucket.productive += 1

        loop._run_candidate = instrumented  # type: ignore[method-assign]
        return probe

    def report(self) -> str:
        """A per-class yield table."""
        lines = [
            f"{'mutation class':<28}{'n':>8}{'new edges':>11}"
            f"{'edges/mut':>11}{'hit rate':>10}"
        ]
        for key in sorted(self.yields):
            y = self.yields[key]
            lines.append(
                f"{key:<28}{y.mutations:>8}{y.new_edges:>11}"
                f"{y.edges_per_mutation:>11.4f}{y.hit_rate:>10.4f}"
            )
        return "\n".join(lines)
