"""Campaign instrumentation: per-mutation-type yield accounting.

Understanding *where* a fuzzer's coverage comes from — argument
mutations vs call insertions vs removals, and for Snowplow, guided
bursts vs heuristic fallback — is how mutation policies get debugged and
tuned.  :class:`YieldProbe` wraps any :class:`FuzzLoop` (including
:class:`SnowplowLoop`) and attributes every new edge to the mutation
that produced it.

The probe's ledger lives in the loop's
:class:`~repro.observe.MetricsRegistry` as three labeled counter
families — ``yield.mutations{class=...}``, ``yield.new_edges{class=...}``,
``yield.productive{class=...}`` — so yield breakdowns ride along in the
same exported metrics snapshot as everything else.  :class:`MutationYield`
stays the public per-class view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzzer.loop import FuzzLoop
from repro.observe import LabeledCounterMap, MetricsRegistry

__all__ = ["MutationYield", "YieldProbe"]


@dataclass
class MutationYield:
    """Accumulated outcome of one mutation class."""

    mutations: int = 0
    new_edges: int = 0
    productive: int = 0  # mutations that found any new coverage

    @property
    def edges_per_mutation(self) -> float:
        return self.new_edges / self.mutations if self.mutations else 0.0

    @property
    def hit_rate(self) -> float:
        return self.productive / self.mutations if self.mutations else 0.0


class YieldProbe:
    """Attaches to a loop and breaks down coverage yield by mutation.

    Usage::

        probe = YieldProbe.attach(loop)
        loop.seed(...); loop.run()
        print(probe.report())

    For :class:`~repro.snowplow.fuzzer.SnowplowLoop`, guided bursts are
    reported separately from the heuristic fallback under the keys
    ``argument_mutation(guided)`` and ``argument_mutation``.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        labels: dict | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = dict(labels or {})
        self._mutations = LabeledCounterMap(
            self.registry, "yield.mutations", "class", self.labels
        )
        self._new_edges = LabeledCounterMap(
            self.registry, "yield.new_edges", "class", self.labels
        )
        self._productive = LabeledCounterMap(
            self.registry, "yield.productive", "class", self.labels
        )

    @property
    def yields(self) -> dict[str, MutationYield]:
        """Per-class views assembled from the registry series."""
        return {
            key: MutationYield(
                mutations=self._mutations.get(key, 0),
                new_edges=self._new_edges.get(key, 0),
                productive=self._productive.get(key, 0),
            )
            for key in sorted(self._mutations)
        }

    def record(self, key: str, gained: int) -> None:
        """Book one mutation of class ``key`` that found ``gained`` edges."""
        self._mutations[key] = self._mutations.get(key, 0) + 1
        self._new_edges[key] = self._new_edges.get(key, 0) + gained
        if gained:
            self._productive[key] = self._productive.get(key, 0) + 1
        elif key not in self._productive:
            self._productive[key] = 0

    @classmethod
    def attach(cls, loop: FuzzLoop) -> "YieldProbe":
        # Sharing the loop's registry (and worker labels) folds the
        # yield families into the loop's own exported snapshot.
        probe = cls(registry=loop.stats.registry, labels=loop.stats.labels)
        original = loop._run_candidate

        def instrumented(entry, outcome):
            # Snowplow clears _active_burst inside _run_candidate, so the
            # guided flag must be read before delegating.
            guided = getattr(loop, "_active_burst", None) is not None
            before = len(loop.accumulated.edges)
            original(entry, outcome)
            gained = len(loop.accumulated.edges) - before
            key = outcome.mutation_type.value
            if key == "argument_mutation" and guided:
                key = "argument_mutation(guided)"
            probe.record(key, gained)

        loop._run_candidate = instrumented  # type: ignore[method-assign]
        return probe

    def report(self) -> str:
        """A per-class yield table."""
        lines = [
            f"{'mutation class':<28}{'n':>8}{'new edges':>11}"
            f"{'edges/mut':>11}{'hit rate':>10}"
        ]
        for key, y in self.yields.items():
            lines.append(
                f"{key:<28}{y.mutations:>8}{y.new_edges:>11}"
                f"{y.edges_per_mutation:>11.4f}{y.hit_rate:>10.4f}"
            )
        return "\n".join(lines)
