"""One admitted campaign, materialized and runnable.

A :class:`JobRunner` turns a :class:`~repro.service.specs.CampaignSpec`
into exactly the loop (or cluster) that ``repro fuzz`` would build for
the same flags — same seed derivation (:func:`fuzz_run_seed`), same
campaign config (:func:`fuzz_campaign_config`), same builders — and
drives it in bounded virtual-time increments on behalf of the
orchestrator.

**Isolation is the design.**  Each job owns its executor, RNG streams,
corpus, hub, and inference tier; nothing mutable is shared between
jobs.  Campaigns are multiplexed by interleaving their *virtual* time
slices, and since no cross-job state exists, the interleave cannot leak
into any job's results: a campaign's outcome is a pure function of its
spec.  (Deliberately so — co-batching tenants through one literal
inference service would make batch latency, and therefore results,
depend on who else is running.)  The standalone-vs-multiplexed
signature equality asserted by the service gate falls out of this
structure rather than being patched in.
"""

from __future__ import annotations

from repro.cluster import ClusterConfig
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import build_kernel
from repro.observe import Observer, SLOEngine
from repro.observe.slo import DEFAULT_PACKS
from repro.snowplow.campaign import (
    TrainedPMM,
    build_cluster,
    build_fuzz_loop,
    fuzz_campaign_config,
    fuzz_run_seed,
)
from repro.snowplow.checkpointing import (
    cluster_state,
    loop_state,
    restore_cluster_state,
    restore_loop_state,
)

__all__ = ["JobRunner", "encode_signature"]


def encode_signature(value):
    """A signature tuple as canonical JSON-ready lists (mapping views
    become sorted ``[key, value]`` pairs)."""
    if isinstance(value, (list, tuple)):
        return [encode_signature(item) for item in value]
    if hasattr(value, "items"):
        return sorted(
            [key, count] for key, count in dict(value).items()
        )
    return value


class JobRunner:
    """The execution side of one job: loops in, result payload out."""

    def __init__(self, spec):
        self.spec = spec
        self.kernel = build_kernel(
            spec.kernel, seed=spec.kernel_seed, size=spec.size
        )
        self.config = fuzz_campaign_config(
            spec.hours, spec.seed, spec.seed_corpus, spec.batch_size
        )
        self.run_seed = fuzz_run_seed(spec.seed, self.kernel.version)
        pack = "cluster" if spec.workers > 1 else "fuzz"
        self.observer = Observer(slo=SLOEngine(DEFAULT_PACKS[pack]()))
        injector = (
            FaultInjector(FaultPlan.from_dict(spec.faults))
            if spec.faults else None
        )
        trained = self._trained(spec)
        baseline = spec.mode == "baseline"
        oracle = spec.mode == "oracle"
        if spec.workers > 1:
            self.loop = None
            self.cluster = build_cluster(
                self.kernel, trained, self.run_seed, self.config,
                cluster_config=ClusterConfig(
                    workers=spec.workers, shards=spec.shards,
                    heartbeat_deadline=spec.heartbeat_deadline,
                ),
                baseline=baseline, oracle=oracle,
                injector=injector, observer=self.observer,
            )
        else:
            self.cluster = None
            self.loop = build_fuzz_loop(
                self.kernel, trained, self.run_seed, self.config,
                baseline=baseline, oracle=oracle,
                injector=injector, observer=self.observer,
            )

    @staticmethod
    def _trained(spec) -> TrainedPMM | None:
        if spec.mode != "model":
            return None
        from repro.pmm.checkpoint import load_pmm

        model, vocab, encoder = load_pmm(
            spec.model,
            build_kernel(
                spec.kernel, seed=spec.kernel_seed, size=spec.size
            ).table,
        )
        return TrainedPMM(
            model=model, encoder=encoder, vocab=vocab,
            dataset=None, validation=None,
        )

    # ----- the orchestrator's drive surface -----

    @property
    def now(self) -> float:
        """Job-local virtual time."""
        if self.loop is not None:
            return self.loop.clock.now
        return self.cluster.now

    @property
    def horizon(self) -> float:
        if self.loop is not None:
            return self.loop.clock.horizon
        return self.cluster.horizon

    @property
    def done(self) -> bool:
        if self.loop is not None:
            return self.loop.clock.expired()
        return self.cluster.done

    def run_until(self, local_time: float) -> None:
        """Advance the campaign to job-local virtual ``local_time``."""
        if self.loop is not None:
            self.loop.run_until(min(local_time, self.horizon))
        else:
            self.cluster.run_until(min(local_time, self.horizon))

    def run_out(self) -> None:
        """Drive any supervised stragglers (restarted workers catching
        up past the horizon) to quiescence, like ``ClusterFuzzer.run``.
        """
        if self.cluster is not None and not self.cluster.done:
            self.cluster.run_until(float("inf"))

    # ----- results & inspection -----

    def progress(self) -> list[list]:
        """The coverage timeline: ``[time, edges, blocks, executions]``
        rows (the hub's fleet-union timeline for clusters)."""
        if self.loop is not None:
            observations = self.loop.stats.observations
        else:
            observations = self.cluster.hub.timeline
        return [
            [obs.time, obs.edges, obs.blocks, obs.executions]
            for obs in observations
        ]

    def alerts(self) -> list[dict]:
        """The session SLO pack, evaluated over this job's timeseries."""
        return [
            {
                "time": alert.time,
                "rule": alert.rule,
                "series": alert.series,
                "severity": alert.severity,
                "message": alert.message,
            }
            for alert in self.observer.evaluate_slo()
        ]

    def finalize(self) -> dict:
        """Finish the campaign and produce the JSON-ready result payload
        a tenant fetches, including its determinism signature and the
        tenant-visible degradation ledger."""
        from repro.observe import ProvenanceLog, attribution_table

        if self.loop is not None:
            stats = self.loop.finalize()
            merged = stats
            signature = stats.signature()
            lineage = self.loop.provenance
            extra = {}
        else:
            result = self.cluster.finalize()
            merged = result.merged
            signature = result.signature()
            lineage = ProvenanceLog.merge(
                [worker.loop.provenance for worker in self.cluster.workers]
                + [self.cluster.hub.provenance]
            )
            extra = {
                "hub": {
                    "accepted": result.hub_stats.accepted,
                    "duplicates": result.hub_stats.duplicates,
                    "dropped_entries": result.hub_stats.dropped_entries,
                    "subsumed_entries": result.hub_stats.subsumed_entries,
                },
                "restarts": (
                    self.cluster.supervisor.restarts
                    if self.cluster.supervisor is not None else 0
                ),
            }
        payload = {
            "kernel": self.kernel.version,
            "mode": self.spec.mode,
            "workers": self.spec.workers,
            "final_edges": merged.final_edges,
            "final_blocks": merged.final_blocks,
            "executions": merged.executions,
            "corpus_size": merged.corpus_size,
            "crashes": [
                [crash.signature, bool(crash.is_new)]
                for crash in merged.crashes
            ],
            # The degradation the tenant *saw*: every way this campaign
            # fell back, shed, timed out, or lost in-flight work.
            "degradation": {
                "inference_failures": merged.inference_failures,
                "heuristic_fallbacks": merged.heuristic_fallbacks,
                "exec_timeouts": merged.exec_timeouts,
                "vm_restarts": merged.vm_restarts,
                "breaker_trips": merged.breaker_trips,
                "corpus_write_retries": merged.corpus_write_retries,
            },
            "signature": encode_signature(signature),
            # The provenance view a tenant fetches via /lineage once the
            # job is done (and may render locally with observe explain).
            "attribution": attribution_table(lineage),
            "lineage_summary": lineage.summary(),
        }
        payload.update(extra)
        return payload

    # ----- checkpointing (format v7 exec layer) -----

    def state_dict(self) -> dict:
        if self.loop is not None:
            return {"kind": "loop", "state": loop_state(self.loop)}
        return {"kind": "cluster", "state": cluster_state(self.cluster)}

    def restore(self, payload: dict) -> None:
        if self.loop is not None:
            restore_loop_state(self.loop, payload["state"])
        else:
            restore_cluster_state(self.cluster, payload["state"])
