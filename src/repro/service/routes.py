"""Request/response objects and the route table.

No sockets: the "API" is deterministic in-process dispatch.  A
:class:`Request` is a plain record, a :class:`Response` a status code
plus a JSON-ready body, and :func:`match` the tiny path router mapping
``(method, path)`` to a handler name with extracted path parameters.
Keeping the surface HTTP-shaped (methods, paths, 4xx/5xx semantics)
means a real transport can be bolted on later without touching any
handler, while tests stay byte-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Request", "Response", "Route", "ROUTES", "match"]


@dataclass(frozen=True)
class Request:
    """One API call: ``params`` carries query+body merged, JSON-ready."""

    method: str
    path: str
    params: dict = field(default_factory=dict)


@dataclass
class Response:
    status: int
    body: dict

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> str:
        """The canonical wire form (sorted keys, stable separators)."""
        return json.dumps(
            {"status": self.status, "body": self.body},
            sort_keys=True, indent=2,
        )


@dataclass(frozen=True)
class Route:
    """``pattern`` segments starting with ``<`` bind path parameters."""

    method: str
    pattern: str
    handler: str


ROUTES = (
    Route("POST", "/campaigns", "submit"),
    Route("GET", "/campaigns", "list_campaigns"),
    Route("GET", "/campaigns/<job_id>", "status"),
    Route("GET", "/campaigns/<job_id>/progress", "progress"),
    Route("GET", "/campaigns/<job_id>/result", "result"),
    Route("GET", "/campaigns/<job_id>/lineage", "lineage"),
    Route("POST", "/campaigns/<job_id>/cancel", "cancel"),
    Route("GET", "/tenants/<tenant>", "tenant_status"),
    Route("GET", "/health", "health"),
    Route("POST", "/advance", "advance"),
)


def match(method: str, path: str) -> tuple[str, dict] | None:
    """The handler name and bound path params for a request, or None."""
    parts = [piece for piece in path.split("/") if piece]
    for route in ROUTES:
        if route.method != method:
            continue
        pattern = [piece for piece in route.pattern.split("/") if piece]
        if len(pattern) != len(parts):
            continue
        bound: dict[str, str] = {}
        for expected, actual in zip(pattern, parts):
            if expected.startswith("<") and expected.endswith(">"):
                bound[expected[1:-1]] = actual
            elif expected != actual:
                break
        else:
            return route.handler, bound
    return None
