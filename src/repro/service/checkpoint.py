"""Service-level checkpoint/resume (format v7).

The whole control plane — tenant sessions, every job record, and each
admitted campaign's execution state — persists as **one** digest-checked
envelope via the same :func:`~repro.snowplow.checkpointing.save_checkpoint`
machinery single campaigns use, so corruption, truncation, and version
skew fail loudly instead of resuming from garbage.

The state is layered: the *control* layer (sessions, job specs,
progress, results, the service clock) is plain JSON that ``submit``,
``status``, and ``cancel`` read and mutate without ever building a
kernel or a loop; the *exec* layer (per-job ``loop_state`` /
``cluster_state`` payloads) is only touched by ``serve``, which
materializes runners from it.  Killing the service and restoring the
same bytes therefore replays every tenant's remaining schedule
bit-identically — the same two-independent-restores contract the PR-6
chaos gate pins for a single cluster, now for the whole fleet of
tenants at once.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import CheckpointError
from repro.snowplow.checkpointing import load_checkpoint, save_checkpoint

__all__ = [
    "SERVICE_STATE_FILE",
    "load_service",
    "save_service",
    "service_exists",
]

SERVICE_STATE_FILE = "service.json"


def _state_path(directory) -> Path:
    return Path(directory) / SERVICE_STATE_FILE


def service_exists(directory) -> bool:
    return _state_path(directory).exists()


def save_service(directory, server) -> Path:
    """Persist the whole service under ``directory``."""
    state = {"kind": "service", "server": server.state_dict()}
    return save_checkpoint(_state_path(directory), state)


def load_service(directory):
    """A :class:`~repro.service.server.ServiceServer` restored from
    ``directory``, verifying digest and format version."""
    from repro.service.server import ServiceServer

    state = load_checkpoint(_state_path(directory))
    if state.get("kind") != "service":
        raise CheckpointError(
            f"{_state_path(directory)} is not a service checkpoint "
            f"(kind={state.get('kind')!r})"
        )
    server = ServiceServer()
    server.restore(state["server"])
    return server
