"""Campaign-as-a-service: the multi-tenant control plane.

The ROADMAP's "millions of users" direction: many tenants submit
fuzzing campaigns (kernel release, config, seed) to one service, which
admission-controls them against per-tenant quotas, schedules them over
a shared worker fleet on a single virtual clock, exposes live progress
and SLO posture through :mod:`repro.observe`, and checkpoint/resumes
the *entire* service (format v7) bit-identically.

Layout::

    specs.py            CampaignSpec — the wire form of one campaign
    session_manager.py  per-tenant sessions: quotas, priorities, budgets
    runner.py           JobRunner — one campaign, isolated, runnable
    orchestrator.py     admission + deterministic fleet time-slicing
    routes.py           Request/Response objects and the route table
    server.py           ServiceServer.handle() — the in-process API
    health.py           service health snapshot + report rendering
    checkpoint.py       save_service/load_service (v7 envelope)

The correctness bar, enforced by tests and the ``service-gate`` CI job:
a campaign produces **bit-identical results** whether run standalone
via ``repro fuzz`` or multiplexed with other tenants, and a service
kill+resume replays every admitted campaign byte-for-byte.
"""

from repro.service.checkpoint import (
    SERVICE_STATE_FILE,
    load_service,
    save_service,
    service_exists,
)
from repro.service.health import format_service_health, service_health
from repro.service.orchestrator import JobRecord, Orchestrator, SubmitError
from repro.service.routes import ROUTES, Request, Response, Route, match
from repro.service.runner import JobRunner, encode_signature
from repro.service.server import ServiceServer
from repro.service.session_manager import (
    Quota,
    QuotaError,
    Session,
    SessionManager,
)
from repro.service.specs import CampaignSpec, SpecError

__all__ = [
    "CampaignSpec",
    "JobRecord",
    "JobRunner",
    "Orchestrator",
    "Quota",
    "QuotaError",
    "ROUTES",
    "Request",
    "Response",
    "Route",
    "SERVICE_STATE_FILE",
    "ServiceServer",
    "Session",
    "SessionManager",
    "SpecError",
    "SubmitError",
    "encode_signature",
    "format_service_health",
    "load_service",
    "match",
    "save_service",
    "service_exists",
    "service_health",
]
