"""The campaign orchestrator: many tenants, one fleet, one clock.

The orchestrator multiplexes admitted campaigns over a fixed-size
worker fleet on a single **service virtual clock**.  Scheduling is
event-driven and fully deterministic:

1. *Admission.*  Queued jobs are considered in ``(-priority,
   submit_seq)`` order; a job is admitted when its tenant is under
   ``max_concurrent`` and the fleet has ``spec.workers`` free slots
   (lower-priority jobs may fill slots a blocked job cannot use — the
   classic backfill compromise: strict FIFO-by-priority would idle the
   fleet, and the virtual clock makes the resulting schedule
   reproducible rather than racy).
2. *Time slicing.*  All running jobs advance together to the next event
   boundary — the earliest job completion, the caller's ``until``
   bound, or one ``time_slice`` — each job running on its *local*
   clock offset by its admission time.  Jobs are driven in job-id
   order; since jobs share no mutable state (see
   :mod:`repro.service.runner`), the drive order is invisible to
   results and exists only so the wall-clock schedule is stable.
3. *Completion.*  A job finishing frees its slots at a well-defined
   service time, which may admit queued work in the same pass.

Because every decision is a pure function of (specs, submission order,
virtual time), the whole orchestrator — sessions, job records, and each
job's execution state — checkpoints into JSON and resumes
bit-identically: two restores of the same bytes replay every tenant's
remaining schedule byte-for-byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.service.runner import JobRunner
from repro.service.session_manager import QuotaError, SessionManager
from repro.service.specs import CampaignSpec

__all__ = ["JobRecord", "Orchestrator", "SubmitError"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"


class SubmitError(Exception):
    """A submission the fleet can never run (4xx, not a server bug)."""


@dataclass
class JobRecord:
    """The control-plane view of one campaign.

    ``exec_state`` (a v6 ``loop_state``/``cluster_state`` payload) is
    only populated while the job is RUNNING and a serve pass is not
    holding the live runner; everything else is cheap JSON the status
    and health endpoints read without materializing any loops.
    """

    job_id: str
    spec: CampaignSpec
    state: str = QUEUED
    submit_seq: int = 0
    submitted_at: float = 0.0
    admitted_at: float | None = None
    finished_at: float | None = None
    cancel_requested: bool = False
    exec_state: dict | None = None
    timeseries: dict | None = None
    progress: list = field(default_factory=list)
    alerts: list = field(default_factory=list)
    result: dict | None = None
    message: str = ""

    @property
    def local_now(self) -> float:
        """How much job-local virtual time has been simulated."""
        if self.progress:
            return self.progress[-1][0]
        return 0.0

    def summary(self) -> dict:
        """The status-endpoint body (everything but bulk exec state)."""
        return {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "submitted_at": self.submitted_at,
            "admitted_at": self.admitted_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_requested,
            "local_now": self.local_now,
            "horizon": self.spec.horizon,
            "alerts": list(self.alerts),
            "message": self.message,
        }

    def to_dict(self) -> dict:
        payload = self.summary()
        payload.pop("local_now")
        payload.pop("horizon")
        payload["submit_seq"] = self.submit_seq
        payload["exec_state"] = self.exec_state
        payload["timeseries"] = self.timeseries
        payload["progress"] = list(self.progress)
        payload["result"] = self.result
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        return cls(
            job_id=payload["job_id"],
            spec=CampaignSpec.from_dict(payload["spec"]),
            state=payload["state"],
            submit_seq=int(payload["submit_seq"]),
            submitted_at=float(payload["submitted_at"]),
            admitted_at=payload["admitted_at"],
            finished_at=payload["finished_at"],
            cancel_requested=bool(payload["cancel_requested"]),
            exec_state=payload["exec_state"],
            timeseries=payload["timeseries"],
            progress=list(payload["progress"]),
            alerts=list(payload["alerts"]),
            result=payload["result"],
            message=payload.get("message", ""),
        )


class Orchestrator:
    """Schedules campaigns over the shared fleet on the service clock."""

    def __init__(
        self,
        sessions: SessionManager,
        fleet_size: int = 4,
        time_slice: float = 1800.0,
    ):
        if fleet_size < 1:
            raise SubmitError(f"fleet_size must be >= 1, got {fleet_size}")
        if time_slice <= 0:
            raise SubmitError(f"time_slice must be > 0, got {time_slice}")
        self.sessions = sessions
        self.fleet_size = fleet_size
        self.time_slice = time_slice
        self.now = 0.0
        self.jobs: dict[str, JobRecord] = {}
        self._next_job = 1
        self._next_seq = 0

    # ----- queries -----

    def get(self, job_id: str) -> JobRecord | None:
        return self.jobs.get(job_id)

    def in_state(self, *states: str) -> list[JobRecord]:
        return sorted(
            (job for job in self.jobs.values() if job.state in states),
            key=lambda job: job.submit_seq,
        )

    @property
    def slots_used(self) -> int:
        return sum(job.spec.workers for job in self.in_state(RUNNING))

    @property
    def slots_free(self) -> int:
        return self.fleet_size - self.slots_used

    # ----- submission / cancellation (control ops, no loops) -----

    def submit(self, spec: CampaignSpec) -> JobRecord:
        """Admission-control a spec into the queue (charging its budget
        reservation), or raise :class:`SubmitError`/``QuotaError``."""
        if spec.workers > self.fleet_size:
            raise SubmitError(
                f"campaign needs {spec.workers} workers but the fleet "
                f"has {self.fleet_size}"
            )
        self.sessions.ensure(spec.tenant)
        self.sessions.reserve(spec.tenant, spec.cost_hours)
        job = JobRecord(
            job_id=f"job-{self._next_job}",
            spec=spec,
            submit_seq=self._next_seq,
            submitted_at=self.now,
        )
        self._next_job += 1
        self._next_seq += 1
        self.jobs[job.job_id] = job
        return job

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job immediately (full refund) or flag a
        running one for cancellation at its next slice boundary."""
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if job.state == QUEUED:
            job.state = CANCELLED
            job.finished_at = self.now
            job.message = "cancelled while queued"
            self.sessions.refund(job.spec.tenant, job.spec.cost_hours)
            self.sessions.note_cancelled_queued(job.spec.tenant)
        elif job.state == RUNNING:
            job.cancel_requested = True
            job.message = "cancellation requested"
        else:
            raise SubmitError(
                f"{job_id} is already {job.state}, cannot cancel"
            )
        return job

    # ----- the scheduler -----

    def advance(self, until: float | None = None) -> dict:
        """Drive the service clock forward; returns a progress summary.

        ``until`` bounds the service virtual time (``None`` runs until
        every admitted job finishes).  Still-running jobs are
        de-materialized back into their records' ``exec_state`` on
        return, so the orchestrator itself stays fully serializable
        between calls.
        """
        bound = math.inf if until is None else float(until)
        runners: dict[str, JobRunner] = {}
        for job in self.in_state(RUNNING):
            runners[job.job_id] = self._materialize(job)
        while True:
            self._apply_cancellations(runners)
            self._admit(runners)
            running = self.in_state(RUNNING)
            if not running:
                # Nothing runnable: with free slots the queue would have
                # been admitted above, so the queue is empty too.
                break
            target = min(
                min(
                    job.admitted_at + runners[job.job_id].horizon
                    for job in running
                ),
                self.now + self.time_slice,
                bound,
            )
            for job in running:
                runners[job.job_id].run_until(target - job.admitted_at)
            self.now = max(self.now, target)
            for job in running:
                runner = runners[job.job_id]
                if target >= job.admitted_at + runner.horizon:
                    runner.run_out()
                if runner.done:
                    self._finish(job, runner)
                    del runners[job.job_id]
            if self.now >= bound:
                break
        self._apply_cancellations(runners)
        for job_id, runner in runners.items():
            job = self.jobs[job_id]
            job.exec_state = runner.state_dict()
            job.progress = runner.progress()
            job.alerts = runner.alerts()
        return {
            "now": self.now,
            "running": [job.job_id for job in self.in_state(RUNNING)],
            "queued": [job.job_id for job in self.in_state(QUEUED)],
            "done": [job.job_id for job in self.in_state(DONE)],
            "cancelled": [job.job_id for job in self.in_state(CANCELLED)],
        }

    def _admit(self, runners: dict[str, JobRunner]) -> None:
        """Admit queued jobs into free slots, priority first."""
        while True:
            queued = sorted(
                self.in_state(QUEUED),
                key=lambda job: (
                    -self.sessions.get(job.spec.tenant).quota.priority,
                    job.submit_seq,
                ),
            )
            admitted = False
            free = self.slots_free
            for job in queued:
                session = self.sessions.get(job.spec.tenant)
                if session.running >= session.quota.max_concurrent:
                    continue
                if job.spec.workers > free:
                    continue
                job.state = RUNNING
                job.admitted_at = self.now
                job.message = ""
                self.sessions.admit(job.spec.tenant)
                runners[job.job_id] = self._materialize(job)
                admitted = True
                break
            if not admitted:
                return

    def _apply_cancellations(self, runners: dict[str, JobRunner]) -> None:
        for job in self.in_state(RUNNING):
            if not job.cancel_requested:
                continue
            runner = runners.pop(job.job_id)
            job.state = CANCELLED
            job.finished_at = self.now
            job.message = (
                f"cancelled mid-run at local t={runner.now:.0f}s"
            )
            job.result = runner.finalize()
            job.result["partial"] = True
            job.progress = runner.progress()
            job.alerts = runner.alerts()
            job.timeseries = runner.observer.timeseries.state_dict()
            job.exec_state = None
            unused = job.spec.workers * max(
                0.0, (runner.horizon - runner.now)
            ) / 3600.0
            self.sessions.refund(job.spec.tenant, unused)
            self.sessions.release(job.spec.tenant, cancelled=True)

    def _finish(self, job: JobRecord, runner: JobRunner) -> None:
        job.result = runner.finalize()
        job.state = DONE
        job.finished_at = self.now
        job.progress = runner.progress()
        job.alerts = runner.alerts()
        job.timeseries = runner.observer.timeseries.state_dict()
        job.exec_state = None
        job.message = ""
        self.sessions.release(job.spec.tenant)

    def _materialize(self, job: JobRecord) -> JobRunner:
        runner = JobRunner(job.spec)
        if job.exec_state is not None:
            runner.restore(job.exec_state)
        return runner

    # ----- checkpointing (format v7 control layer) -----

    def state_dict(self) -> dict:
        return {
            "now": self.now,
            "fleet_size": self.fleet_size,
            "time_slice": self.time_slice,
            "next_job": self._next_job,
            "next_seq": self._next_seq,
            "jobs": [
                self.jobs[job_id].to_dict()
                for job_id in sorted(
                    self.jobs, key=lambda jid: self.jobs[jid].submit_seq
                )
            ],
        }

    def restore(self, state: dict) -> None:
        self.now = float(state["now"])
        self.fleet_size = int(state["fleet_size"])
        self.time_slice = float(state["time_slice"])
        self._next_job = int(state["next_job"])
        self._next_seq = int(state["next_seq"])
        self.jobs = {}
        for payload in state["jobs"]:
            job = JobRecord.from_dict(payload)
            self.jobs[job.job_id] = job
