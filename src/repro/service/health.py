"""The service health view: fleet, tenants, campaigns, SLO posture.

:func:`service_health` assembles a JSON-ready snapshot from control
state alone (no loops are materialized), and
:func:`format_service_health` renders it in the ``observe report``
style — sections, aligned tables, and a coverage sparkline per
campaign.  Both are pure functions of the service state, so the report
a CI job uploads is byte-reproducible.
"""

from __future__ import annotations

from repro.observe import sparkline

__all__ = ["format_service_health", "service_health"]


def service_health(server) -> dict:
    """A JSON-ready snapshot of the whole control plane."""
    orchestrator = server.orchestrator
    jobs = orchestrator.in_state("queued", "running", "done", "cancelled")
    sessions = []
    for session in server.sessions.sessions():
        payload = session.to_dict()
        payload["budget_remaining"] = session.budget_remaining
        payload["alerts"] = sum(
            len(job.alerts) for job in jobs
            if job.spec.tenant == session.tenant
        )
        sessions.append(payload)
    return {
        "now": orchestrator.now,
        "fleet": {
            "size": orchestrator.fleet_size,
            "slots_used": orchestrator.slots_used,
            "slots_free": orchestrator.slots_free,
            "time_slice": orchestrator.time_slice,
        },
        "sessions": sessions,
        "jobs": [
            {
                **job.summary(),
                "final_edges": (
                    job.result.get("final_edges")
                    if job.result is not None else None
                ),
                "edges_timeline": [row[1] for row in job.progress],
            }
            for job in jobs
        ],
    }


def format_service_health(health: dict) -> str:
    """The human-facing service report for a health snapshot."""
    fleet = health["fleet"]
    lines = [
        "=== service health ===",
        f"service clock: t={health['now'] / 3600.0:.2f}h   "
        f"fleet: {fleet['slots_used']}/{fleet['size']} slots busy "
        f"(slice {fleet['time_slice']:.0f}s)",
        "",
        "--- tenants ---",
        f"{'tenant':<12} {'prio':>4} {'run':>3} {'done':>4} {'canc':>4} "
        f"{'rej':>3} {'budget left':>16} {'alerts':>6}",
    ]
    for session in health["sessions"]:
        quota = session["quota"]
        lines.append(
            f"{session['tenant']:<12} {quota['priority']:>4d} "
            f"{session['running']:>3d} {session['completed']:>4d} "
            f"{session['cancelled']:>4d} {session['rejected']:>3d} "
            f"{session['budget_remaining']:>7.1f}/{quota['budget_hours']:<8.1f} "
            f"{session['alerts']:>6d}"
        )
    lines += ["", "--- campaigns ---"]
    if not health["jobs"]:
        lines.append("(none submitted)")
    for job in health["jobs"]:
        horizon = job["horizon"] or 1.0
        pct = 100.0 * min(job["local_now"] / horizon, 1.0)
        edges = (
            job["final_edges"]
            if job["final_edges"] is not None
            else (job["edges_timeline"][-1] if job["edges_timeline"] else 0)
        )
        lines.append(
            f"{job['job_id']:<8} {job['tenant']:<12} {job['state']:<9} "
            f"{pct:5.1f}% of {horizon / 3600.0:4.1f}h  "
            f"edges {edges:>6}  {sparkline(job['edges_timeline']):<24}"
        )
        if job["alerts"]:
            worst = sorted(
                job["alerts"],
                key=lambda alert: (alert["severity"] != "critical",
                                   alert["time"]),
            )[0]
            lines.append(
                f"         alerts: {len(job['alerts'])} "
                f"(first {worst['severity']}: {worst['rule']})"
            )
        if job["message"]:
            lines.append(f"         note: {job['message']}")
    lines.append("")
    return "\n".join(lines)
