"""Per-tenant sessions: quotas, priorities, and budget accounting.

A :class:`Session` is the control plane's ledger for one tenant: how
much of the fleet they may hold at once (``max_concurrent`` running
campaigns), how many worker-hours of virtual execution they may spend
in total (``budget_hours``), and how urgently their queued work is
admitted (``priority``, higher first).

Budgets are **reserved at submission** (a campaign's full
``workers × hours`` cost is charged when it is accepted) and refunded
pro rata on cancellation — admission control that never over-commits is
worth more to a shared fleet than exact post-hoc billing.  All
accounting is in virtual worker-hours, so it is deterministic and
byte-stable across checkpoint/resume like everything else here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Quota", "QuotaError", "Session", "SessionManager"]


class QuotaError(Exception):
    """A submission the tenant's quota cannot admit (4xx, not a bug)."""


@dataclass(frozen=True)
class Quota:
    """A tenant's standing limits."""

    max_concurrent: int = 2
    budget_hours: float = 96.0
    priority: int = 0

    def __post_init__(self):
        if self.max_concurrent < 1:
            raise QuotaError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.budget_hours <= 0:
            raise QuotaError(
                f"budget_hours must be > 0, got {self.budget_hours}"
            )

    def to_dict(self) -> dict:
        return {
            "max_concurrent": self.max_concurrent,
            "budget_hours": self.budget_hours,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Quota":
        return cls(
            max_concurrent=int(payload["max_concurrent"]),
            budget_hours=float(payload["budget_hours"]),
            priority=int(payload["priority"]),
        )


class Session:
    """One tenant's ledger."""

    def __init__(self, tenant: str, quota: Quota | None = None):
        self.tenant = tenant
        self.quota = quota if quota is not None else Quota()
        self.charged_hours = 0.0
        self.refunded_hours = 0.0
        self.running = 0
        self.submitted = 0
        self.completed = 0
        self.cancelled = 0
        self.rejected = 0

    @property
    def budget_remaining(self) -> float:
        return self.quota.budget_hours - self.charged_hours + self.refunded_hours

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "quota": self.quota.to_dict(),
            "charged_hours": self.charged_hours,
            "refunded_hours": self.refunded_hours,
            "running": self.running,
            "submitted": self.submitted,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Session":
        session = cls(payload["tenant"], Quota.from_dict(payload["quota"]))
        session.charged_hours = float(payload["charged_hours"])
        session.refunded_hours = float(payload["refunded_hours"])
        session.running = int(payload["running"])
        session.submitted = int(payload["submitted"])
        session.completed = int(payload["completed"])
        session.cancelled = int(payload["cancelled"])
        session.rejected = int(payload["rejected"])
        return session


class SessionManager:
    """The tenant registry, keyed by tenant name."""

    def __init__(self):
        self._sessions: dict[str, Session] = {}

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._sessions

    def get(self, tenant: str) -> Session | None:
        return self._sessions.get(tenant)

    def ensure(self, tenant: str, quota: Quota | None = None) -> Session:
        """The tenant's session, created on first sight.

        An explicit ``quota`` on a later call re-declares the tenant's
        limits (already-charged hours are kept, so shrinking a budget
        below current usage simply blocks further submissions).
        """
        session = self._sessions.get(tenant)
        if session is None:
            session = Session(tenant, quota)
            self._sessions[tenant] = session
        elif quota is not None:
            session.quota = quota
        return session

    def sessions(self) -> list[Session]:
        return [self._sessions[name] for name in sorted(self._sessions)]

    # ----- accounting (called by the orchestrator) -----

    def reserve(self, tenant: str, hours: float) -> None:
        """Charge ``hours`` against the budget, or raise QuotaError."""
        session = self._sessions[tenant]
        if hours > session.budget_remaining + 1e-9:
            session.rejected += 1
            raise QuotaError(
                f"tenant {tenant!r} budget exhausted: campaign needs "
                f"{hours:.2f} worker-hours, "
                f"{session.budget_remaining:.2f} remaining of "
                f"{session.quota.budget_hours:.2f}"
            )
        session.charged_hours += hours
        session.submitted += 1

    def refund(self, tenant: str, hours: float) -> None:
        self._sessions[tenant].refunded_hours += max(0.0, hours)

    def admit(self, tenant: str) -> None:
        self._sessions[tenant].running += 1

    def release(self, tenant: str, cancelled: bool = False) -> None:
        session = self._sessions[tenant]
        session.running -= 1
        if cancelled:
            session.cancelled += 1
        else:
            session.completed += 1

    def note_cancelled_queued(self, tenant: str) -> None:
        self._sessions[tenant].cancelled += 1

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        return {
            "sessions": [
                session.to_dict() for session in self.sessions()
            ],
        }

    def restore(self, state: dict) -> None:
        self._sessions = {}
        for payload in state["sessions"]:
            session = Session.from_dict(payload)
            self._sessions[session.tenant] = session
