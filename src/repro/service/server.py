"""The in-process API server: dispatch, handlers, service state.

One :class:`ServiceServer` owns the whole control plane — the tenant
:class:`~repro.service.session_manager.SessionManager` and the
:class:`~repro.service.orchestrator.Orchestrator` — and exposes it
through :meth:`handle`, the single entry point every client (the CLI's
``repro submit/status/cancel``, tests, CI) drives with
:class:`~repro.service.routes.Request` objects.

Handlers are thin: they translate between wire payloads and the
orchestrator/session API, mapping domain errors to 4xx responses.  The
server itself is serializable (:meth:`state_dict`/:meth:`restore`),
which the service checkpoint (:mod:`repro.service.checkpoint`) wraps in
the digest-checked v7 envelope.
"""

from __future__ import annotations

from repro.observe import TimeSeriesStore
from repro.service.orchestrator import (
    DONE,
    Orchestrator,
    SubmitError,
)
from repro.service.routes import Request, Response, match
from repro.service.session_manager import Quota, QuotaError, SessionManager
from repro.service.specs import CampaignSpec, SpecError

__all__ = ["ServiceServer"]


class ServiceServer:
    """The multi-tenant campaign service, minus the transport."""

    def __init__(self, fleet_size: int = 4, time_slice: float = 1800.0):
        self.sessions = SessionManager()
        self.orchestrator = Orchestrator(
            self.sessions, fleet_size=fleet_size, time_slice=time_slice
        )

    # ----- dispatch -----

    def handle(self, request: Request) -> Response:
        resolved = match(request.method, request.path)
        if resolved is None:
            return Response(404, {
                "error": f"no route for {request.method} {request.path}",
            })
        handler_name, path_params = resolved
        handler = getattr(self, f"_handle_{handler_name}")
        try:
            return handler(dict(request.params), **path_params)
        except (SpecError, QuotaError, SubmitError) as error:
            status = 403 if isinstance(error, QuotaError) else 400
            return Response(status, {"error": str(error)})

    # ----- handlers -----

    def _handle_submit(self, params: dict) -> Response:
        quota = None
        overrides = {
            key: params.pop(key)
            for key in ("max_concurrent", "budget_hours", "priority")
            if params.get(key) is not None
        }
        params.pop("max_concurrent", None)
        params.pop("budget_hours", None)
        params.pop("priority", None)
        spec = CampaignSpec.from_dict(params)
        if overrides:
            base = self.sessions.get(spec.tenant)
            current = base.quota if base is not None else Quota()
            quota = Quota(
                max_concurrent=int(
                    overrides.get("max_concurrent", current.max_concurrent)
                ),
                budget_hours=float(
                    overrides.get("budget_hours", current.budget_hours)
                ),
                priority=int(overrides.get("priority", current.priority)),
            )
        self.sessions.ensure(spec.tenant, quota)
        job = self.orchestrator.submit(spec)
        return Response(201, {"job": job.summary()})

    def _handle_list_campaigns(self, params: dict) -> Response:
        tenant = params.get("tenant")
        jobs = [
            job.summary()
            for job in self.orchestrator.in_state(
                "queued", "running", "done", "cancelled"
            )
            if tenant is None or job.spec.tenant == tenant
        ]
        return Response(200, {"jobs": jobs})

    def _handle_status(self, params: dict, job_id: str) -> Response:
        job = self.orchestrator.get(job_id)
        if job is None:
            return Response(404, {"error": f"no campaign {job_id!r}"})
        return Response(200, {"job": job.summary()})

    def _handle_progress(self, params: dict, job_id: str) -> Response:
        """The streaming endpoint: rows (and optionally time-series
        points) strictly after ``since``, so clients poll with the last
        timestamp they hold and receive only what is new."""
        job = self.orchestrator.get(job_id)
        if job is None:
            return Response(404, {"error": f"no campaign {job_id!r}"})
        since = params.get("since")
        since = float(since) if since is not None else None
        rows = [
            row for row in job.progress
            if since is None or row[0] > since
        ]
        body = {
            "job_id": job_id,
            "state": job.state,
            "local_now": job.local_now,
            "horizon": job.spec.horizon,
            "observations": rows,
        }
        pattern = params.get("series")
        if pattern is not None:
            store = self._job_timeseries(job)
            body["series"] = (
                store.slice(pattern, since) if store is not None else {}
            )
        return Response(200, body)

    def _handle_result(self, params: dict, job_id: str) -> Response:
        job = self.orchestrator.get(job_id)
        if job is None:
            return Response(404, {"error": f"no campaign {job_id!r}"})
        if job.result is None:
            return Response(409, {
                "error": f"{job_id} is {job.state}, no result yet",
                "state": job.state,
            })
        return Response(200, {
            "job_id": job_id, "state": job.state, "result": job.result,
        })

    def _handle_lineage(self, params: dict, job_id: str) -> Response:
        """Per-tenant lineage: the job's attribution table and lineage
        summary.  Served from the finished result payload, or rebuilt
        from the job's own exec-state checkpoint while it runs — each
        tenant's ledger comes only from its own campaign state, so
        lineage stays isolated exactly like the rest of exec state."""
        from repro.observe import attribution_table

        job = self.orchestrator.get(job_id)
        if job is None:
            return Response(404, {"error": f"no campaign {job_id!r}"})
        if job.result is not None:
            return Response(200, {
                "job_id": job_id,
                "state": job.state,
                "attribution": job.result.get("attribution", []),
                "summary": job.result.get("lineage_summary", {}),
            })
        log = self._job_provenance(job)
        if log is None:
            return Response(409, {
                "error": f"{job_id} is {job.state}, no lineage yet",
                "state": job.state,
            })
        return Response(200, {
            "job_id": job_id,
            "state": job.state,
            "attribution": attribution_table(log),
            "summary": log.summary(),
        })

    def _handle_cancel(self, params: dict, job_id: str) -> Response:
        try:
            job = self.orchestrator.cancel(job_id)
        except KeyError:
            return Response(404, {"error": f"no campaign {job_id!r}"})
        return Response(200, {"job": job.summary()})

    def _handle_tenant_status(self, params: dict, tenant: str) -> Response:
        session = self.sessions.get(tenant)
        if session is None:
            return Response(404, {"error": f"no tenant {tenant!r}"})
        body = session.to_dict()
        body["budget_remaining"] = session.budget_remaining
        body["jobs"] = [
            job.job_id
            for job in self.orchestrator.in_state(
                "queued", "running", "done", "cancelled"
            )
            if job.spec.tenant == tenant
        ]
        return Response(200, body)

    def _handle_health(self, params: dict) -> Response:
        from repro.service.health import service_health

        return Response(200, service_health(self))

    def _handle_advance(self, params: dict) -> Response:
        until = params.get("until")
        summary = self.orchestrator.advance(
            float(until) if until is not None else None
        )
        return Response(200, summary)

    # ----- helpers -----

    def _job_timeseries(self, job) -> TimeSeriesStore | None:
        """A job's per-campaign TimeSeriesStore, rebuilt from control
        state: the finish-time snapshot for finished jobs, the observer
        slice of the exec checkpoint for running ones — never by
        materializing loops."""
        state = job.timeseries
        if state is None and job.exec_state is not None:
            observer = job.exec_state["state"].get("observer")
            if observer is not None:
                state = observer.get("timeseries")
        if state is None:
            return None
        store = TimeSeriesStore()
        store.restore(state)
        return store

    def _job_provenance(self, job):
        """A running job's merged ProvenanceLog, rebuilt from its exec
        checkpoint (loop ``provenance`` slices plus the hub's) — never
        by materializing loops."""
        from repro.observe import ProvenanceLog

        if job.exec_state is None:
            return None
        kind = job.exec_state.get("kind")
        state = job.exec_state.get("state", {})
        logs = []

        def from_state(payload):
            if payload is None:
                return
            log = ProvenanceLog()
            log.restore(payload)
            logs.append(log)

        if kind == "loop":
            from_state(state.get("provenance"))
        elif kind == "cluster":
            for worker in state.get("workers", []):
                from_state(worker.get("loop", {}).get("provenance"))
            from_state(state.get("hub", {}).get("provenance"))
        if not logs:
            return None
        return ProvenanceLog.merge(logs)

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        return {
            "sessions": self.sessions.state_dict(),
            "orchestrator": self.orchestrator.state_dict(),
        }

    def restore(self, state: dict) -> None:
        self.sessions.restore(state["sessions"])
        self.orchestrator.restore(state["orchestrator"])

    # ----- convenience (what most in-process callers want) -----

    def completed_jobs(self) -> list:
        return self.orchestrator.in_state(DONE)
