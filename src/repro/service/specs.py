"""Campaign specifications: what a tenant submits to the control plane.

A :class:`CampaignSpec` is the wire form of one `repro fuzz` invocation
— kernel release, localizer mode, horizon, seed, fleet shape — plus the
tenant it bills to.  The spec is deliberately *complete*: every input
that feeds the deterministic simulation is either in the spec or derived
from it, which is what lets the orchestrator rebuild a job's loops from
the spec alone (checkpoint restores carry only simulation state, never
code or configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel import KNOWN_SIZES

__all__ = ["CampaignSpec", "SpecError"]

MODES = ("oracle", "baseline", "model")


class SpecError(ValueError):
    """A submitted spec that can never run (4xx, not a server bug)."""


@dataclass(frozen=True)
class CampaignSpec:
    """One tenant campaign, byte-serializable and hashable-by-value.

    ``faults`` is an optional :meth:`repro.faults.FaultPlan.to_dict`
    payload: tenants attach degradation schedules (inference outages,
    worker kills) to their own campaigns, and the service reports the
    resulting tenant-visible degradation in the job result.
    """

    tenant: str
    kernel: str = "6.8"
    kernel_seed: int = 1
    size: str = "default"
    mode: str = "oracle"
    model: str | None = None
    hours: float = 1.0
    seed: int = 0
    seed_corpus: int = 100
    workers: int = 1
    shards: int = 1
    batch_size: int | None = None
    heartbeat_deadline: float | None = None
    faults: dict | None = field(default=None, hash=False)

    def __post_init__(self):
        if not self.tenant:
            raise SpecError("spec needs a tenant")
        if self.size not in KNOWN_SIZES:
            raise SpecError(
                f"unknown kernel size {self.size!r} "
                f"(known: {', '.join(sorted(KNOWN_SIZES))})"
            )
        if self.mode not in MODES:
            raise SpecError(
                f"unknown mode {self.mode!r} (known: {', '.join(MODES)})"
            )
        if self.mode == "model" and not self.model:
            raise SpecError("mode 'model' needs a PMM checkpoint path")
        if self.hours <= 0:
            raise SpecError(f"hours must be > 0, got {self.hours}")
        if self.workers < 1:
            raise SpecError(f"workers must be >= 1, got {self.workers}")
        if self.shards < 1:
            raise SpecError(f"shards must be >= 1, got {self.shards}")
        if self.seed_corpus < 1:
            raise SpecError(
                f"seed_corpus must be >= 1, got {self.seed_corpus}"
            )

    @property
    def horizon(self) -> float:
        """Virtual seconds of fuzzing per worker."""
        return self.hours * 3600.0

    @property
    def cost_hours(self) -> float:
        """Worker-hours this campaign reserves against the tenant budget."""
        return self.workers * self.hours

    def to_dict(self) -> dict:
        payload = {
            "tenant": self.tenant,
            "kernel": self.kernel,
            "kernel_seed": self.kernel_seed,
            "size": self.size,
            "mode": self.mode,
            "model": self.model,
            "hours": self.hours,
            "seed": self.seed,
            "seed_corpus": self.seed_corpus,
            "workers": self.workers,
            "shards": self.shards,
            "batch_size": self.batch_size,
            "heartbeat_deadline": self.heartbeat_deadline,
            "faults": self.faults,
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        known = {
            "tenant", "kernel", "kernel_seed", "size", "mode", "model",
            "hours", "seed", "seed_corpus", "workers", "shards",
            "batch_size", "heartbeat_deadline", "faults",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(f"unknown spec field(s): {', '.join(unknown)}")
        try:
            return cls(**payload)
        except TypeError as error:
            raise SpecError(str(error))
