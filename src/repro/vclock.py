"""Virtual time accounting.

The paper's experiments are expressed in wall-clock hours on GCP
machines.  This reproduction replaces wall time with a virtual clock:
each simulated operation (test execution, VM reset, model inference, ...)
charges its cost in virtual seconds.  Coverage-over-time curves and
time-to-target results are then functions of *how much useful work per
unit cost* each strategy performs, which is the quantity the paper
actually compares.

Two cost models ship:

- :meth:`CostModel.scaled` (the default) keeps the paper's cost *ratios*
  but slows the virtual test rate to laptop scale, so a "24-hour"
  campaign is tens of thousands of Python-simulated executions instead
  of the paper's ~33 million.  In particular the PMM inference latency
  stays ≈270 test-execution slots — the ratio that makes asynchronous
  inference (§3.4) necessary.
- :meth:`CostModel.paper` uses the paper's measured absolute rates
  (~390 tests/s fleet-wide, 0.69 s inference) for the §5.5 performance
  characterisation, where no long campaign is run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VirtualClock", "CostModel"]

# Measured in the paper (§5.5): fleet test throughput and PMM latency.
_PAPER_TESTS_PER_SECOND = 390.0
_PAPER_INFERENCE_LATENCY = 0.69

# The scaled model's virtual seconds per test: one "24-hour" campaign is
# 86400 / _SCALED_TEST_COST executions.
_SCALED_TEST_COST = 3.0


@dataclass
class CostModel:
    """Virtual-second cost of each simulated operation."""

    test_execution: float = _SCALED_TEST_COST
    vm_reset: float = 4.0 * _SCALED_TEST_COST
    mutation: float = 0.1 * _SCALED_TEST_COST
    # Latency of one PMM inference; ≈270 test slots, per the paper's
    # 0.69 s at 390 tests/s.
    inference_latency: float = (
        _PAPER_INFERENCE_LATENCY * _PAPER_TESTS_PER_SECOND * _SCALED_TEST_COST
    )
    # What the fuzz loop itself is charged per inference: 0 when
    # inference is served asynchronously off the critical path (§3.4).
    inference_charge: float = 0.0
    triage: float = 20.0 * _SCALED_TEST_COST
    # One corpus-hub sync round-trip (push + pull against the syz-hub
    # analogue); a couple of test slots, as a hub RPC plus corpus diff
    # costs a fleet worker.
    hub_sync: float = 2.0 * _SCALED_TEST_COST

    @classmethod
    def scaled(cls) -> "CostModel":
        """The default laptop-scale model (paper ratios preserved)."""
        return cls()

    @classmethod
    def paper(cls) -> "CostModel":
        """The paper's absolute measured rates (§5.5)."""
        test_cost = 1.0 / _PAPER_TESTS_PER_SECOND
        return cls(
            test_execution=test_cost,
            vm_reset=4.0 * test_cost,
            mutation=0.1 * test_cost,
            inference_latency=_PAPER_INFERENCE_LATENCY,
            inference_charge=0.0,
            triage=20.0 * test_cost,
            hub_sync=2.0 * test_cost,
        )

    def blocking_inference(self) -> "CostModel":
        """A copy where inference blocks the fuzz loop (ablation)."""
        return CostModel(
            test_execution=self.test_execution,
            vm_reset=self.vm_reset,
            mutation=self.mutation,
            inference_latency=self.inference_latency,
            inference_charge=self.inference_latency,
            triage=self.triage,
            hub_sync=self.hub_sync,
        )


@dataclass
class VirtualClock:
    """A monotonically advancing virtual clock with a horizon."""

    horizon: float = float("inf")
    now: float = 0.0
    charges: dict[str, float] = field(default_factory=dict)

    def advance(self, seconds: float, label: str = "other") -> None:
        """Advance the clock, attributing the time to ``label``."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self.now += seconds
        self.charges[label] = self.charges.get(label, 0.0) + seconds

    def expired(self) -> bool:
        """True once the clock has reached its horizon."""
        return self.now >= self.horizon

    def remaining(self) -> float:
        """Virtual seconds left before the horizon."""
        return max(0.0, self.horizon - self.now)
