"""Live PMM model-quality telemetry.

Table 1 scores the selector offline against dataset ground truth; this
module scores it **online**, against what the campaign actually did with
its predictions.  For every inference result that becomes a mutation
burst the tracker records, at burst retirement:

- ``predicted`` — the ≤ k target blocks the query asked the model to
  reach (k = ``SnowplowConfig.max_targets``);
- ``hit`` — the subset of those targets the burst's own mutations
  covered (credited only on executions where global block coverage
  grew, so hits reached first by other workers don't count);
- ``gained`` — how many new blocks the burst discovered in total.

Scoring reuses :func:`repro.pmm.metrics.score_sets` verbatim: the truth
set is ``hit`` plus one anonymous marker per unpredicted gained block,
so **precision@k** = share of predicted targets realized and
**recall@k** = share of the burst's realized yield the prediction
explains, with the same empty-set conventions as Table 1.

Everything lands in ``mq.*`` registry series labeled with the kernel
release (and worker), so per-release drift (6.8-trained model deployed
on 6.9/6.10) falls out of grouping one snapshot — or several snapshots
— by the ``kernel`` label.  Acceptance rate (non-empty predictions /
completed) and heuristic-fallback share (from the existing ``fuzz.*``
counters) complete the §3.4 health picture.
"""

from __future__ import annotations

__all__ = [
    "ModelQualityTracker",
    "drift_summary",
    "format_model_quality",
    "model_quality_summary",
]

#: per-burst score sums carried as gauges (means = sum / bursts_scored)
_SCORE_GAUGES = ("precision", "recall", "f1", "jaccard")


def _release_key(release: str):
    """Sort kernel releases numerically: 6.8 < 6.9 < 6.10."""
    parts = release.split(".")
    try:
        return (0, tuple(int(part) for part in parts))
    except ValueError:
        return (1, tuple(parts))


class ModelQualityTracker:
    """Online localizer scoring for one loop, writing ``mq.*`` series."""

    def __init__(self, registry, kernel: str, worker: int | None = None):
        labels = {"kernel": kernel}
        if worker is not None:
            labels["worker"] = worker
        self._predictions = registry.counter("mq.predictions", **labels)
        self._accepted = registry.counter("mq.predictions_accepted", **labels)
        self._scored = registry.counter("mq.bursts_scored", **labels)
        self._targets_predicted = registry.counter(
            "mq.targets_predicted", **labels
        )
        self._targets_hit = registry.counter("mq.targets_hit", **labels)
        self._blocks_gained = registry.counter("mq.blocks_gained", **labels)
        self._sums = {
            name: registry.gauge(f"mq.{name}_sum", **labels)
            for name in _SCORE_GAUGES
        }

    def note_prediction(self, accepted: bool) -> None:
        """One completed inference result; ``accepted`` = non-empty paths."""
        self._predictions.inc()
        if accepted:
            self._accepted.inc()

    def score_burst(self, predicted: set[int], hit: set[int],
                    gained_blocks: int) -> None:
        """Score one retired burst against its realized coverage."""
        # Deferred: repro.pmm imports repro.observe for its stats views,
        # so a module-level import here would be circular.
        from repro.pmm.metrics import score_sets

        unexplained = max(0, gained_blocks - len(hit))
        # Anonymous markers for gained-but-unpredicted blocks keep
        # score_sets' denominators honest without tracking block ids.
        truth = set(hit) | {-(index + 1) for index in range(unexplained)}
        precision, recall, f1, jaccard = score_sets(set(predicted), truth)
        self._scored.inc()
        self._targets_predicted.inc(len(predicted))
        self._targets_hit.inc(len(hit))
        self._blocks_gained.inc(gained_blocks)
        for name, value in zip(
            _SCORE_GAUGES, (precision, recall, f1, jaccard)
        ):
            gauge = self._sums[name]
            gauge.set(gauge.value + value)


# ----- snapshot-side aggregation -----

def _accumulate(stats: dict, field: str, value) -> None:
    stats[field] = stats.get(field, 0) + value


def model_quality_summary(snapshot: dict) -> dict[str, dict]:
    """Per-kernel-release quality stats from a canonical snapshot.

    Accepts the ``{counters, gauges, histograms}`` shape that
    ``metrics.json`` (and ``Observer.export``) carries; workers are
    summed within each release.  Returns ``{release: stats}`` where
    stats holds predictions/acceptance/precision/recall/f1/jaccard/
    fallback-share, ready for :func:`format_model_quality`.
    """
    from repro.observe.metrics import parse_series_key

    per_kernel: dict[str, dict] = {}
    fallbacks = 0
    submitted = 0
    for section in ("counters", "gauges"):
        for key, value in snapshot.get(section, {}).items():
            name, labels = parse_series_key(key)
            if name == "fuzz.heuristic_fallbacks":
                fallbacks += value
            elif name == "fuzz.inference_submitted":
                submitted += value
            if not name.startswith("mq."):
                continue
            release = str(labels.get("kernel", "?"))
            stats = per_kernel.setdefault(release, {})
            _accumulate(stats, name[len("mq."):], value)
    for stats in per_kernel.values():
        predictions = stats.get("predictions", 0)
        scored = stats.get("bursts_scored", 0)
        stats["acceptance_rate"] = (
            stats.get("predictions_accepted", 0) / predictions
            if predictions else 0.0
        )
        for name in _SCORE_GAUGES:
            stats[name] = (
                stats.pop(f"{name}_sum", 0.0) / scored if scored else 0.0
            )
        stats["target_hit_rate"] = (
            stats.get("targets_hit", 0) / stats["targets_predicted"]
            if stats.get("targets_predicted") else 0.0
        )
        queries = submitted + fallbacks
        stats["fallback_share"] = fallbacks / queries if queries else 0.0
    return dict(
        sorted(per_kernel.items(), key=lambda item: _release_key(item[0]))
    )


def drift_summary(summaries: dict[str, dict]) -> dict[str, dict]:
    """Score drift of each release relative to the first (train) release.

    ``summaries`` maps release → stats (as one or more
    :func:`model_quality_summary` results, merged by the caller).  The
    reference is the lowest release present — the paper trains on 6.8
    and deploys on 6.9/6.10, so drift reads as "how much quality the
    model loses on kernels it never saw".
    """
    if not summaries:
        return {}
    releases = sorted(summaries, key=_release_key)
    reference = summaries[releases[0]]
    drift: dict[str, dict] = {}
    for release in releases[1:]:
        stats = summaries[release]
        drift[release] = {
            name: stats.get(name, 0.0) - reference.get(name, 0.0)
            for name in (*_SCORE_GAUGES, "acceptance_rate")
        }
    return drift


def format_model_quality(summaries: dict[str, dict]) -> str:
    """Human-facing table: one row per kernel release, plus drift."""
    if not summaries:
        return "model quality: no mq.* series (baseline or untracked run)"
    lines = [
        "model quality (online, per kernel release)",
        f"  {'release':<8} {'preds':>6} {'accept':>7} {'prec@k':>7} "
        f"{'rec@k':>6} {'f1':>6} {'hits':>5} {'fallback':>9}",
    ]
    for release in sorted(summaries, key=_release_key):
        stats = summaries[release]
        lines.append(
            f"  {release:<8} {stats.get('predictions', 0):>6.0f} "
            f"{stats['acceptance_rate'] * 100:>6.1f}% "
            f"{stats['precision'] * 100:>6.1f}% "
            f"{stats['recall'] * 100:>5.1f}% "
            f"{stats['f1'] * 100:>5.1f}% "
            f"{stats.get('targets_hit', 0):>5.0f} "
            f"{stats['fallback_share'] * 100:>8.1f}%"
        )
    drift = drift_summary(summaries)
    if drift:
        reference = sorted(summaries, key=_release_key)[0]
        lines.append(f"  drift vs {reference}:")
        for release, deltas in drift.items():
            lines.append(
                f"    {release:<8} precision {deltas['precision'] * 100:+.1f}pp "
                f"recall {deltas['recall'] * 100:+.1f}pp "
                f"f1 {deltas['f1'] * 100:+.1f}pp "
                f"acceptance {deltas['acceptance_rate'] * 100:+.1f}pp"
            )
    return "\n".join(lines)
