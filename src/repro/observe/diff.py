"""Diff two campaigns' metric snapshots and flag regressions.

Works on the canonical snapshot dicts produced by
``MetricsRegistry.snapshot()`` (or loaded back from the exported
``metrics.json``).  Direction heuristics encode which way is bad for a
series: queue delays, failures, timeouts, restarts going *up* is a
regression; executions, new edges, completions going *down* is one.
Series matching neither list are reported in the diff but never
flagged.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Delta",
    "Regression",
    "diff_snapshots",
    "flag_regressions",
    "format_diff",
]

# Substring heuristics over series keys.
_HIGHER_IS_WORSE = (
    "delay", "latency", "failures", "timeouts", "retries", "rejected",
    "rejections", "slot_crashes", "breaker_trips", "vm_restarts",
    "exec_timeouts", "duplicates", "fallbacks", "write_retries",
)
_LOWER_IS_WORSE = (
    "executions", "completed", "accepted", "new_edges", "corpus_size",
    "productive", "pushed", "pulled", "attributed", "execs_per_vsecond",
)


@dataclass(frozen=True)
class Delta:
    key: str
    kind: str            # counter | gauge | histogram
    old: float
    new: float

    @property
    def change(self) -> float:
        return self.new - self.old

    @property
    def pct(self) -> float:
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old) * 100.0


@dataclass(frozen=True)
class Regression:
    delta: Delta
    direction: str       # "higher-is-worse" | "lower-is-worse"

    def describe(self) -> str:
        pct = self.delta.pct
        rendered = "new" if pct == float("inf") else f"{pct:+.1f}%"
        return (
            f"{self.delta.key} [{self.delta.kind}] "
            f"{self.delta.old} -> {self.delta.new} ({rendered}, "
            f"{self.direction})"
        )


def _flatten(snapshot: dict) -> dict[str, tuple[str, float]]:
    flat: dict[str, tuple[str, float]] = {}
    for key, value in snapshot.get("counters", {}).items():
        flat[key] = ("counter", value)
    for key, value in snapshot.get("gauges", {}).items():
        flat[key] = ("gauge", value)
    for key, body in snapshot.get("histograms", {}).items():
        # Compare histograms on their tail latency — the quantity the
        # paper's serving experiments (and ours) actually optimise.
        flat[f"{key}/p95"] = ("histogram", body["p95"])
        flat[f"{key}/count"] = ("histogram", body["count"])
    return flat


def diff_snapshots(old: dict, new: dict) -> list[Delta]:
    """All series whose value differs (absent treated as 0)."""
    flat_old = _flatten(old)
    flat_new = _flatten(new)
    deltas = []
    for key in sorted(set(flat_old) | set(flat_new)):
        kind_old, value_old = flat_old.get(key, (None, 0))
        kind_new, value_new = flat_new.get(key, (None, 0))
        if value_old != value_new:
            deltas.append(Delta(key, kind_new or kind_old, value_old, value_new))
    return deltas


def flag_regressions(
    old: dict, new: dict, threshold_pct: float = 10.0
) -> list[Regression]:
    """Deltas that moved in the bad direction by more than the threshold."""
    regressions = []
    for delta in diff_snapshots(old, new):
        worse_up = any(tag in delta.key for tag in _HIGHER_IS_WORSE)
        worse_down = not worse_up and any(
            tag in delta.key for tag in _LOWER_IS_WORSE
        )
        exceeded = delta.pct == float("inf") or abs(delta.pct) > threshold_pct
        if worse_up and delta.change > 0 and exceeded:
            regressions.append(Regression(delta, "higher-is-worse"))
        elif worse_down and delta.change < 0 and exceeded:
            regressions.append(Regression(delta, "lower-is-worse"))
    return regressions


def format_diff(deltas: list[Delta]) -> str:
    if not deltas:
        return "no metric changes\n"
    key_width = max(len(delta.key) for delta in deltas)
    key_width = max(key_width, len("series"))
    lines = [
        f"{'series':<{key_width}}  {'old':>12}  {'new':>12}  {'change':>10}"
    ]
    for delta in deltas:
        pct = delta.pct
        rendered = "new" if pct == float("inf") else f"{pct:+.1f}%"
        lines.append(
            f"{delta.key:<{key_width}}  {delta.old:>12}  {delta.new:>12}  "
            f"{rendered:>10}"
        )
    return "\n".join(lines) + "\n"
