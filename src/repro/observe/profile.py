"""Hot-path profiler: virtual and wall time per named section.

Virtual time (what the simulation charged) is deterministic and may be
published into the metrics registry; wall time (what this host actually
spent in graph build, GNN forward, executor stepping...) is inherently
machine-dependent and therefore appears only in the human-facing
``report()`` — never in canonical exports, which must stay
byte-reproducible.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager

__all__ = ["Profiler"]


class Profiler:
    """Accumulates ``(calls, wall_seconds, virtual_seconds)`` per section."""

    def __init__(self):
        self._sections: dict[str, list] = {}

    def _entry(self, name: str) -> list:
        entry = self._sections.get(name)
        if entry is None:
            entry = [0, 0.0, 0.0]
            self._sections[name] = entry
        return entry

    @contextmanager
    def section(self, name: str, clock=None):
        """Time a hot path; pass the virtual clock to also attribute
        the virtual seconds the body advances."""
        wall_start = _time.perf_counter()
        virtual_start = clock.now if clock is not None else None
        try:
            yield
        finally:
            entry = self._entry(name)
            entry[0] += 1
            entry[1] += _time.perf_counter() - wall_start
            if virtual_start is not None:
                entry[2] += clock.now - virtual_start

    def add_virtual(self, name: str, seconds: float, calls: int = 0) -> None:
        """Attribute already-accounted virtual seconds (e.g. clock charges)."""
        entry = self._entry(name)
        entry[0] += calls
        entry[2] += seconds

    def sections(self) -> dict[str, tuple]:
        return {
            name: tuple(entry)
            for name, entry in sorted(self._sections.items())
        }

    def publish(
        self, registry, prefix: str = "profile.", diagnostic: bool = False
    ) -> None:
        """Mirror the deterministic (virtual) side into registry gauges.

        Pass ``diagnostic=True`` when the profiler itself is not part of
        the checkpoint (the fuzz loop's continuous sampling): the gauges
        then stay out of the canonical snapshot, so a resumed run — whose
        profiler restarts empty — still exports byte-identical metrics.
        """
        for name, (calls, _wall, virtual) in self.sections().items():
            registry.gauge(
                f"{prefix}virtual", section=name, diagnostic=diagnostic
            ).set(virtual)
            registry.gauge(
                f"{prefix}calls", section=name, diagnostic=diagnostic
            ).set(calls)

    def report(self) -> str:
        lines = [
            "profiler (wall seconds are host-dependent and excluded from exports)",
            "",
            f"  {'section':<28}  {'calls':>8}  {'wall_s':>10}  {'virtual_s':>11}",
        ]
        if not self._sections:
            lines.append("  (no sections recorded)")
            return "\n".join(lines) + "\n"
        ordered = sorted(
            self._sections.items(), key=lambda item: (-item[1][1], item[0])
        )
        for name, (calls, wall, virtual) in ordered:
            lines.append(
                f"  {name:<28}  {calls:>8}  {wall:>10.4f}  {virtual:>11.3f}"
            )
        return "\n".join(lines) + "\n"
