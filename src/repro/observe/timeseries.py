"""Virtual-time series: sampled registry history with bounded memory.

PR 3 gave the stack point-in-time snapshots; the paper's claims are
*trajectories* (coverage over time, yield over time, queue delay under
load).  :class:`TimeSeriesStore` closes that gap: it samples a
:class:`~repro.observe.metrics.MetricsRegistry` on a virtual-clock
cadence and keeps the history in multi-resolution ring buffers —
full-resolution points for the recent window, power-of-two coarsened
points for the deep past — so a campaign of any length costs O(levels ×
capacity) memory per series.

Retention model
---------------
Each series owns a :class:`SeriesBuffer` with ``levels`` rings of
``capacity`` points each.  Level 0 receives every sample (resolution =
the store's ``interval``).  When a ring overflows, its two **oldest**
points merge into one point pushed down to the next level, halving
resolution per level (level ``k`` holds points ``interval * 2**k``
apart).  The merge keeps the later timestamp; the merged value is the
later point for counters/gauges (``last``) and the maximum for
histogram-tail series (``max`` — a p95 spike must survive coarsening).
The deepest ring drops its oldest pair's *earlier* point outright, so
total retention is bounded while the most recent
``capacity * interval`` of history stays exact.

Every sampled value comes from the **canonical** registry snapshot
(diagnostic series excluded), and sample times come from the virtual
clock, so the whole store is a pure function of the campaign seed:
same seed → byte-identical ``timeseries.json``, and a store captured in
a checkpoint (format v4) resumes into an identical timeline.

Flattening matches :mod:`repro.observe.diff`: counters and gauges keep
their series key; histograms contribute ``<key>/p95`` (merge ``max``)
and ``<key>/count`` (merge ``last``).
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left, bisect_right

__all__ = [
    "SeriesBuffer",
    "TimeSeriesStore",
    "flatten_snapshot",
    "load_timeseries",
]

#: suffix → merge mode for histogram-derived series
_HISTOGRAM_FIELDS = (("p95", "max"), ("count", "last"))


def flatten_snapshot(snapshot: dict) -> dict[str, tuple[float, str]]:
    """``{flat_key: (value, merge_mode)}`` for one registry snapshot."""
    flat: dict[str, tuple[float, str]] = {}
    for key, value in snapshot.get("counters", {}).items():
        flat[key] = (value, "last")
    for key, value in snapshot.get("gauges", {}).items():
        flat[key] = (value, "last")
    for key, body in snapshot.get("histograms", {}).items():
        for field, merge in _HISTOGRAM_FIELDS:
            flat[f"{key}/{field}"] = (body[field], merge)
    return flat


class SeriesBuffer:
    """Multi-resolution ring buffer for one flattened series.

    ``merge`` is ``"last"`` (counters/gauges: the later point stands for
    the coarsened pair) or ``"max"`` (tail quantiles: spikes survive).
    """

    __slots__ = ("capacity", "depth", "merge", "_levels")

    def __init__(self, capacity: int = 64, depth: int = 4,
                 merge: str = "last"):
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (pair-merge downsampling)")
        if merge not in ("last", "max"):
            raise ValueError(f"unknown merge mode {merge!r}")
        self.capacity = capacity
        self.depth = depth
        self.merge = merge
        # _levels[0] is finest; each level is a time-ascending list of
        # [time, value] pairs, all older than the level above it.
        self._levels: list[list[list[float]]] = [[] for _ in range(depth)]

    def append(self, time: float, value: float) -> None:
        # Coerced eagerly so exports are type-stable across a
        # checkpoint round-trip (restored values are always floats).
        self._levels[0].append([float(time), float(value)])
        for level in range(self.depth):
            ring = self._levels[level]
            if len(ring) <= self.capacity:
                break
            first, second = ring.pop(0), ring.pop(0)
            merged_value = (
                max(first[1], second[1]) if self.merge == "max" else second[1]
            )
            if level + 1 < self.depth:
                self._levels[level + 1].append([second[0], merged_value])
            # deepest level: the pair collapses and the earlier half is
            # forgotten for good
            else:
                ring.insert(0, [second[0], merged_value])

    def points(self, start: float | None = None,
               end: float | None = None) -> list[tuple[float, float]]:
        """Time-ascending ``(time, value)`` pairs, optionally windowed."""
        merged: list[tuple[float, float]] = []
        for level in reversed(self._levels):
            merged.extend((point[0], point[1]) for point in level)
        if start is not None:
            merged = merged[bisect_left(merged, (start, float("-inf"))):]
        if end is not None:
            merged = merged[:bisect_right(merged, (end, float("inf")))]
        return merged

    def latest(self) -> tuple[float, float] | None:
        for level in self._levels:
            if level:
                last = level[-1]
                return (last[0], last[1])
        return None

    def __len__(self) -> int:
        return sum(len(level) for level in self._levels)

    # ----- state -----

    def state_dict(self) -> dict:
        return {
            "merge": self.merge,
            "levels": [[list(point) for point in level]
                       for level in self._levels],
        }

    def restore(self, state: dict) -> None:
        self.merge = state["merge"]
        levels = [
            [[float(time), float(value)] for time, value in level]
            for level in state["levels"]
        ]
        if len(levels) != self.depth:
            raise ValueError(
                f"series depth mismatch: captured {len(levels)}, "
                f"store configured for {self.depth}"
            )
        self._levels = levels


class TimeSeriesStore:
    """Cadenced history of every canonical registry series.

    ``maybe_sample(now, registry)`` is the hot-path entry point: it
    no-ops until ``interval`` virtual seconds have elapsed since the
    last sample, so callers (every worker's ``_sample``) can invoke it
    unconditionally.  In a cluster the scheduler steps the
    furthest-behind worker first, so ``now`` is non-decreasing across
    callers and the sampling timeline is fleet-deterministic.
    """

    def __init__(self, interval: float = 300.0, capacity: int = 64,
                 depth: int = 4):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.capacity = capacity
        self.depth = depth
        self.samples = 0
        self._last_sample: float | None = None
        self._series: dict[str, SeriesBuffer] = {}

    # ----- sampling -----

    def due(self, now: float) -> bool:
        return (
            self._last_sample is None
            or now - self._last_sample >= self.interval
        )

    def maybe_sample(self, now: float, registry) -> bool:
        if not self.due(now):
            return False
        self.sample(now, registry)
        return True

    def sample(self, now: float, registry) -> None:
        """Unconditionally record one sample at virtual time ``now``."""
        for key, (value, merge) in flatten_snapshot(
            registry.snapshot()
        ).items():
            buffer = self._series.get(key)
            if buffer is None:
                buffer = SeriesBuffer(
                    capacity=self.capacity, depth=self.depth, merge=merge
                )
                self._series[key] = buffer
            buffer.append(now, value)
        self._last_sample = now
        self.samples += 1

    # ----- queries -----

    def series(self, pattern: str | None = None) -> list[str]:
        """Sorted series keys; ``pattern`` filters by substring match
        (``fuzz.edges`` matches every worker's ``fuzz.edges{worker=i}``).
        """
        keys = sorted(self._series)
        if pattern is None:
            return keys
        return [key for key in keys if pattern in key]

    def points(self, key: str, start: float | None = None,
               end: float | None = None) -> list[tuple[float, float]]:
        buffer = self._series.get(key)
        return buffer.points(start, end) if buffer is not None else []

    def latest(self, key: str) -> tuple[float, float] | None:
        buffer = self._series.get(key)
        return buffer.latest() if buffer is not None else None

    @property
    def last_sample_time(self) -> float | None:
        return self._last_sample

    def slice(self, pattern: str | None = None,
              since: float | None = None) -> dict[str, list[list[float]]]:
        """A JSON-ready window over the store: every series matching
        ``pattern`` (substring, as in :meth:`series`), restricted to
        points strictly after ``since``.

        This is the progress-streaming primitive: a client polls with
        the last timestamp it has seen and receives only the new points,
        per campaign, without the service re-exporting whole files.
        """
        start = None if since is None else math.nextafter(since, math.inf)
        return {
            key: [[time, value] for time, value in self.points(key, start)]
            for key in self.series(pattern)
        }

    def __len__(self) -> int:
        return len(self._series)

    # ----- export -----

    def snapshot(self) -> dict:
        return {
            "interval": self.interval,
            "samples": self.samples,
            "series": {
                key: [[time, value] for time, value in buffer.points()]
                for key, buffer in sorted(self._series.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        )

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        return {
            "interval": self.interval,
            "samples": self.samples,
            "last_sample": self._last_sample,
            "series": {
                key: buffer.state_dict()
                for key, buffer in sorted(self._series.items())
            },
        }

    def restore(self, state: dict) -> None:
        self.samples = int(state["samples"])
        last = state["last_sample"]
        self._last_sample = None if last is None else float(last)
        self._series = {}
        for key, captured in state["series"].items():
            buffer = SeriesBuffer(
                capacity=self.capacity, depth=self.depth,
                merge=captured["merge"],
            )
            buffer.restore(captured)
            self._series[key] = buffer


def load_timeseries(text: str) -> TimeSeriesStore:
    """Rebuild a queryable store from an exported ``timeseries.json``.

    The rebuilt store holds every exported point at level 0 (export
    flattens the rings), which is exactly what post-hoc SLO evaluation
    and report rendering need.
    """
    body = json.loads(text)
    series = body.get("series", {})
    capacity = max(
        (len(points) for points in series.values()), default=2
    )
    store = TimeSeriesStore(
        interval=float(body.get("interval", 300.0)),
        capacity=max(capacity, 2), depth=1,
    )
    store.samples = int(body.get("samples", 0))
    for key, points in series.items():
        buffer = SeriesBuffer(capacity=store.capacity, depth=1)
        for time, value in points:
            buffer.append(float(time), float(value))
        store._series[key] = buffer
        if points:
            last = float(points[-1][0])
            if store._last_sample is None or last > store._last_sample:
                store._last_sample = last
    return store
