"""Exporters: JSONL span log, Chrome ``trace_event`` JSON, flame summary.

Each exporter is a pure function of a :class:`~repro.observe.trace.Tracer`
(and, for metrics, a registry snapshot), serialised with sorted keys and
fixed separators so equal inputs produce byte-identical output — the
determinism tests compare these bytes directly.

The Chrome export targets the legacy JSON ``trace_event`` format that
both ``chrome://tracing`` and https://ui.perfetto.dev load natively:
complete ("X") events with microsecond ``ts``/``dur`` per thread, plus
instant ("i") events for faults/crashes/breaker trips.  Virtual seconds
map to trace microseconds 1:1e6; each tracer track becomes a named
thread of a single ``repro`` process, and nesting falls out of time
containment.
"""

from __future__ import annotations

import json

from .trace import Instant, Span, Tracer

__all__ = [
    "chrome_trace",
    "flame_summary",
    "load_spans_jsonl",
    "spans_jsonl",
]

_JSON_KW = {"sort_keys": True, "separators": (",", ":")}


def _dumps(obj) -> str:
    return json.dumps(obj, **_JSON_KW)


# ----- JSONL span log -----

def spans_jsonl(tracer: Tracer) -> str:
    """One JSON object per line, spans and instants in recording order."""
    lines = []
    for event in tracer.events():
        if isinstance(event, Span):
            lines.append(_dumps({
                "type": "span",
                "track": event.track,
                "name": event.name,
                "cat": event.cat,
                "start": event.start,
                "end": event.end,
                "args": event.args,
                "seq": event.seq,
            }))
        else:
            lines.append(_dumps({
                "type": "instant",
                "track": event.track,
                "name": event.name,
                "cat": event.cat,
                "time": event.time,
                "args": event.args,
                "seq": event.seq,
            }))
    return "\n".join(lines) + ("\n" if lines else "")


def load_spans_jsonl(text: str) -> Tracer:
    """Rebuild a tracer from :func:`spans_jsonl` output (CLI render path)."""
    tracer = Tracer()
    max_seq = -1
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        seq = int(entry.get("seq", 0))
        max_seq = max(max_seq, seq)
        if entry["type"] == "span":
            tracer.spans.append(Span(
                entry["track"], entry["name"], entry["start"], entry["end"],
                entry.get("cat", "phase"), dict(entry.get("args", {})), seq,
            ))
        elif entry["type"] == "instant":
            tracer.instants.append(Instant(
                entry["track"], entry["name"], entry["time"],
                entry.get("cat", "event"), dict(entry.get("args", {})), seq,
            ))
        else:
            raise ValueError(f"unknown span-log record type {entry['type']!r}")
    tracer._seq = max_seq + 1
    return tracer


# ----- Chrome trace_event -----

def _micros(seconds: float) -> float:
    micros = seconds * 1e6
    # Integral microseconds render as ints (smaller, stable files).
    return int(micros) if micros == int(micros) else micros


def chrome_trace(tracer: Tracer) -> str:
    """Chrome ``trace_event`` JSON (loads in chrome://tracing / Perfetto)."""
    trace_events = []
    tids = {track: tid for tid, track in enumerate(tracer.tracks())}
    for track, tid in tids.items():
        trace_events.append({
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        })
    for event in tracer.events():
        if isinstance(event, Span):
            trace_events.append({
                "ph": "X",
                "name": event.name,
                "cat": event.cat,
                "pid": 1,
                "tid": tids[event.track],
                "ts": _micros(event.start),
                "dur": _micros(event.duration),
                "args": event.args,
            })
        else:
            trace_events.append({
                "ph": "i",
                "s": "t",
                "name": event.name,
                "cat": event.cat,
                "pid": 1,
                "tid": tids[event.track],
                "ts": _micros(event.time),
                "args": event.args,
            })
    return _dumps({
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "unit": "1us = 1 virtual microsecond"},
        "traceEvents": trace_events,
    })


# ----- flame summary -----

def flame_summary(tracer: Tracer) -> str:
    """Text table of virtual time per span name per track.

    The poor-terminal's flame graph: for every track, how the simulated
    seconds split across phases, with self-time semantics left to the
    reader (nested spans both count — the table says so).
    """
    per_track: dict[str, dict[str, list]] = {}
    bounds: dict[str, list] = {}
    for span in tracer.spans:
        phases = per_track.setdefault(span.track, {})
        entry = phases.setdefault(span.name, [0, 0.0])
        entry[0] += 1
        entry[1] += span.duration
        bound = bounds.setdefault(span.track, [span.start, span.end])
        bound[0] = min(bound[0], span.start)
        bound[1] = max(bound[1], span.end)

    lines = [
        "flame summary (virtual seconds; nested spans each count in full)",
        "",
    ]
    if not per_track:
        lines.append("  (no spans recorded)")
        return "\n".join(lines) + "\n"
    name_width = max(
        len(name) for phases in per_track.values() for name in phases
    )
    name_width = max(name_width, len("span"))
    for track in sorted(per_track):
        lo, hi = bounds[track]
        wall = hi - lo
        lines.append(f"track {track}  (virtual span {lo:.3f}s .. {hi:.3f}s)")
        lines.append(
            f"  {'span':<{name_width}}  {'count':>7}  {'total_s':>10}  {'share':>6}"
        )
        phases = per_track[track]
        ordered = sorted(
            phases.items(), key=lambda item: (-item[1][1], item[0])
        )
        for name, (count, total) in ordered:
            share = (total / wall * 100.0) if wall > 0 else 0.0
            lines.append(
                f"  {name:<{name_width}}  {count:>7}  {total:>10.3f}  {share:>5.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"
