"""Corpus lineage and coverage attribution.

Every corpus entry carries a :class:`LineageRecord`: who its parent
was, which mutation engine and operator produced it, which steering
slot (PMM or oracle) guided the mutation, the model-decision metadata
(burst id, predicted vs. realized gain), and the virtual time of
discovery.  A :class:`ProvenanceLog` is the ledger those records live
in — it also attributes every newly covered edge to the entry that
first hit it and every triaged bug to the program that tripped it, so
``repro observe explain`` can walk the full reproduction chain for any
edge, bug, or entry.

Identity is content-addressed: :func:`entry_id_for` digests the
serialized program together with its sorted coverage edges, so the same
test carries the same id through hub replication, pulls, failover, and
checkpoint resume — dedup can then say *which* entry subsumed a dropped
offer (``superseded_by``) instead of discarding it without a trace.

Determinism contract: every field in every record is a pure function of
the campaign seed (virtual times, seeded RNG draws, content digests),
so the canonical snapshot is byte-identical across same-seed runs and
across kill+resume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from hashlib import blake2b

__all__ = [
    "LineageRecord",
    "ProvenanceLog",
    "edge_key",
    "entry_id_for",
]

#: ``superseded_by`` marker for entries subsumed by the hub's coverage
#: union rather than by one specific signature-owning entry.
UNION = "union"

#: engine name stamped on seed-corpus entries (no parent, no operator).
SEED_ENGINE = "seed"


def entry_id_for(program, coverage) -> str:
    """A content-addressed id for a (program, coverage) pair.

    Stable across clones, hub replication, and checkpoint round-trips:
    the digest covers the serialized program and the sorted edge set,
    nothing process- or placement-dependent.
    """
    from repro.syzlang.parser import serialize_program

    payload = serialize_program(program) + "\n" + ";".join(
        f"{src}-{dst}" for src, dst in sorted(coverage.edges)
    )
    return blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


def edge_key(edge) -> str:
    """The canonical string key for a coverage edge tuple."""
    src, dst = edge
    return f"{src}-{dst}"


@dataclass
class LineageRecord:
    """One corpus entry's provenance, stamped at mutation time."""

    #: content-addressed id (:func:`entry_id_for`).
    entry_id: str
    #: parent entry's id; None for seed-corpus roots.
    parent_id: str | None
    #: which mutation engine produced it ("seed", "syzkaller", "snowplow").
    engine: str
    #: mutation operator (a ``MutationType`` value, or "seed").
    operator: str
    #: steering slot that guided the mutation ("pmm", "oracle",
    #: "heuristic", or "-" for seeds).
    slot: str
    #: deterministic id of the PMM burst that scheduled the mutation.
    burst_id: str | None
    #: arguments the model predicted for the burst (0 off the model path).
    predicted: int
    #: realized gain: new edges this entry contributed at admission.
    gain: int
    #: virtual time of discovery.
    time: float
    #: worker that discovered the entry.
    worker: int
    #: id of the entry that subsumed this one at hub dedup (or
    #: ``"union"`` when no single owner exists); None while live.
    superseded_by: str | None = None

    def to_dict(self) -> dict:
        return {
            "entry_id": self.entry_id,
            "parent_id": self.parent_id,
            "engine": self.engine,
            "operator": self.operator,
            "slot": self.slot,
            "burst_id": self.burst_id,
            "predicted": self.predicted,
            "gain": self.gain,
            "time": self.time,
            "worker": self.worker,
            "superseded_by": self.superseded_by,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LineageRecord":
        return cls(
            entry_id=str(payload["entry_id"]),
            parent_id=payload["parent_id"],
            engine=str(payload["engine"]),
            operator=str(payload["operator"]),
            slot=str(payload["slot"]),
            burst_id=payload["burst_id"],
            predicted=int(payload["predicted"]),
            gain=int(payload["gain"]),
            time=float(payload["time"]),
            worker=int(payload["worker"]),
            superseded_by=payload["superseded_by"],
        )


class ProvenanceLog:
    """The lineage ledger of one loop (or one hub).

    Records are registered first-wins by entry id — re-offers of the
    same content-addressed entry (hub pulls pushed back, replication,
    resume) collapse onto the original record.  Edge attribution is
    first-cover: the first entry whose admission brought an edge owns
    it.  Per-``engine/slot`` mutation and gain tallies feed the
    dead-mutation share of the attribution table.
    """

    def __init__(self):
        self.records: dict[str, LineageRecord] = {}
        # edge key -> owning entry id (first cover wins).
        self.edge_owner: dict[str, str] = {}
        # crash signature -> id of the program that tripped it.
        self.bug_owner: dict[str, str] = {}
        # "engine/slot" -> mutations attempted / mutations that earned
        # a corpus entry.
        self.mutations: dict[str, int] = {}
        self.gainful: dict[str, int] = {}

    # ----- registration -----

    def record(self, rec: LineageRecord) -> LineageRecord:
        """Register a record (first-wins by id); returns the stored one.

        A later duplicate that carries a supersession the original
        lacks contributes that one field — the hub may learn an entry
        was subsumed after a worker logged it live.
        """
        existing = self.records.get(rec.entry_id)
        if existing is None:
            self.records[rec.entry_id] = rec
            return rec
        if existing.superseded_by is None and rec.superseded_by is not None:
            existing.superseded_by = rec.superseded_by
        return existing

    def note_mutation(self, engine: str, slot: str) -> None:
        key = f"{engine}/{slot}"
        self.mutations[key] = self.mutations.get(key, 0) + 1

    def admit(self, rec: LineageRecord, new_edges) -> LineageRecord:
        """Register an admitted entry and attribute its fresh edges."""
        stored = self.record(rec)
        if rec.engine != SEED_ENGINE:
            key = f"{rec.engine}/{rec.slot}"
            self.gainful[key] = self.gainful.get(key, 0) + 1
        self.attribute_edges(rec.entry_id, new_edges)
        return stored

    def attribute_edges(self, entry_id: str, edges) -> None:
        for edge in edges:
            key = edge_key(edge)
            if key not in self.edge_owner:
                self.edge_owner[key] = entry_id

    def note_crash(self, signature: str, entry_id: str) -> None:
        if signature not in self.bug_owner:
            self.bug_owner[signature] = entry_id

    def supersede(self, entry_id: str, by: str) -> None:
        """Mark ``entry_id`` as subsumed by ``by`` (an id or "union")."""
        rec = self.records.get(entry_id)
        if rec is not None and rec.superseded_by is None:
            rec.superseded_by = by

    # ----- queries -----

    @property
    def superseded_count(self) -> int:
        return sum(
            1 for rec in self.records.values()
            if rec.superseded_by is not None
        )

    def chain(self, entry_id: str) -> list[LineageRecord]:
        """The reproduction chain, root (seed) first; [] if unknown."""
        out: list[LineageRecord] = []
        seen: set[str] = set()
        cursor: str | None = entry_id
        while cursor is not None and cursor not in seen:
            rec = self.records.get(cursor)
            if rec is None:
                break
            out.append(rec)
            seen.add(cursor)
            cursor = rec.parent_id
        out.reverse()
        return out

    def root_of(self, entry_id: str) -> str | None:
        """The seed ancestor of ``entry_id`` (itself if parentless)."""
        chain = self.chain(entry_id)
        return chain[0].entry_id if chain else None

    def summary(self) -> dict:
        """The cheap headline numbers (service endpoints, reports)."""
        return {
            "entries": len(self.records),
            "edges_attributed": len(self.edge_owner),
            "bugs": len(self.bug_owner),
            "superseded": self.superseded_count,
            "mutations": sum(self.mutations.values()),
        }

    # ----- merging (fleet logs + hub log -> one export) -----

    @classmethod
    def merge(cls, logs) -> "ProvenanceLog":
        """One fleet-wide ledger from per-worker logs plus the hub's.

        Records merge first-wins with supersessions adopted; attribution
        conflicts (two workers each first-covered an edge locally)
        resolve to the earliest claim by ``(time, worker, entry_id)``,
        which is a pure function of the records and therefore invariant
        to merge order.
        """
        merged = cls()
        logs = list(logs)
        for log in logs:
            for entry_id in sorted(log.records):
                merged.record(replace(log.records[entry_id]))

        def rank(entry_id: str):
            rec = merged.records.get(entry_id)
            if rec is None:
                return (float("inf"), float("inf"), entry_id)
            return (rec.time, rec.worker, entry_id)

        for log in logs:
            for key in sorted(log.edge_owner):
                claim = log.edge_owner[key]
                current = merged.edge_owner.get(key)
                if current is None or rank(claim) < rank(current):
                    merged.edge_owner[key] = claim
            for signature in sorted(log.bug_owner):
                claim = log.bug_owner[signature]
                current = merged.bug_owner.get(signature)
                if current is None or rank(claim) < rank(current):
                    merged.bug_owner[signature] = claim
            for key, count in sorted(log.mutations.items()):
                merged.mutations[key] = merged.mutations.get(key, 0) + count
            for key, count in sorted(log.gainful.items()):
                merged.gainful[key] = merged.gainful.get(key, 0) + count
        return merged

    # ----- checkpointing / canonical export -----

    def state_dict(self) -> dict:
        """JSON-ready canonical snapshot (sorted, no process state)."""
        return {
            "records": [
                self.records[entry_id].to_dict()
                for entry_id in sorted(self.records)
            ],
            "edges": {
                key: self.edge_owner[key]
                for key in sorted(self.edge_owner)
            },
            "bugs": {
                signature: self.bug_owner[signature]
                for signature in sorted(self.bug_owner)
            },
            "mutations": {
                key: self.mutations[key] for key in sorted(self.mutations)
            },
            "gainful": {
                key: self.gainful[key] for key in sorted(self.gainful)
            },
        }

    def restore(self, state: dict) -> None:
        self.records = {}
        for payload in state["records"]:
            rec = LineageRecord.from_dict(payload)
            self.records[rec.entry_id] = rec
        self.edge_owner = {
            str(key): str(owner) for key, owner in state["edges"].items()
        }
        self.bug_owner = {
            str(key): str(owner) for key, owner in state["bugs"].items()
        }
        self.mutations = {
            str(key): int(count)
            for key, count in state["mutations"].items()
        }
        self.gainful = {
            str(key): int(count)
            for key, count in state["gainful"].items()
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, ProvenanceLog):
            return NotImplemented
        return self.state_dict() == other.state_dict()
