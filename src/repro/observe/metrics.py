"""Deterministic metrics: counters, gauges, and streaming histograms.

Every number the fuzzing/serving stack reports flows through a
:class:`MetricsRegistry`.  The registry is the single source of truth —
the public stats dataclass-style views (``FuzzStats``,
``InferenceStats``, ``HubStats``, ``YieldProbe``) are thin reads over
registry series — and it is built for the same property the rest of the
reproduction has: **bit-reproducibility**.  Same seed, same series,
byte-identical snapshots; a registry restored from a checkpoint
continues exactly where the captured one stopped.

Three instrument kinds:

- :class:`Counter` — monotone-by-convention numeric series (``inc``),
  though restores and stats views may ``set`` them directly;
- :class:`Gauge` — last-write-wins value (e.g. virtual-time charges
  published at campaign finalize);
- :class:`Histogram` — a streaming distribution with p50/p95/p99 that
  **stores no samples**: values land in exact power-of-two buckets
  (computed with ``math.frexp``, so bucketing never depends on
  platform-sensitive logarithms), and quantiles read off the cumulative
  bucket counts, clamped to the tracked min/max.

Series are identified by name plus sorted labels —
``fuzz.executions{worker=3}`` — so per-worker fleet series coexist in
one registry.  Series marked ``diagnostic`` (e.g. ``fuzz.resumes``,
which counts *process* incidents rather than simulated work) are
excluded from the canonical snapshot so that an interrupted-and-resumed
campaign exports byte-identically to an uninterrupted one.
"""

from __future__ import annotations

import json
import math
from collections.abc import MutableMapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounterMap",
    "MetricsRegistry",
    "parse_series_key",
    "series_key",
]


def series_key(name: str, labels: dict | None = None) -> str:
    """Canonical series identity: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    rendered = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels, key=str)
    )
    return f"{name}{{{rendered}}}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`series_key`: ``name{k=v,...}`` → (name, labels).

    Label values come back as strings — snapshot keys carry no type
    information.  A derived-field suffix (``serve.queue_delay{...}/p95``)
    stays attached to the name.
    """
    brace = key.find("{")
    if brace == -1:
        return key, {}
    close = key.rfind("}")
    name = key[:brace] + (key[close + 1:] if close != -1 else "")
    labels: dict[str, str] = {}
    for part in key[brace + 1:close].split(","):
        if "=" in part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """A numeric series that accumulates."""

    __slots__ = ("name", "labels", "value", "diagnostic")
    kind = "counter"

    def __init__(self, name: str, labels: dict, diagnostic: bool = False):
        self.name = name
        self.labels = labels
        self.value = 0
        self.diagnostic = diagnostic

    def inc(self, amount=1) -> None:
        self.value += amount

    def set(self, value) -> None:
        self.value = value

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)


class Gauge:
    """A numeric series holding its most recent value."""

    __slots__ = ("name", "labels", "value", "diagnostic")
    kind = "gauge"

    def __init__(self, name: str, labels: dict, diagnostic: bool = False):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.diagnostic = diagnostic

    def set(self, value) -> None:
        self.value = value

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)


class Histogram:
    """Streaming distribution over non-negative values.

    Values land in exact power-of-two buckets: value ``v`` belongs to
    bucket ``i`` with ``2**(i-1) < v <= 2**i`` (zero has its own
    bucket).  The bucket index comes from ``math.frexp`` — an exact
    float decomposition — so two machines bucket identically.  Quantiles
    return the covering bucket's upper bound clamped to the observed
    ``[min, max]``; with bucket resolution of 2x that makes p50/p95/p99
    deterministic, bounded-error reads that cost O(buckets) memory no
    matter how many samples stream through.
    """

    __slots__ = (
        "name", "labels", "diagnostic",
        "count", "total", "vmin", "vmax", "zero", "buckets",
    )
    kind = "histogram"

    def __init__(self, name: str, labels: dict, diagnostic: bool = False):
        self.name = name
        self.labels = labels
        self.diagnostic = diagnostic
        self.count = 0
        self.total = 0.0
        self.vmin = 0.0
        self.vmax = 0.0
        self.zero = 0          # exact-zero observations
        self.buckets: dict[int, int] = {}

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)

    @staticmethod
    def bucket_of(value: float) -> int:
        """Index ``i`` with ``2**(i-1) < value <= 2**i`` (value > 0)."""
        mantissa, exponent = math.frexp(value)
        # frexp: value = mantissa * 2**exponent, mantissa in [0.5, 1).
        # Exact powers of two sit on their bucket's upper bound.
        return exponent - 1 if mantissa == 0.5 else exponent

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        if self.count == 0:
            self.vmin = self.vmax = value
        else:
            self.vmin = min(self.vmin, value)
            self.vmax = max(self.vmax, value)
        self.count += 1
        self.total += value
        if value == 0:
            self.zero += 1
        else:
            index = self.bucket_of(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate (bucket upper bound, clamped)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Degenerate distributions answer exactly, not via bucket math:
        # a single sample (or any all-equal stream) has every quantile
        # equal to the one observed value.
        if self.vmin == self.vmax:
            return self.vmin
        target = max(1, math.ceil(q * self.count))
        cumulative = self.zero
        if cumulative >= target:
            return 0.0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                upper = math.ldexp(1.0, index)
                return min(max(upper, self.vmin), self.vmax)
        return self.vmax

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    # ----- state -----

    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "zero": self.zero,
            "buckets": {str(index): count
                        for index, count in sorted(self.buckets.items())},
        }

    def restore(self, state: dict) -> None:
        self.count = int(state["count"])
        self.total = float(state["total"])
        self.vmin = float(state["min"])
        self.vmax = float(state["max"])
        self.zero = int(state["zero"])
        self.buckets = {
            int(index): int(count)
            for index, count in state["buckets"].items()
        }

    def snapshot(self) -> dict:
        """State plus the derived quantiles, for human-facing dumps."""
        body = self.state_dict()
        body["mean"] = self.mean
        body["p50"] = self.p50
        body["p95"] = self.p95
        body["p99"] = self.p99
        return body


class MetricsRegistry:
    """All metric series of one campaign (or one component under test).

    Instruments are created on first access and live for the registry's
    lifetime; asking for an existing series with a different kind is an
    error (one name+labels, one meaning).
    """

    def __init__(self):
        self._series: dict[str, object] = {}

    # ----- instrument access -----

    def counter(self, name: str, *, diagnostic: bool = False, **labels) -> Counter:
        return self._get(Counter, name, labels, diagnostic)

    def gauge(self, name: str, *, diagnostic: bool = False, **labels) -> Gauge:
        return self._get(Gauge, name, labels, diagnostic)

    def histogram(
        self, name: str, *, diagnostic: bool = False, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, diagnostic)

    def _get(self, cls, name: str, labels: dict, diagnostic: bool):
        key = series_key(name, labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = cls(name, dict(labels), diagnostic=diagnostic)
            self._series[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"series {key!r} is a {instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def remove(self, name: str, **labels) -> None:
        self._series.pop(series_key(name, labels), None)

    def series(self):
        """All instruments in sorted-key order (deterministic)."""
        for key in sorted(self._series):
            yield self._series[key]

    def __len__(self) -> int:
        return len(self._series)

    # ----- snapshots -----

    def snapshot(self, full: bool = False) -> dict:
        """Canonical snapshot: ``{counters, gauges, histograms}``.

        Diagnostic series (process incidents like resume counts) are
        excluded unless ``full`` — the canonical snapshot is a pure
        function of the seeded simulation, so interrupted-and-resumed
        campaigns export byte-identically.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for instrument in self.series():
            if instrument.diagnostic and not full:
                continue
            if isinstance(instrument, Histogram):
                out["histograms"][instrument.key] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                out["gauges"][instrument.key] = instrument.value
            else:
                out["counters"][instrument.key] = instrument.value
        return out

    def to_json(self, full: bool = False) -> str:
        return json.dumps(
            self.snapshot(full=full), sort_keys=True, separators=(",", ":")
        )

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        return {
            "series": [
                {
                    "kind": instrument.kind,
                    "name": instrument.name,
                    "labels": {
                        str(key): value
                        for key, value in instrument.labels.items()
                    },
                    "diagnostic": instrument.diagnostic,
                    "value": (
                        instrument.state_dict()
                        if isinstance(instrument, Histogram)
                        else instrument.value
                    ),
                }
                for instrument in self.series()
            ],
        }

    def restore(self, state: dict) -> None:
        """Overwrite every captured series (unknown series are created).

        Series that exist locally but are absent from ``state`` are left
        alone: a freshly built component may have registered (zeroed)
        instruments the checkpointed run had not touched yet.
        """
        kinds = {"counter": self.counter, "gauge": self.gauge,
                 "histogram": self.histogram}
        for entry in state["series"]:
            labels = {
                key: (int(value) if isinstance(value, bool) is False
                      and isinstance(value, str) and value.lstrip("-").isdigit()
                      else value)
                for key, value in entry["labels"].items()
            }
            instrument = kinds[entry["kind"]](
                entry["name"], diagnostic=bool(entry["diagnostic"]), **labels
            )
            if entry["kind"] == "histogram":
                instrument.restore(entry["value"])
            else:
                instrument.set(entry["value"])


class LabeledCounterMap(MutableMapping):
    """A dict-like view over one labeled counter family.

    ``FuzzStats.mutations`` and ``InferenceStats.batch_sizes`` used to be
    private dicts; they are now views over registry series
    (``fuzz.mutations{type=...}``, ``serve.batches{size=...}``) that keep
    the exact mapping surface the rest of the code — and the tests — use.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        label: str,
        base_labels: dict | None = None,
        key_type=str,
    ):
        self._registry = registry
        self._name = name
        self._label = label
        self._base = dict(base_labels or {})
        self._key_type = key_type
        self._counters: dict = {}

    def _counter(self, key) -> Counter:
        counter = self._counters.get(key)
        if counter is None:
            counter = self._registry.counter(
                self._name, **{**self._base, self._label: key}
            )
            self._counters[key] = counter
        return counter

    def __getitem__(self, key):
        if key not in self._counters:
            raise KeyError(key)
        return self._counters[key].value

    def __setitem__(self, key, value) -> None:
        self._counter(key).set(value)

    def __delitem__(self, key) -> None:
        del self._counters[key]
        self._registry.remove(self._name, **{**self._base, self._label: key})

    def __iter__(self):
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __eq__(self, other) -> bool:
        if isinstance(other, (dict, LabeledCounterMap)):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return repr(dict(self))

    def replace(self, mapping: dict) -> None:
        """Atomically swap the whole family for ``mapping`` (restore)."""
        for key in list(self._counters):
            del self[key]
        for key, value in mapping.items():
            self[self._key_type(key)] = value
