"""repro.observe — deterministic tracing, metrics, and profiling.

One :class:`Observer` rides along with a campaign and bundles the three
instruments the stack shares:

- ``observer.registry`` — the :class:`MetricsRegistry` every stats view
  (``FuzzStats``, ``InferenceStats``, ``HubStats``, ``YieldProbe``)
  emits through;
- ``observer.tracer`` — hierarchical virtual-time spans
  (campaign → worker → iteration → mutate/exec/inference/triage/
  hub_sync/checkpoint) with instants for faults, breaker trips, and
  crash hits;
- ``observer.profiler`` — wall+virtual attribution for hot paths
  (graph build, GNN forward, executor stepping).

Everything except profiler wall time is a pure function of the campaign
seed, so exports are byte-identical across same-seed runs and across
kill+resume (the observer state travels inside checkpoints).
"""

from __future__ import annotations

from pathlib import Path

from .diff import (
    Delta,
    Regression,
    diff_snapshots,
    flag_regressions,
    format_diff,
)
from .export import chrome_trace, flame_summary, load_spans_jsonl, spans_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounterMap,
    MetricsRegistry,
    series_key,
)
from .profile import Profiler
from .trace import Instant, Span, Tracer

__all__ = [
    "Counter",
    "Delta",
    "Gauge",
    "Histogram",
    "Instant",
    "LabeledCounterMap",
    "MetricsRegistry",
    "Observer",
    "Profiler",
    "Regression",
    "Span",
    "Tracer",
    "chrome_trace",
    "diff_snapshots",
    "flag_regressions",
    "flame_summary",
    "format_diff",
    "load_spans_jsonl",
    "series_key",
    "spans_jsonl",
]


class Observer:
    """Registry + tracer + profiler for one campaign."""

    #: filenames written by :meth:`export`
    TRACE_FILE = "trace.json"
    SPANS_FILE = "spans.jsonl"
    METRICS_FILE = "metrics.json"
    FLAME_FILE = "flame.txt"
    PROFILE_FILE = "profile.txt"

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        profiler: Profiler | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.profiler = profiler if profiler is not None else Profiler()

    # ----- exports -----

    def export(self, directory) -> dict[str, Path]:
        """Write all artifacts; returns ``{artifact_name: path}``.

        ``trace.json``/``spans.jsonl``/``metrics.json``/``flame.txt``
        are canonical (byte-reproducible from the seed);
        ``profile.txt`` includes wall time and is diagnostic only.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {}
        for name, content in (
            (self.TRACE_FILE, chrome_trace(self.tracer)),
            (self.SPANS_FILE, spans_jsonl(self.tracer)),
            (self.METRICS_FILE, self.registry.to_json()),
            (self.FLAME_FILE, flame_summary(self.tracer)),
            (self.PROFILE_FILE, self.profiler.report()),
        ):
            path = directory / name
            path.write_text(content)
            paths[name] = path
        return paths

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        # The profiler is deliberately absent: wall time cannot be
        # restored meaningfully, and virtual attribution is re-derivable
        # from the clock charges it mirrors.
        return {
            "registry": self.registry.state_dict(),
            "tracer": self.tracer.state_dict(),
        }

    def restore(self, state: dict) -> None:
        self.registry.restore(state["registry"])
        self.tracer.restore(state["tracer"])
