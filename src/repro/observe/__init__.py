"""repro.observe — deterministic tracing, metrics, and profiling.

One :class:`Observer` rides along with a campaign and bundles the three
instruments the stack shares:

- ``observer.registry`` — the :class:`MetricsRegistry` every stats view
  (``FuzzStats``, ``InferenceStats``, ``HubStats``, ``YieldProbe``)
  emits through;
- ``observer.tracer`` — hierarchical virtual-time spans
  (campaign → worker → iteration → mutate/exec/inference/triage/
  hub_sync/checkpoint) with instants for faults, breaker trips, and
  crash hits;
- ``observer.profiler`` — wall+virtual attribution for hot paths
  (graph build, GNN forward, executor stepping).

Everything except profiler wall time is a pure function of the campaign
seed, so exports are byte-identical across same-seed runs and across
kill+resume (the observer state travels inside checkpoints).
"""

from __future__ import annotations

from pathlib import Path

from .diff import (
    Delta,
    Regression,
    diff_snapshots,
    flag_regressions,
    format_diff,
)
from .explain import (
    attribution_table,
    coverage_waterfall,
    format_attribution,
    format_chain,
    format_waterfall,
    lineage_dot,
    lineage_json,
    load_lineage,
    resolve_target,
)
from .export import chrome_trace, flame_summary, load_spans_jsonl, spans_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounterMap,
    MetricsRegistry,
    parse_series_key,
    series_key,
)
from .model_quality import (
    ModelQualityTracker,
    drift_summary,
    format_model_quality,
    model_quality_summary,
)
from .profile import Profiler
from .provenance import LineageRecord, ProvenanceLog, edge_key, entry_id_for
from .report import campaign_report, sparkline
from .slo import (
    Alert,
    BurnRateRule,
    SLOEngine,
    StallRule,
    ThresholdRule,
    alerts_json,
    default_cluster_rules,
    default_fuzz_rules,
    default_rules,
    default_serving_rules,
    default_supervision_rules,
    load_alerts,
)
from .timeseries import (
    SeriesBuffer,
    TimeSeriesStore,
    flatten_snapshot,
    load_timeseries,
)
from .trace import Instant, Span, Tracer

__all__ = [
    "Alert",
    "BurnRateRule",
    "Counter",
    "Delta",
    "Gauge",
    "Histogram",
    "Instant",
    "LabeledCounterMap",
    "LineageRecord",
    "MetricsRegistry",
    "ModelQualityTracker",
    "Observer",
    "Profiler",
    "ProvenanceLog",
    "Regression",
    "SLOEngine",
    "SeriesBuffer",
    "Span",
    "StallRule",
    "ThresholdRule",
    "TimeSeriesStore",
    "Tracer",
    "alerts_json",
    "attribution_table",
    "campaign_report",
    "chrome_trace",
    "coverage_waterfall",
    "default_cluster_rules",
    "default_fuzz_rules",
    "default_rules",
    "default_serving_rules",
    "default_supervision_rules",
    "diff_snapshots",
    "drift_summary",
    "edge_key",
    "entry_id_for",
    "flag_regressions",
    "flame_summary",
    "flatten_snapshot",
    "format_attribution",
    "format_chain",
    "format_diff",
    "format_model_quality",
    "format_waterfall",
    "lineage_dot",
    "lineage_json",
    "load_alerts",
    "load_lineage",
    "load_spans_jsonl",
    "load_timeseries",
    "model_quality_summary",
    "parse_series_key",
    "resolve_target",
    "series_key",
    "spans_jsonl",
    "sparkline",
]


class Observer:
    """Registry + tracer + profiler + time-series for one campaign."""

    #: filenames written by :meth:`export`
    TRACE_FILE = "trace.json"
    SPANS_FILE = "spans.jsonl"
    METRICS_FILE = "metrics.json"
    FLAME_FILE = "flame.txt"
    PROFILE_FILE = "profile.txt"
    TIMESERIES_FILE = "timeseries.json"
    ALERTS_FILE = "alerts.json"
    LINEAGE_FILE = "lineage.json"

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        profiler: Profiler | None = None,
        timeseries: TimeSeriesStore | None = None,
        slo: SLOEngine | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.profiler = profiler if profiler is not None else Profiler()
        self.timeseries = (
            timeseries if timeseries is not None else TimeSeriesStore()
        )
        # Optional: a rule pack evaluated (and exported as alerts.json +
        # trace instants) at export time.  None keeps exports rule-free.
        self.slo = slo
        self._annotated = False
        # ProvenanceLogs attached by loops and hubs; export() merges
        # them into lineage.json.  Not part of state_dict(): lineage
        # rides in the loop/hub checkpoint state, and restored
        # components re-attach on construction.
        self.provenance_sources: list[ProvenanceLog] = []

    # ----- provenance -----

    def attach_provenance(self, log: ProvenanceLog) -> None:
        """Register a lineage ledger for the merged lineage.json export."""
        if not any(source is log for source in self.provenance_sources):
            self.provenance_sources.append(log)

    def merged_provenance(self) -> ProvenanceLog:
        """One fleet-wide ledger across every attached source."""
        return ProvenanceLog.merge(self.provenance_sources)

    # ----- sampling -----

    def sample(self, now: float) -> bool:
        """Cadenced registry sample at virtual time ``now``.

        Loops call this from their observation hook every iteration; the
        store's interval decides whether anything is recorded.
        """
        return self.timeseries.maybe_sample(now, self.registry)

    # ----- SLO evaluation -----

    def evaluate_slo(self) -> list[Alert]:
        """Evaluate the attached rule pack; annotates the trace once."""
        if self.slo is None:
            return []
        if self._annotated:
            return self.slo.evaluate(self.timeseries)
        self._annotated = True
        return self.slo.annotate(self.tracer, self.timeseries)

    # ----- exports -----

    def export(self, directory) -> dict[str, Path]:
        """Write all artifacts; returns ``{artifact_name: path}``.

        ``trace.json``/``spans.jsonl``/``metrics.json``/``flame.txt``/
        ``timeseries.json`` (plus ``alerts.json`` when a rule pack is
        attached and ``lineage.json`` when provenance sources are) are
        canonical — byte-reproducible from the seed; ``profile.txt``
        includes wall time and is diagnostic only.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        artifacts = []
        if self.slo is not None:
            # Evaluate before the trace renders so alert instants land
            # on the exported timeline.
            artifacts.append(
                (self.ALERTS_FILE, alerts_json(self.evaluate_slo()))
            )
        artifacts += [
            (self.TRACE_FILE, chrome_trace(self.tracer)),
            (self.SPANS_FILE, spans_jsonl(self.tracer)),
            (self.METRICS_FILE, self.registry.to_json()),
            (self.TIMESERIES_FILE, self.timeseries.to_json()),
            (self.FLAME_FILE, flame_summary(self.tracer)),
            (self.PROFILE_FILE, self.profiler.report()),
        ]
        if self.provenance_sources:
            artifacts.append(
                (self.LINEAGE_FILE, lineage_json(self.merged_provenance()))
            )
        paths = {}
        for name, content in artifacts:
            path = directory / name
            path.write_text(content)
            paths[name] = path
        return paths

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        # The profiler is deliberately absent: wall time cannot be
        # restored meaningfully, and virtual attribution is re-derivable
        # from the clock charges it mirrors.
        return {
            "registry": self.registry.state_dict(),
            "tracer": self.tracer.state_dict(),
            "timeseries": self.timeseries.state_dict(),
        }

    def restore(self, state: dict) -> None:
        self.registry.restore(state["registry"])
        self.tracer.restore(state["tracer"])
        if "timeseries" in state:
            self.timeseries.restore(state["timeseries"])
