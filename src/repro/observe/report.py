"""One-page campaign health report: timelines + SLOs + model quality.

``repro observe report <dir>`` renders the artifacts an observed
campaign exports (``metrics.json``, ``timeseries.json``, and the
evaluated alerts) into a single deterministic text page — the
operator's view of a run: what the trajectories did, whether the SLOs
held, and how well the learned mutator predicted.  Everything here is a
pure function of its inputs, so the report is golden-testable and
byte-identical across same-seed runs.
"""

from __future__ import annotations

from .model_quality import format_model_quality, model_quality_summary

__all__ = ["campaign_report", "sparkline"]

#: headline series, in display order (prefix match against flat keys)
_HEADLINES = (
    "fuzz.edges",
    "fuzz.blocks",
    "fuzz.executions",
    "fuzz.corpus_size",
    "fuzz.crashes",
    "serve.completed",
    "serve.queue_delay/p95",
    "hub.pushed",
)

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values, width: int = 24) -> str:
    """Deterministic ASCII sparkline (resampled to ``width`` columns)."""
    if not values:
        return ""
    if len(values) > width:
        step = (len(values) - 1) / (width - 1)
        values = [values[round(index * step)] for index in range(width)]
    low, high = min(values), max(values)
    if high == low:
        return "-" * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (high - low)
    return "".join(
        _SPARK_LEVELS[int((value - low) * scale)] for value in values
    )


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.2f}"


def _timeline_section(store) -> list[str]:
    lines = ["timelines"]
    shown = 0
    for prefix in _HEADLINES:
        for key in store.series(prefix):
            if not key.startswith(prefix):
                continue
            points = store.points(key)
            if not points:
                continue
            values = [value for _, value in points]
            lines.append(
                f"  {key:<34} {_format_value(values[0]):>8} -> "
                f"{_format_value(values[-1]):>8}  |{sparkline(values)}|"
            )
            shown += 1
    if shown == 0:
        lines.append("  (no sampled series)")
    return lines


def _slo_section(alerts, rules=None) -> list[str]:
    lines = ["slo status"]
    if rules is not None:
        fired = {alert.rule for alert in alerts}
        for rule in rules:
            state = "ALERT" if rule.name in fired else "ok"
            lines.append(f"  [{state:<5}] {rule.name} ({rule.severity})")
    if not alerts:
        lines.append("  0 alerts")
        return lines
    lines.append(f"  {len(alerts)} alert(s):")
    for alert in alerts:
        lines.append(
            f"    t={alert.time:,.0f}s [{alert.severity}] "
            f"{alert.rule}: {alert.message}"
        )
    return lines


def campaign_report(
    snapshot: dict,
    store=None,
    alerts=None,
    rules=None,
    extra_summaries: dict | None = None,
    title: str = "campaign health report",
) -> str:
    """Render the full report.

    ``snapshot`` is the canonical ``{counters, gauges, histograms}``
    metrics shape; ``store`` a :class:`TimeSeriesStore` (or None when
    the run predates sampling); ``alerts``/``rules`` the evaluated SLO
    pack; ``extra_summaries`` merges model-quality stats from other
    campaigns' snapshots (cross-release drift).
    """
    lines = [title, "=" * len(title)]
    executions = sum(
        value for key, value in snapshot.get("counters", {}).items()
        if key.startswith("fuzz.executions")
    )
    crashes = sum(
        value for key, value in snapshot.get("counters", {}).items()
        if key.startswith("fuzz.crashes")
    )
    summary = f"executions: {executions:,.0f}  crashes: {crashes:,.0f}"
    if store is not None and store.last_sample_time is not None:
        summary += (
            f"  samples: {store.samples} @ {store.interval:g}s"
            f"  horizon: {store.last_sample_time:,.0f}s"
        )
    lines.append(summary)
    lines.append("")
    if store is not None:
        lines.extend(_timeline_section(store))
        lines.append("")
    if alerts is not None:
        lines.extend(_slo_section(alerts, rules))
        lines.append("")
    summaries = model_quality_summary(snapshot)
    if extra_summaries:
        for release, stats in extra_summaries.items():
            summaries.setdefault(release, stats)
        summaries = dict(sorted(summaries.items()))
    lines.extend(format_model_quality(summaries).splitlines())
    return "\n".join(lines) + "\n"
