"""Declarative SLOs over virtual-time series.

Rules are evaluated **post hoc** over a completed
:class:`~repro.observe.timeseries.TimeSeriesStore` rather than inline in
the hot loop: evaluation walks the sampled timeline in virtual-time
order, so alerts are a pure function of the store — same seed, same
alerts, and a kill+resumed campaign (whose store is restored from the
checkpoint) fires byte-identical alerts at identical virtual
timestamps.

Rule semantics
--------------
- :class:`ThresholdRule` — the objective ``series op limit`` (e.g.
  ``serve.queue_delay/p95 < 1800``) must hold at every sample.  An
  alert fires at the first violating sample of each violation episode;
  the rule re-arms once the objective holds again.
- :class:`StallRule` — the series must make progress (increase by more
  than ``min_delta``) at least once every ``window`` virtual seconds.
  The alert fires at the first sample whose distance from the last
  progress point reaches the window — the deterministic "no new
  coverage for N virtual seconds" detector.
- :class:`BurnRateRule` — over a trailing ``window``, the growth of a
  counter ``series`` must stay within ``budget``; with a ``denominator``
  series the budget is a ratio of the two growths (lost batches per
  submitted request), without one it is an absolute count per window
  (breaker trips per virtual hour).

Every rule matches series by **substring** against the store's flat
keys, so ``fuzz.edges`` covers each worker's ``fuzz.edges{worker=i}``
independently; ``alert.series`` records the concrete key that fired.

Alerts export to a canonical ``alerts.json`` and annotate the tracer as
instants on an ``alerts`` track, which lands them on the Perfetto
timeline next to the spans that caused them.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from dataclasses import asdict, dataclass

__all__ = [
    "Alert",
    "BurnRateRule",
    "SLOEngine",
    "StallRule",
    "ThresholdRule",
    "alerts_json",
    "default_cluster_rules",
    "default_fuzz_rules",
    "default_rules",
    "default_serving_rules",
    "load_alerts",
]

_OPS = {
    "<": lambda value, limit: value < limit,
    "<=": lambda value, limit: value <= limit,
    ">": lambda value, limit: value > limit,
    ">=": lambda value, limit: value >= limit,
}


@dataclass(frozen=True, order=True)
class Alert:
    """One SLO violation, pinned to a virtual timestamp."""

    time: float
    rule: str
    series: str
    value: float
    threshold: float
    severity: str
    message: str


class _Rule:
    """Shared matching/plumbing; subclasses implement ``_evaluate``."""

    def __init__(self, name: str, series: str, severity: str = "warn"):
        self.name = name
        self.series = series
        self.severity = severity

    def evaluate(self, store) -> list[Alert]:
        alerts: list[Alert] = []
        for key in store.series(self.series):
            alerts.extend(self._evaluate(key, store.points(key)))
        return alerts

    def _evaluate(self, key, points):  # pragma: no cover - abstract
        raise NotImplementedError

    def _alert(self, key: str, time: float, value: float,
               threshold: float, message: str) -> Alert:
        return Alert(
            time=time, rule=self.name, series=key, value=value,
            threshold=threshold, severity=self.severity, message=message,
        )


class ThresholdRule(_Rule):
    """Objective: every sample satisfies ``value op limit``."""

    def __init__(self, name: str, series: str, op: str, limit: float,
                 severity: str = "warn"):
        super().__init__(name, series, severity)
        if op not in _OPS:
            raise ValueError(f"unknown op {op!r} (use one of {sorted(_OPS)})")
        self.op = op
        self.limit = limit

    def _evaluate(self, key, points):
        alerts = []
        ok = _OPS[self.op]
        in_violation = False
        for time, value in points:
            if not ok(value, self.limit):
                if not in_violation:
                    alerts.append(self._alert(
                        key, time, value, self.limit,
                        f"{key} = {value:g}, objective {self.op} "
                        f"{self.limit:g}",
                    ))
                    in_violation = True
            else:
                in_violation = False
        return alerts


class StallRule(_Rule):
    """Objective: the series increases at least every ``window`` seconds."""

    def __init__(self, name: str, series: str, window: float,
                 min_delta: float = 0.0, severity: str = "warn"):
        super().__init__(name, series, severity)
        if window <= 0:
            raise ValueError("stall window must be positive")
        self.window = window
        self.min_delta = min_delta

    def _evaluate(self, key, points):
        alerts = []
        if not points:
            return alerts
        last_progress_time, last_value = points[0]
        stalled = False
        for time, value in points[1:]:
            if value > last_value + self.min_delta:
                last_progress_time, last_value = time, value
                stalled = False
            elif (not stalled
                  and time - last_progress_time >= self.window):
                alerts.append(self._alert(
                    key, time, value, self.window,
                    f"{key} stalled at {value:g} for "
                    f"{time - last_progress_time:g} virtual s "
                    f"(window {self.window:g})",
                ))
                stalled = True
        return alerts


class BurnRateRule(_Rule):
    """Objective: counter growth over a trailing window stays in budget.

    With ``denominator``: growth(series) / growth(denominator) <=
    ``budget`` (a ratio — e.g. lost batches per submitted request).
    Without: growth(series) <= ``budget`` per window (an absolute
    count — e.g. breaker trips per virtual hour).
    """

    def __init__(self, name: str, series: str, window: float, budget: float,
                 denominator: str | None = None, severity: str = "warn"):
        super().__init__(name, series, severity)
        if window <= 0:
            raise ValueError("burn-rate window must be positive")
        self.window = window
        self.budget = budget
        self.denominator = denominator

    def evaluate(self, store) -> list[Alert]:
        alerts: list[Alert] = []
        for key in store.series(self.series):
            denominator_points = None
            if self.denominator is not None:
                denominator_key = self._pair_key(key, store)
                if denominator_key is None:
                    continue
                denominator_points = store.points(denominator_key)
            alerts.extend(self._burn(
                key, store.points(key), denominator_points
            ))
        return alerts

    def _pair_key(self, key: str, store) -> str | None:
        """The denominator series sharing ``key``'s label set."""
        labels = key[key.index("{"):] if "{" in key else ""
        matches = [
            candidate for candidate in store.series(self.denominator)
            if (candidate[candidate.index("{"):] if "{" in candidate
                else "") == labels
        ]
        return matches[0] if matches else None

    @staticmethod
    def _growth(points, start: float, end_value: float) -> float:
        """Growth since the last sample at or before ``start``."""
        index = bisect_right(points, (start, float("inf"))) - 1
        base = points[index][1] if index >= 0 else 0.0
        return end_value - base

    def _burn(self, key, points, denominator_points):
        alerts = []
        in_violation = False
        for time, value in points:
            start = time - self.window
            burn = self._growth(points, start, value)
            if denominator_points is not None:
                index = bisect_left(
                    denominator_points, (time, float("inf"))
                ) - 1
                if index < 0:
                    continue
                denominator_value = denominator_points[index][1]
                base_growth = self._growth(
                    denominator_points, start, denominator_value
                )
                if base_growth <= 0:
                    in_violation = False
                    continue
                burn = burn / base_growth
            if burn > self.budget:
                if not in_violation:
                    alerts.append(self._alert(
                        key, time, burn, self.budget,
                        f"{key} burn {burn:g} over {self.window:g}s "
                        f"window exceeds budget {self.budget:g}",
                    ))
                    in_violation = True
            else:
                in_violation = False
        return alerts


class SLOEngine:
    """A rule pack evaluated over one store."""

    def __init__(self, rules):
        self.rules = list(rules)

    def evaluate(self, store) -> list[Alert]:
        """All alerts, sorted by (time, rule, series) — deterministic."""
        alerts: list[Alert] = []
        for rule in self.rules:
            alerts.extend(rule.evaluate(store))
        return sorted(alerts)

    def annotate(self, tracer, store, track: str = "alerts") -> list[Alert]:
        """Evaluate and pin every alert to the trace as an instant."""
        alerts = self.evaluate(store)
        for alert in alerts:
            tracer.instant(
                track, alert.rule, alert.time, cat="alert",
                series=alert.series, value=alert.value,
                threshold=alert.threshold, severity=alert.severity,
            )
        return alerts


# ----- default rule packs -----
#
# Defaults are sized so a healthy smoke campaign (small kernel, <= 1
# virtual hour) stays quiet; campaigns long enough to plateau trip the
# coverage-stall detector, which is the point.

def default_fuzz_rules(stall_window: float = 3600.0,
                       timeout_budget: float = 0.25) -> list[_Rule]:
    return [
        StallRule(
            "fuzz.coverage_stall", "fuzz.edges", window=stall_window,
            severity="warn",
        ),
        BurnRateRule(
            "fuzz.exec_timeout_burn", "fuzz.exec_timeouts",
            window=stall_window, budget=timeout_budget,
            denominator="fuzz.executions", severity="critical",
        ),
    ]


def default_serving_rules(queue_delay_p95: float = 1800.0,
                          loss_budget: float = 0.5,
                          trips_per_window: float = 4.0,
                          window: float = 3600.0) -> list[_Rule]:
    return [
        ThresholdRule(
            "serve.queue_delay_p95", "serve.queue_delay/p95",
            op="<=", limit=queue_delay_p95, severity="warn",
        ),
        BurnRateRule(
            "serve.lost_batch_budget", "serve.failures",
            window=window, budget=loss_budget,
            denominator="serve.submitted", severity="critical",
        ),
        BurnRateRule(
            "serve.breaker_trip_budget", "serve.breaker_trips",
            window=window, budget=trips_per_window, severity="warn",
        ),
    ]


def default_cluster_rules(sync_window: float = 3600.0,
                          duplicate_budget: float = 0.95) -> list[_Rule]:
    return [
        StallRule(
            "cluster.hub_sync_stall", "fuzz.hub_syncs",
            window=sync_window, severity="warn",
        ),
        BurnRateRule(
            "cluster.hub_duplicate_share", "hub.duplicates",
            window=sync_window, budget=duplicate_budget,
            denominator="hub.pushes", severity="warn",
        ),
    ]


def default_supervision_rules(coverage_floor_pct: float = 90.0) -> list[_Rule]:
    """The chaos-gate invariants, phrased over the end-state ``chaos.*``
    gauges a :func:`~repro.snowplow.campaign.run_chaos_campaign` run
    publishes.  These gauges are sampled once, at the horizon, after the
    campaign's verdict is known — so threshold rules never fire on a
    transient mid-recovery dip."""
    return [
        ThresholdRule(
            "chaos.corpus_loss", "chaos.lost_edges",
            op="<=", limit=0.0, severity="critical",
        ),
        ThresholdRule(
            "chaos.coverage_monotone", "chaos.coverage_regressions",
            op="<=", limit=0.0, severity="critical",
        ),
        ThresholdRule(
            "chaos.graceful_degradation", "chaos.coverage_ratio_pct",
            op=">=", limit=coverage_floor_pct, severity="critical",
        ),
        ThresholdRule(
            "chaos.resume_determinism", "chaos.resume_identical",
            op=">=", limit=1.0, severity="critical",
        ),
    ]


def default_rules(**overrides) -> list[_Rule]:
    """The full default pack: fuzz + serving + cluster."""
    fuzz_kwargs = {
        key: overrides[key] for key in ("stall_window", "timeout_budget")
        if key in overrides
    }
    return (
        default_fuzz_rules(**fuzz_kwargs)
        + default_serving_rules()
        + default_cluster_rules()
    )


DEFAULT_PACKS = {
    "fuzz": default_fuzz_rules,
    "serving": default_serving_rules,
    "cluster": default_cluster_rules,
    "supervision": default_supervision_rules,
    "default": default_rules,
}


# ----- export -----

def alerts_json(alerts) -> str:
    """Canonical machine-readable dump (sorted, compact)."""
    return json.dumps(
        {
            "alerts": [asdict(alert) for alert in sorted(alerts)],
            "count": len(alerts),
        },
        sort_keys=True, separators=(",", ":"),
    )


def load_alerts(text: str) -> list[Alert]:
    body = json.loads(text)
    return [Alert(**entry) for entry in body.get("alerts", [])]
