"""The provenance query layer: DAG exports, attribution, `explain`.

Pure functions of a :class:`~repro.observe.provenance.ProvenanceLog`:

- :func:`lineage_json` / :func:`load_lineage` — the canonical JSON
  snapshot (sorted keys, fixed separators: byte-identical for equal
  logs, which the determinism tests compare directly);
- :func:`lineage_dot` — the lineage DAG in Graphviz DOT, entries as
  ellipses, bugs as boxes, supersessions as dashed edges;
- :func:`attribution_table` — per-``engine/slot`` earnings: mutations
  spent, entries/edges/bugs earned, dead-mutation share;
- :func:`coverage_waterfall` — which seed ancestors carry the
  campaign's coverage (edges grouped by chain root);
- :func:`resolve_target` / :func:`format_chain` — the CLI
  ``repro observe explain <edge|bug|entry>`` reproduction chain.
"""

from __future__ import annotations

import json

from .provenance import LineageRecord, ProvenanceLog

__all__ = [
    "attribution_table",
    "coverage_waterfall",
    "format_attribution",
    "format_chain",
    "format_waterfall",
    "lineage_dot",
    "lineage_json",
    "load_lineage",
    "resolve_target",
]

_JSON_KW = {"sort_keys": True, "separators": (",", ":")}


# ----- canonical JSON -----


def lineage_json(log: ProvenanceLog) -> str:
    """The canonical lineage snapshot (what ``lineage.json`` holds)."""
    return json.dumps(log.state_dict(), **_JSON_KW)


def load_lineage(text: str) -> ProvenanceLog:
    """Rebuild a log from :func:`lineage_json` output (CLI explain path)."""
    log = ProvenanceLog()
    log.restore(json.loads(text))
    return log


# ----- DOT -----


def lineage_dot(log: ProvenanceLog) -> str:
    """The lineage DAG as deterministic Graphviz DOT.

    Node and edge order is sorted, so equal logs render byte-identical
    files; entries subsumed at hub dedup point at their superseder with
    a dashed edge instead of disappearing.
    """
    lines = ["digraph lineage {", "  rankdir=LR;", "  node [fontsize=9];"]
    for entry_id in sorted(log.records):
        rec = log.records[entry_id]
        label = (
            f"{entry_id}\\n{rec.engine}/{rec.slot} {rec.operator}"
            f"\\ngain={rec.gain} t={rec.time:.0f} w{rec.worker}"
        )
        attrs = f'label="{label}"'
        if rec.superseded_by is not None:
            attrs += ' style=dotted'
        lines.append(f'  "{entry_id}" [{attrs}];')
    for signature in sorted(log.bug_owner):
        lines.append(
            f'  "bug:{signature}" [shape=box style=filled '
            f'fillcolor=lightcoral label="bug\\n{signature}"];'
        )
    for entry_id in sorted(log.records):
        rec = log.records[entry_id]
        if rec.parent_id is not None and rec.parent_id in log.records:
            lines.append(f'  "{rec.parent_id}" -> "{entry_id}";')
        if rec.superseded_by is not None and rec.superseded_by in log.records:
            lines.append(
                f'  "{entry_id}" -> "{rec.superseded_by}" '
                f'[style=dashed label="superseded"];'
            )
    for signature in sorted(log.bug_owner):
        owner = log.bug_owner[signature]
        if owner in log.records:
            lines.append(f'  "{owner}" -> "bug:{signature}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


# ----- attribution table -----


def attribution_table(log: ProvenanceLog) -> list[dict]:
    """Per-``engine/slot`` earnings, sorted by key.

    ``dead_share`` is the fraction of that engine's mutations that
    earned no corpus entry — the budget a bandit scheduler would want
    back.  Seed rows spend no mutations, so their share is 0.
    """
    keys = set(log.mutations) | set(log.gainful)
    for rec in log.records.values():
        keys.add(f"{rec.engine}/{rec.slot}")
    entries: dict[str, int] = {}
    for rec in log.records.values():
        key = f"{rec.engine}/{rec.slot}"
        entries[key] = entries.get(key, 0) + 1
    edges: dict[str, int] = {}
    for owner in log.edge_owner.values():
        rec = log.records.get(owner)
        if rec is None:
            continue
        key = f"{rec.engine}/{rec.slot}"
        edges[key] = edges.get(key, 0) + 1
    bugs: dict[str, int] = {}
    for owner in log.bug_owner.values():
        rec = log.records.get(owner)
        if rec is None:
            continue
        key = f"{rec.engine}/{rec.slot}"
        bugs[key] = bugs.get(key, 0) + 1
    rows = []
    for key in sorted(keys):
        engine, _, slot = key.partition("/")
        spent = log.mutations.get(key, 0)
        earned = log.gainful.get(key, 0)
        rows.append({
            "engine": engine,
            "slot": slot,
            "mutations": spent,
            "entries": entries.get(key, 0),
            "edges": edges.get(key, 0),
            "bugs": bugs.get(key, 0),
            "dead_share": (
                round((spent - earned) / spent, 6) if spent else 0.0
            ),
        })
    return rows


def format_attribution(rows: list[dict]) -> str:
    lines = [
        "attribution by engine/slot (edges and bugs are first-cover)",
        "",
        f"  {'engine':<12} {'slot':<10} {'mutations':>10} {'entries':>8} "
        f"{'edges':>7} {'bugs':>5} {'dead_share':>11}",
    ]
    if not rows:
        lines.append("  (no lineage recorded)")
        return "\n".join(lines) + "\n"
    for row in rows:
        lines.append(
            f"  {row['engine']:<12} {row['slot']:<10} "
            f"{row['mutations']:>10} {row['entries']:>8} "
            f"{row['edges']:>7} {row['bugs']:>5} {row['dead_share']:>11.4f}"
        )
    return "\n".join(lines) + "\n"


# ----- coverage waterfall -----


def coverage_waterfall(log: ProvenanceLog, top: int = 20) -> list[dict]:
    """Which seed ancestors carry the campaign's coverage.

    Every attributed edge is charged to the chain *root* of its owning
    entry; rows report how many edges, owning descendants, and bugs
    each root's subtree earned, deepest frontier included.
    """
    per_root: dict[str, dict] = {}

    def bucket(root: str) -> dict:
        row = per_root.get(root)
        if row is None:
            row = {"root": root, "edges": 0, "owners": set(), "bugs": 0,
                   "max_depth": 0}
            per_root[root] = row
        return row

    for owner in log.edge_owner.values():
        chain = log.chain(owner)
        if not chain:
            continue
        row = bucket(chain[0].entry_id)
        row["edges"] += 1
        row["owners"].add(owner)
        row["max_depth"] = max(row["max_depth"], len(chain))
    for owner in log.bug_owner.values():
        chain = log.chain(owner)
        if not chain:
            continue
        bucket(chain[0].entry_id)["bugs"] += 1
    rows = [
        {
            "root": row["root"],
            "edges": row["edges"],
            "owners": len(row["owners"]),
            "bugs": row["bugs"],
            "max_depth": row["max_depth"],
        }
        for row in per_root.values()
    ]
    rows.sort(key=lambda row: (-row["edges"], -row["bugs"], row["root"]))
    return rows[:top]


def format_waterfall(rows: list[dict]) -> str:
    lines = [
        "coverage waterfall (edges charged to each owning chain's seed root)",
        "",
        f"  {'root':<18} {'edges':>7} {'owners':>7} {'bugs':>5} "
        f"{'max_depth':>10}",
    ]
    if not rows:
        lines.append("  (no attributed coverage)")
        return "\n".join(lines) + "\n"
    for row in rows:
        lines.append(
            f"  {row['root']:<18} {row['edges']:>7} {row['owners']:>7} "
            f"{row['bugs']:>5} {row['max_depth']:>10}"
        )
    return "\n".join(lines) + "\n"


# ----- explain -----


def resolve_target(
    log: ProvenanceLog, target: str
) -> tuple[str, str, list[LineageRecord]]:
    """Resolve an explain target to ``(kind, resolved_id, chain)``.

    Targets: ``entry:<id>``, ``edge:<src>-<dst>``, ``bug:<signature>``,
    or a bare string tried as bug signature, then entry id, then edge
    key.  Raises ``KeyError`` when nothing resolves.
    """
    kind, _, rest = target.partition(":")
    if kind == "entry" and rest:
        if rest not in log.records:
            raise KeyError(f"no corpus entry {rest!r} in the lineage log")
        return "entry", rest, log.chain(rest)
    if kind == "edge" and rest:
        owner = log.edge_owner.get(rest)
        if owner is None:
            raise KeyError(f"edge {rest!r} has no attributed owner")
        return "edge", rest, log.chain(owner)
    if kind == "bug" and rest:
        owner = log.bug_owner.get(rest)
        if owner is None:
            raise KeyError(f"no bug {rest!r} in the lineage log")
        return "bug", rest, log.chain(owner)
    if target in log.bug_owner:
        return "bug", target, log.chain(log.bug_owner[target])
    if target in log.records:
        return "entry", target, log.chain(target)
    if target in log.edge_owner:
        return "edge", target, log.chain(log.edge_owner[target])
    raise KeyError(
        f"{target!r} is not a known bug, entry, or edge "
        f"(prefix with bug:/entry:/edge: to disambiguate)"
    )


def format_chain(
    kind: str, resolved: str, chain: list[LineageRecord]
) -> str:
    """The human-facing reproduction chain, root first."""
    lines = [f"{kind} {resolved}: reproduction chain ({len(chain)} steps)"]
    for depth, rec in enumerate(chain):
        extra = ""
        if rec.burst_id is not None:
            extra = (
                f" burst={rec.burst_id} predicted={rec.predicted}"
            )
        if rec.superseded_by is not None:
            extra += f" superseded_by={rec.superseded_by}"
        lines.append(
            f"  #{depth} {rec.entry_id}  {rec.engine}/{rec.slot} "
            f"{rec.operator}  gain={rec.gain} t={rec.time:.0f} "
            f"w{rec.worker}{extra}"
        )
    if not chain:
        lines.append("  (empty chain)")
    return "\n".join(lines) + "\n"
