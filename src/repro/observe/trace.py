"""Deterministic hierarchical tracing over virtual time.

A :class:`Tracer` collects *complete* spans — a named interval of
virtual seconds on a track — and *instant* events (faults, breaker
trips, crash hits).  Tracks map to the simulated fleet: one per worker
(``worker0`` … ``workerN``), one for the shared serving tier
(``serve``), one for the campaign harness (``campaign``).

There are no explicit parent ids: spans nest by time containment within
a track, which is exactly how the Chrome ``trace_event`` viewer stacks
"X" events on a thread.  An iteration span on ``worker2`` contains its
mutate/exec/triage spans because the virtual clock says so, and the
exported trace shows the same hierarchy Perfetto would reconstruct.

All timestamps are virtual seconds from the worker clocks, so a trace
is a pure function of the campaign seed: same seed, byte-identical
trace; a tracer restored from a checkpoint continues the same event
sequence the captured one would have produced.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Instant", "Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """A completed interval of virtual time on a track."""

    track: str
    name: str
    start: float
    end: float
    cat: str = "phase"
    args: dict = field(default_factory=dict)
    seq: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A point event on a track (fault, breaker trip, crash hit...)."""

    track: str
    name: str
    time: float
    cat: str = "event"
    args: dict = field(default_factory=dict)
    seq: int = 0


class Tracer:
    """Collects spans and instants in deterministic recording order."""

    def __init__(self):
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self._seq = 0

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def record(
        self,
        track: str,
        name: str,
        start: float,
        end: float,
        cat: str = "phase",
        **args,
    ) -> Span:
        span = Span(track, name, start, end, cat, args, self._next_seq())
        self.spans.append(span)
        return span

    def instant(
        self, track: str, name: str, time: float, cat: str = "event", **args
    ) -> Instant:
        event = Instant(track, name, time, cat, args, self._next_seq())
        self.instants.append(event)
        return event

    @contextmanager
    def span(self, track: str, name: str, clock, cat: str = "phase", **args):
        """Record a span covering the virtual time the body advances."""
        start = clock.now
        try:
            yield
        finally:
            self.record(track, name, start, clock.now, cat, **args)

    def tracks(self) -> list[str]:
        seen = {span.track for span in self.spans}
        seen.update(event.track for event in self.instants)
        return sorted(seen)

    def events(self):
        """Spans and instants interleaved in recording order."""
        merged = list(self.spans) + list(self.instants)
        merged.sort(key=lambda event: event.seq)
        return merged

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        return {
            "seq": self._seq,
            "spans": [
                [s.track, s.name, s.start, s.end, s.cat, s.args, s.seq]
                for s in self.spans
            ],
            "instants": [
                [e.track, e.name, e.time, e.cat, e.args, e.seq]
                for e in self.instants
            ],
        }

    def restore(self, state: dict) -> None:
        self._seq = int(state["seq"])
        self.spans = [
            Span(track, name, start, end, cat, dict(args), seq)
            for track, name, start, end, cat, args, seq in state["spans"]
        ]
        self.instants = [
            Instant(track, name, time, cat, dict(args), seq)
            for track, name, time, cat, args, seq in state["instants"]
        ]
