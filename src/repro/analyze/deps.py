"""The argument-dependency oracle: static slicing of branch predicates.

Snowplow's premise (§3–§4) is that the compare instructions guarding an
uncovered branch are statically correlated with the syscall argument
that steers it; PMM *learns* that correlation from mutation data.  The
synthetic kernel constructs the correlation deterministically — every
:class:`ArgCondition` renders its steering slot's token into the block's
assembly — so it can also be *computed*: for each block this module
intersects the predicate sets of all entry paths, yielding the
**mandatory predicates** every execution reaching the block must
resolve.  Mandatory :class:`ArgCondition`\\ s name exact
``(syscall, path)`` steering slots; mandatory
:class:`StateCondition`\\ s are chased through a def-use chain to the
effect blocks of the producer syscalls that write the flag, whose own
mandatory slots become secondary steering slots.

:class:`StaticOracleLocalizer` packages the slice as a drop-in
:class:`~repro.fuzzer.localizer.Localizer`.  Scored against the static
truth it defines, it is exact by construction — the upper-bound row of
the Table-1 selector comparison, and the statically attainable maximum
PMM's precision/recall are reported against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.reach import AbstractValue
from repro.kernel.blocks import BlockRole
from repro.kernel.build import Kernel
from repro.kernel.cfg import HandlerCFG
from repro.kernel.conditions import ArgCondition, StateCondition, scalar_view
from repro.syzlang.program import ArgPath, Program, ResourceValue
from repro.syzlang.slots import slot_token

__all__ = [
    "BlockDependencies",
    "DependencyOracle",
    "Predicate",
    "StateDependency",
    "StaticOracleLocalizer",
    "SteeringSlot",
    "static_truths",
]


@dataclass(frozen=True)
class Predicate:
    """One resolved branch: a condition plus the polarity taken."""

    condition: ArgCondition | StateCondition
    taken: bool


@dataclass(frozen=True)
class SteeringSlot:
    """An exact argument slot that steers a block."""

    syscall: str
    path_elements: tuple[int, ...]

    @property
    def token(self) -> str:
        return slot_token(self.syscall, self.path_elements)

    def arg_paths(self, program: Program) -> list[ArgPath]:
        """The slot instantiated on every matching call of ``program``
        (paths that do not exist in the concrete value tree still
        count: steering them requires materializing them)."""
        return [
            ArgPath(call_index, self.path_elements)
            for call_index, call in enumerate(program.calls)
            if call.spec.full_name == self.syscall
        ]


@dataclass(frozen=True)
class StateDependency:
    """A mandatory state predicate, resolved through its producers.

    ``producers`` are the syscalls whose effect blocks write the flag;
    ``producer_slots`` are the mandatory steering slots of those effect
    blocks — mutating them steers the *producer* toward its commit path,
    which is how an argument mutation can flip a state branch at all.
    ``default_satisfied`` means a fresh :class:`KernelState` (flag 0)
    already resolves the branch the required way, so no producer call
    is needed.
    """

    key: str
    operand: int
    taken: bool
    producers: tuple[str, ...]
    producer_slots: tuple[SteeringSlot, ...]

    @property
    def default_satisfied(self) -> bool:
        satisfied_at_zero = 0 == self.operand
        return satisfied_at_zero == self.taken


@dataclass(frozen=True)
class BlockDependencies:
    """The full static slice of one block."""

    block_id: int
    syscall: str
    predicates: tuple[Predicate, ...]
    slots: tuple[SteeringSlot, ...]
    state_deps: tuple[StateDependency, ...]

    def steering_paths(self, program: Program) -> list[ArgPath]:
        """Every argument path of ``program`` that steers this block:
        direct slots first, then producer slots of unresolved state
        dependencies, deduplicated in deterministic order."""
        paths: list[ArgPath] = []
        seen: set[ArgPath] = set()
        slot_queue = list(self.slots)
        for dep in self.state_deps:
            if not dep.default_satisfied:
                slot_queue.extend(dep.producer_slots)
        for slot in slot_queue:
            for path in slot.arg_paths(program):
                if path not in seen:
                    seen.add(path)
                    paths.append(path)
        return paths

    def slot_abstracts(self) -> dict[tuple[str, tuple[int, ...]], AbstractValue]:
        """Per-slot :class:`AbstractValue` implied by the mandatory
        argument predicates (the value set a call must place in each
        slot for every predicate on it to resolve the required way)."""
        out: dict[tuple[str, tuple[int, ...]], AbstractValue] = {}
        for predicate in self.predicates:
            condition = predicate.condition
            if not isinstance(condition, ArgCondition):
                continue
            key = (condition.syscall, condition.path_elements)
            refined = out.get(key, AbstractValue()).refine(
                condition.op, condition.operand, predicate.taken
            )
            if refined is not None:
                out[key] = refined
        return out

    def pending_paths(self, program: Program) -> list[ArgPath]:
        """The steering paths whose *current* value still violates a
        mandatory predicate — what a directed mutation has to fix.

        Slots the program already satisfies are excluded so steering
        does not re-randomize them (and lose the progress the corpus
        entry encodes); producer slots of state dependencies have no
        local abstract value and always stay pending.
        """
        abstracts = self.slot_abstracts()
        pending: list[ArgPath] = []
        for path in self.steering_paths(program):
            call = program.calls[path.call_index]
            abstract = abstracts.get((call.spec.full_name, path.elements))
            if abstract is None:
                pending.append(path)
                continue
            try:
                value = program.get(path)
            except Exception:
                pending.append(path)  # slot not materialized yet
                continue
            if isinstance(value, ResourceValue):
                # The executor resolves a wired producer to a positive
                # handle; an unwired resource stays 0.
                concrete = 1 if value.producer is not None else 0
            else:
                concrete = scalar_view(value)
            if not abstract.admits(concrete):
                pending.append(path)
        return pending


def _topological_order(cfg: HandlerCFG) -> list[int]:
    in_degree = {block_id: 0 for block_id in cfg.blocks}
    for block_id in cfg.blocks:
        for succ in cfg.successors(block_id):
            in_degree[succ] += 1
    ready = [bid for bid, deg in sorted(in_degree.items()) if deg == 0]
    order: list[int] = []
    while ready:
        current = ready.pop()
        order.append(current)
        for succ in cfg.successors(current):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.append(succ)
    return order


class DependencyOracle:
    """Mandatory-predicate slices for every block of a kernel."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._mandatory: dict[int, frozenset[Predicate]] = {}
        self._effect_writers: dict[str, list[int]] = {}
        for block_id, block in kernel.blocks.items():
            for key, _value in block.effects:
                self._effect_writers.setdefault(key, []).append(block_id)
        for writers in self._effect_writers.values():
            writers.sort()
        for cfg in kernel.handlers.values():
            self._slice_handler(cfg)

    def _slice_handler(self, cfg: HandlerCFG) -> None:
        """Intersection dataflow: a predicate is mandatory for a block
        iff every incoming edge carries it (either inherited from the
        predecessor or contributed by the branch edge itself)."""
        preds: dict[int, list[tuple[int, Predicate | None]]] = {
            block_id: [] for block_id in cfg.blocks
        }
        for block_id, block in cfg.blocks.items():
            succs = cfg.successors(block_id)
            if (
                block.role is BlockRole.CONDITION
                and block.condition is not None
                and len(succs) == 2
                and succs[0] != succs[1]
            ):
                preds[succs[0]].append(
                    (block_id, Predicate(block.condition, taken=False))
                )
                preds[succs[1]].append(
                    (block_id, Predicate(block.condition, taken=True))
                )
            else:
                for succ in succs:
                    preds[succ].append((block_id, None))
        self._mandatory[cfg.entry] = frozenset()
        for block_id in _topological_order(cfg):
            if block_id == cfg.entry:
                continue
            incoming: frozenset[Predicate] | None = None
            for pred_id, edge in preds[block_id]:
                carried = self._mandatory[pred_id]
                if edge is not None:
                    carried = carried | {edge}
                incoming = carried if incoming is None else incoming & carried
            self._mandatory[block_id] = incoming or frozenset()

    # ----- public API -----

    def mandatory_predicates(self, block_id: int) -> tuple[Predicate, ...]:
        """Every predicate all entry paths to ``block_id`` resolve,
        in deterministic order."""
        mandatory = self._mandatory.get(block_id, frozenset())
        return tuple(sorted(mandatory, key=_predicate_sort_key))

    def dependencies(self, block_id: int) -> BlockDependencies:
        syscall = self.kernel.handler_of_block.get(block_id, "")
        predicates = self.mandatory_predicates(block_id)
        slots: list[SteeringSlot] = []
        seen_slots: set[SteeringSlot] = set()
        state_deps: list[StateDependency] = []
        for predicate in predicates:
            condition = predicate.condition
            if isinstance(condition, ArgCondition):
                slot = SteeringSlot(condition.syscall, condition.path_elements)
                if slot not in seen_slots:
                    seen_slots.add(slot)
                    slots.append(slot)
            elif isinstance(condition, StateCondition):
                state_deps.append(
                    self._resolve_state(condition, predicate.taken)
                )
        return BlockDependencies(
            block_id=block_id,
            syscall=syscall,
            predicates=predicates,
            slots=tuple(slots),
            state_deps=tuple(state_deps),
        )

    def _resolve_state(
        self, condition: StateCondition, taken: bool
    ) -> StateDependency:
        """Def-use chase: from a flag read to the effect blocks that
        write it, pulling in the producers' own mandatory slots."""
        producers: list[str] = []
        producer_slots: list[SteeringSlot] = []
        seen: set[SteeringSlot] = set()
        for writer in self._effect_writers.get(condition.key, ()):
            producer = self.kernel.handler_of_block.get(writer)
            if producer is None:
                continue
            if producer not in producers:
                producers.append(producer)
            for predicate in self.mandatory_predicates(writer):
                inner = predicate.condition
                if isinstance(inner, ArgCondition):
                    slot = SteeringSlot(inner.syscall, inner.path_elements)
                    if slot not in seen:
                        seen.add(slot)
                        producer_slots.append(slot)
        return StateDependency(
            key=condition.key,
            operand=condition.operand,
            taken=taken,
            producers=tuple(sorted(producers)),
            producer_slots=tuple(producer_slots),
        )

    def effect_writers(self, key: str) -> tuple[int, ...]:
        return tuple(self._effect_writers.get(key, ()))


def _predicate_sort_key(predicate: Predicate):
    condition = predicate.condition
    if isinstance(condition, ArgCondition):
        return (0, condition.syscall, condition.path_elements,
                condition.op.value, condition.operand, predicate.taken)
    return (1, condition.key, (), "", condition.operand, predicate.taken)


class StaticOracleLocalizer:
    """Exact argument localization from the dependency oracle.

    A drop-in :class:`~repro.fuzzer.localizer.Localizer`: for each
    target block it returns the mandatory steering slots instantiated on
    the program's matching calls, including producer slots for state
    dependencies a fresh kernel state leaves unresolved.  Unlike
    :class:`~repro.snowplow.oracle.OracleLocalizer` (which reads only
    the closest guarding condition), this covers the *whole* mandatory
    chain — the statically attainable maximum a learned selector is
    measured against.
    """

    def __init__(
        self,
        kernel: Kernel,
        oracle: DependencyOracle | None = None,
        max_paths: int | None = None,
    ):
        self.kernel = kernel
        self.oracle = oracle if oracle is not None else DependencyOracle(kernel)
        self.max_paths = max_paths

    def target_paths(self, program: Program, targets) -> list[ArgPath]:
        """Untruncated steering paths for ``targets``, deduplicated in
        deterministic order — the static ground truth for one example."""
        paths: list[ArgPath] = []
        seen: set[ArgPath] = set()
        for target in sorted(targets or ()):
            deps = self.oracle.dependencies(target)
            for path in deps.steering_paths(program):
                if path not in seen:
                    seen.add(path)
                    paths.append(path)
        return paths

    def localize(self, program, coverage, targets, rng) -> list[ArgPath]:
        paths = self.target_paths(program, targets)
        if self.max_paths is not None:
            return paths[: self.max_paths]
        return paths


def static_truths(
    localizer: StaticOracleLocalizer,
    programs: list[Program],
    examples,
) -> list[set[ArgPath]]:
    """Static ground-truth selection sets for dataset examples.

    For each :class:`~repro.pmm.dataset.MutationExample`, the truth is
    the full set of steering paths the oracle derives for its targets on
    its base program.  Scoring any selector's predictions against these
    sets with :func:`repro.pmm.metrics.evaluate_selector` reports
    performance relative to the statically attainable maximum; the
    static oracle itself scores 1.0 across the board by construction.
    """
    return [
        set(localizer.target_paths(
            programs[example.base_index], example.targets
        ))
        for example in examples
    ]
