"""Static release-diff analysis and patch-directed target selection.

The highest-value fuzzing targets are the blocks that *changed* between
two kernel releases — the regression surface Patch-to-PoC style systems
exploit (PAPERS.md).  This module computes that surface statically:

1. **Diff** (:func:`compute_impact`): pair the per-syscall CFGs of two
   kernel builds block-by-block and compare content signatures
   (:meth:`~repro.kernel.blocks.BasicBlock.signature`).  Handler labels
   never embed block ids and unperturbed handlers regenerate
   byte-identically across releases, so a simultaneous breadth-first
   walk from the paired entries pairs blocks positionally and the
   signature decides added/removed/modified.  The result is a canonical
   :class:`ImpactReport` — added/removed handlers and blocks, changed
   predicates, and the bug chains the change can influence.

2. **Classify** (:func:`build_target_manifest`): every changed block in
   the new kernel is classified with the PR-5 interval+bitmask domain:
   ``unreachable`` (no satisfiable entry path — sound, because the
   reachability DFS only ever over-approximates the feasible set),
   ``unsteerable`` (feasible, but guarded only by state flags whose
   producers expose no argument slots), or ``solvable``.  The classified
   surface is a :class:`TargetManifest`, the artifact `analyze impact`
   emits and `fuzz --directed` consumes.

3. **Direct** (:class:`PatchDirector`): at fuzz time the manifest plus
   a :class:`~repro.analyze.distance.DistanceField` turn into directed
   scheduling — distance-weighted target selection, pending-slot
   steering through the dependency oracle (with concrete operand hints
   from the abstract domain), and resource-aware planting of target and
   producer calls.  Progress is published as ``directed.*`` gauges.

Three impact-scope lint checks gate the manifest:
``changed-block-unreachable`` and ``changed-block-unsteerable`` warn
about changed code the fuzzer cannot (fully) exercise, and
``delta-spec-drift`` errors when the release diff and the syscall-table
deltas disagree about which handlers appeared — the cross-check between
specgen's declarative :data:`~repro.syzlang.stdlib.RELEASE_DELTAS` and
what the kernel actually grew.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.analyze.deps import BlockDependencies, DependencyOracle
from repro.analyze.distance import DistanceField
from repro.analyze.lint import _REGISTRY, Finding, Severity, _run, impact_check
from repro.analyze.reach import ReachabilityAnalysis
from repro.errors import AnalysisError
from repro.fuzzer.directed import plant_target_call
from repro.fuzzer.engine import MutationEngine, MutationOutcome
from repro.fuzzer.mutations import MutationType
from repro.kernel.blocks import BlockRole
from repro.kernel.build import Kernel
from repro.kernel.conditions import ArgCondition, StateCondition
from repro.rng import choice_weighted
from repro.syzlang.program import Program

__all__ = [
    "CLASSIFICATIONS",
    "HandlerDiff",
    "ImpactReport",
    "ImpactTarget",
    "MANIFEST_VERSION",
    "PatchDirector",
    "PredicateChange",
    "TargetManifest",
    "build_target_manifest",
    "classify_block",
    "compute_impact",
    "describe_condition",
    "run_impact_checks",
]

MANIFEST_VERSION = 1

CLASSIFICATIONS = ("solvable", "unsteerable", "unreachable")


def describe_condition(condition: object | None) -> str:
    """Stable human-readable rendering of a branch condition."""
    if condition is None:
        return "-"
    if isinstance(condition, ArgCondition):
        path = ".".join(str(element) for element in condition.path_elements)
        return (
            f"{condition.syscall}[{path}] {condition.op.name} "
            f"{condition.operand}"
        )
    if isinstance(condition, StateCondition):
        return f"flag {condition.key} == {condition.operand}"
    return repr(condition)


# ---------------------------------------------------------------------------
# The diff


@dataclass(frozen=True)
class HandlerDiff:
    """Per-syscall block delta between two builds.

    Block ids are new-kernel ids for ``added``, old-kernel ids for
    ``removed``, and ``(old_id, new_id)`` pairs for ``modified``.
    """

    syscall: str
    status: str  # "added" | "removed" | "modified"
    added: tuple[int, ...] = ()
    removed: tuple[int, ...] = ()
    modified: tuple[tuple[int, int], ...] = ()

    def to_dict(self) -> dict:
        return {
            "syscall": self.syscall,
            "status": self.status,
            "added": list(self.added),
            "removed": list(self.removed),
            "modified": [list(pair) for pair in self.modified],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HandlerDiff":
        return cls(
            syscall=payload["syscall"],
            status=payload["status"],
            added=tuple(payload["added"]),
            removed=tuple(payload["removed"]),
            modified=tuple(
                (pair[0], pair[1]) for pair in payload["modified"]
            ),
        )


@dataclass(frozen=True)
class PredicateChange:
    """A branch predicate that differs between the releases."""

    syscall: str
    old_block_id: int | None
    new_block_id: int | None
    old: str
    new: str

    def to_dict(self) -> dict:
        return {
            "syscall": self.syscall,
            "old_block_id": self.old_block_id,
            "new_block_id": self.new_block_id,
            "old": self.old,
            "new": self.new,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PredicateChange":
        return cls(
            syscall=payload["syscall"],
            old_block_id=payload["old_block_id"],
            new_block_id=payload["new_block_id"],
            old=payload["old"],
            new=payload["new"],
        )


@dataclass(frozen=True)
class ImpactReport:
    """Canonical release diff between two kernel builds."""

    from_version: str
    to_version: str
    handlers: tuple[HandlerDiff, ...]
    added_handlers: tuple[str, ...]
    removed_handlers: tuple[str, ...]
    unchanged_handlers: int
    changed_predicates: tuple[PredicateChange, ...]
    touched_bugs: tuple[str, ...]

    def changed_blocks(self) -> tuple[int, ...]:
        """New-kernel ids of every added or modified block."""
        blocks: set[int] = set()
        for diff in self.handlers:
            blocks.update(diff.added)
            blocks.update(new_id for _, new_id in diff.modified)
        return tuple(sorted(blocks))

    def removed_blocks(self) -> tuple[int, ...]:
        """Old-kernel ids of every removed block."""
        blocks: set[int] = set()
        for diff in self.handlers:
            blocks.update(diff.removed)
        return tuple(sorted(blocks))

    def kind_of(self, block_id: int) -> str | None:
        """"added" / "modified" for a new-kernel changed block."""
        for diff in self.handlers:
            if block_id in diff.added:
                return "added"
            if any(new_id == block_id for _, new_id in diff.modified):
                return "modified"
        return None

    def to_json(self) -> str:
        payload = {
            "version": MANIFEST_VERSION,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "added_handlers": list(self.added_handlers),
            "removed_handlers": list(self.removed_handlers),
            "unchanged_handlers": self.unchanged_handlers,
            "handlers": [diff.to_dict() for diff in self.handlers],
            "changed_predicates": [
                change.to_dict() for change in self.changed_predicates
            ],
            "touched_bugs": list(self.touched_bugs),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ImpactReport":
        payload = json.loads(text)
        if payload.get("version") != MANIFEST_VERSION:
            raise AnalysisError(
                f"unsupported impact version {payload.get('version')!r}"
            )
        return cls(
            from_version=payload["from_version"],
            to_version=payload["to_version"],
            handlers=tuple(
                HandlerDiff.from_dict(entry) for entry in payload["handlers"]
            ),
            added_handlers=tuple(payload["added_handlers"]),
            removed_handlers=tuple(payload["removed_handlers"]),
            unchanged_handlers=payload["unchanged_handlers"],
            changed_predicates=tuple(
                PredicateChange.from_dict(entry)
                for entry in payload["changed_predicates"]
            ),
            touched_bugs=tuple(payload["touched_bugs"]),
        )


def _pair_blocks(old_cfg, new_cfg) -> dict[int, int]:
    """Pair blocks of two handler builds by simultaneous BFS.

    Handler CFGs are built back-to-front from the same recipe, so the
    positional successor order is stable: successor k of a paired block
    plays the same structural role in both builds.  Each block pairs at
    most once; first (BFS-order) pairing wins, which is deterministic.
    """
    pairs: dict[int, int] = {}
    seen_new: set[int] = set()
    queue: deque[tuple[int, int]] = deque([(old_cfg.entry, new_cfg.entry)])
    while queue:
        old_id, new_id = queue.popleft()
        if old_id in pairs or new_id in seen_new:
            continue
        pairs[old_id] = new_id
        seen_new.add(new_id)
        old_succs = old_cfg.successors(old_id)
        new_succs = new_cfg.successors(new_id)
        for old_succ, new_succ in zip(old_succs, new_succs):
            queue.append((old_succ, new_succ))
    return pairs


def compute_impact(old_kernel: Kernel, new_kernel: Kernel) -> ImpactReport:
    """Statically diff two kernel builds into an :class:`ImpactReport`."""
    old_handlers = set(old_kernel.handlers)
    new_handlers = set(new_kernel.handlers)
    added_handlers = tuple(sorted(new_handlers - old_handlers))
    removed_handlers = tuple(sorted(old_handlers - new_handlers))

    diffs: list[HandlerDiff] = []
    predicate_changes: list[PredicateChange] = []
    unchanged = 0

    for syscall in added_handlers:
        cfg = new_kernel.handlers[syscall]
        diffs.append(HandlerDiff(
            syscall=syscall, status="added",
            added=tuple(sorted(cfg.blocks)),
        ))
        for block_id in sorted(cfg.blocks):
            block = cfg.blocks[block_id]
            if block.role is BlockRole.CONDITION:
                predicate_changes.append(PredicateChange(
                    syscall=syscall, old_block_id=None,
                    new_block_id=block_id, old="-",
                    new=describe_condition(block.condition),
                ))
    for syscall in removed_handlers:
        cfg = old_kernel.handlers[syscall]
        diffs.append(HandlerDiff(
            syscall=syscall, status="removed",
            removed=tuple(sorted(cfg.blocks)),
        ))

    for syscall in sorted(old_handlers & new_handlers):
        old_cfg = old_kernel.handlers[syscall]
        new_cfg = new_kernel.handlers[syscall]
        pairs = _pair_blocks(old_cfg, new_cfg)
        modified: list[tuple[int, int]] = []
        for old_id in sorted(pairs):
            new_id = pairs[old_id]
            old_block = old_cfg.blocks[old_id]
            new_block = new_cfg.blocks[new_id]
            if old_block.signature() == new_block.signature():
                continue
            modified.append((old_id, new_id))
            old_text = describe_condition(old_block.condition)
            new_text = describe_condition(new_block.condition)
            if old_text != new_text:
                predicate_changes.append(PredicateChange(
                    syscall=syscall, old_block_id=old_id,
                    new_block_id=new_id, old=old_text, new=new_text,
                ))
        added = tuple(sorted(set(new_cfg.blocks) - set(pairs.values())))
        removed = tuple(sorted(set(old_cfg.blocks) - set(pairs)))
        for block_id in added:
            block = new_cfg.blocks[block_id]
            if block.role is BlockRole.CONDITION:
                predicate_changes.append(PredicateChange(
                    syscall=syscall, old_block_id=None,
                    new_block_id=block_id, old="-",
                    new=describe_condition(block.condition),
                ))
        if not (added or removed or modified):
            unchanged += 1
            continue
        diffs.append(HandlerDiff(
            syscall=syscall, status="modified",
            added=added, removed=removed, modified=tuple(modified),
        ))

    diffs.sort(key=lambda diff: (diff.syscall, diff.status))
    predicate_changes.sort(
        key=lambda change: (
            change.syscall,
            change.new_block_id if change.new_block_id is not None else -1,
            change.old_block_id if change.old_block_id is not None else -1,
        )
    )

    report = ImpactReport(
        from_version=old_kernel.version,
        to_version=new_kernel.version,
        handlers=tuple(diffs),
        added_handlers=added_handlers,
        removed_handlers=removed_handlers,
        unchanged_handlers=unchanged,
        changed_predicates=tuple(predicate_changes),
        touched_bugs=(),
    )
    return ImpactReport(
        from_version=report.from_version,
        to_version=report.to_version,
        handlers=report.handlers,
        added_handlers=report.added_handlers,
        removed_handlers=report.removed_handlers,
        unchanged_handlers=report.unchanged_handlers,
        changed_predicates=report.changed_predicates,
        touched_bugs=_touched_bugs(old_kernel, new_kernel, report),
    )


def _touched_bugs(
    old_kernel: Kernel, new_kernel: Kernel, report: ImpactReport
) -> tuple[str, ...]:
    """Bug chains the release change can influence: new/removed bugs,
    plus bugs whose crash block sits downstream of any changed block."""
    old_ids = {bug.bug_id for bug in old_kernel.bugs}
    new_ids = {bug.bug_id for bug in new_kernel.bugs}
    touched: set[str] = (old_ids ^ new_ids)
    changed = set(report.changed_blocks())
    for bug in new_kernel.bugs:
        if bug.bug_id in touched:
            continue
        crash_block = new_kernel.bug_blocks.get(bug.bug_id)
        if crash_block is None:
            continue
        if crash_block in changed:
            touched.add(bug.bug_id)
            continue
        upstream = new_kernel.distance_to(crash_block)
        if any(block_id in upstream for block_id in changed):
            touched.add(bug.bug_id)
    return tuple(sorted(touched))


# ---------------------------------------------------------------------------
# Classification and the target manifest


def classify_block(
    block_id: int,
    reach: ReachabilityAnalysis,
    oracle: DependencyOracle,
) -> tuple[str, str]:
    """(classification, reason) for one block of the new kernel.

    ``unreachable`` is sound: the feasibility DFS degrades by
    over-approximating the feasible set, so a block it calls dead has
    *provably* no satisfiable entry path and no witness program exists.
    """
    if reach.is_dead(block_id):
        return (
            "unreachable",
            "no satisfiable entry path resolves the guarding predicates",
        )
    deps = oracle.dependencies(block_id)
    unsteerable = (
        not deps.slots
        and not any(dep.producer_slots for dep in deps.state_deps)
        and any(not dep.default_satisfied for dep in deps.state_deps)
    )
    if unsteerable:
        return (
            "unsteerable",
            "guarded only by state flags whose producers expose no "
            "steering slots",
        )
    detail = (
        f"{len(deps.slots)} direct slots, "
        f"{sum(len(dep.producer_slots) for dep in deps.state_deps)} "
        "producer slots"
    )
    return ("solvable", detail)


@dataclass(frozen=True)
class ImpactTarget:
    """One classified changed block of the new kernel."""

    block_id: int
    syscall: str
    kind: str  # "added" | "modified"
    classification: str
    depth: int
    label: str
    reason: str

    def to_dict(self) -> dict:
        return {
            "block_id": self.block_id,
            "syscall": self.syscall,
            "kind": self.kind,
            "classification": self.classification,
            "depth": self.depth,
            "label": self.label,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ImpactTarget":
        return cls(
            block_id=payload["block_id"],
            syscall=payload["syscall"],
            kind=payload["kind"],
            classification=payload["classification"],
            depth=payload["depth"],
            label=payload["label"],
            reason=payload["reason"],
        )


@dataclass(frozen=True)
class TargetManifest:
    """The classified changed surface `fuzz --directed` consumes."""

    from_version: str
    to_version: str
    targets: tuple[ImpactTarget, ...]

    def counts(self) -> dict[str, int]:
        out = {classification: 0 for classification in CLASSIFICATIONS}
        for target in self.targets:
            out[target.classification] += 1
        return out

    def fuzzable_blocks(self) -> tuple[int, ...]:
        """Changed blocks worth scheduling: everything not proven dead."""
        return tuple(sorted(
            target.block_id
            for target in self.targets
            if target.classification != "unreachable"
        ))

    def to_json(self) -> str:
        payload = {
            "version": MANIFEST_VERSION,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "counts": self.counts(),
            "targets": [target.to_dict() for target in self.targets],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "TargetManifest":
        payload = json.loads(text)
        if payload.get("version") != MANIFEST_VERSION:
            raise AnalysisError(
                f"unsupported manifest version {payload.get('version')!r}"
            )
        return cls(
            from_version=payload["from_version"],
            to_version=payload["to_version"],
            targets=tuple(
                ImpactTarget.from_dict(entry)
                for entry in payload["targets"]
            ),
        )


def build_target_manifest(
    old_kernel: Kernel,
    new_kernel: Kernel,
    report: ImpactReport | None = None,
    reach: ReachabilityAnalysis | None = None,
    oracle: DependencyOracle | None = None,
) -> TargetManifest:
    """Classify every changed block of the new kernel into a manifest."""
    if report is None:
        report = compute_impact(old_kernel, new_kernel)
    if reach is None:
        reach = ReachabilityAnalysis(new_kernel)
    if oracle is None:
        oracle = DependencyOracle(new_kernel)
    targets: list[ImpactTarget] = []
    for block_id in report.changed_blocks():
        syscall = new_kernel.handler_of_block.get(block_id)
        if syscall is None or syscall not in new_kernel.handlers:
            continue
        cfg = new_kernel.handlers[syscall]
        classification, reason = classify_block(block_id, reach, oracle)
        targets.append(ImpactTarget(
            block_id=block_id,
            syscall=syscall,
            kind=report.kind_of(block_id) or "modified",
            classification=classification,
            depth=cfg.depth_of(block_id),
            label=new_kernel.blocks[block_id].label,
            reason=reason,
        ))
    return TargetManifest(
        from_version=report.from_version,
        to_version=report.to_version,
        targets=tuple(targets),
    )


# ---------------------------------------------------------------------------
# Impact lint checks


@dataclass
class ImpactLintContext:
    """Shared state handed to every impact-scope check."""

    report: ImpactReport
    manifest: TargetManifest
    old_kernel: Kernel
    new_kernel: Kernel
    namespace: str = ""

    def finding(self, check, location: str, message: str) -> Finding:
        return Finding(
            check=check.name,
            severity=check.severity,
            scope="impact",
            location=f"{self.namespace}{location}",
            message=message,
        )


@impact_check("changed-block-unreachable", Severity.WARNING)
def _check_changed_unreachable(ctx: ImpactLintContext) -> Iterator[Finding]:
    """Changed blocks no fuzzer can ever cover: dead regression surface."""
    check = _REGISTRY[("impact", "changed-block-unreachable")]
    for target in ctx.manifest.targets:
        if target.classification != "unreachable":
            continue
        yield ctx.finding(
            check,
            f"{target.syscall}/block/{target.block_id}",
            f"{target.kind} block {target.block_id} is statically dead: "
            "the release changed code no input can execute",
        )


@impact_check("changed-block-unsteerable", Severity.WARNING)
def _check_changed_unsteerable(ctx: ImpactLintContext) -> Iterator[Finding]:
    """Changed blocks only reachable through unsteerable state flags."""
    check = _REGISTRY[("impact", "changed-block-unsteerable")]
    for target in ctx.manifest.targets:
        if target.classification != "unsteerable":
            continue
        yield ctx.finding(
            check,
            f"{target.syscall}/block/{target.block_id}",
            f"{target.kind} block {target.block_id} is feasible but "
            "unsteerable: directed mutation can only wait for the "
            "default state to flip",
        )


@impact_check("delta-spec-drift", Severity.ERROR)
def _check_delta_spec_drift(ctx: ImpactLintContext) -> Iterator[Finding]:
    """The release diff and the syscall-table delta must agree."""
    check = _REGISTRY[("impact", "delta-spec-drift")]
    old_specs = {spec.full_name for spec in ctx.old_kernel.table}
    new_specs = {spec.full_name for spec in ctx.new_kernel.table}
    spec_added = new_specs - old_specs
    spec_removed = old_specs - new_specs
    diff_added = set(ctx.report.added_handlers)
    diff_removed = set(ctx.report.removed_handlers)
    for name in sorted(spec_added - diff_added):
        yield ctx.finding(
            check, f"{name}",
            f"spec {name} appears in the {ctx.report.to_version} table "
            "but the kernel diff shows no new handler for it",
        )
    for name in sorted(diff_added - spec_added):
        yield ctx.finding(
            check, f"{name}",
            f"handler {name} was added in the release diff but the "
            "syscall-table delta declares no such spec",
        )
    for name in sorted(spec_removed - diff_removed):
        yield ctx.finding(
            check, f"{name}",
            f"spec {name} was dropped from the table but its handler "
            "is still present in the new kernel",
        )
    for name in sorted(diff_removed - spec_removed):
        yield ctx.finding(
            check, f"{name}",
            f"handler {name} disappeared from the kernel but its spec "
            "is still declared in the table",
        )


def run_impact_checks(
    report: ImpactReport,
    manifest: TargetManifest,
    old_kernel: Kernel,
    new_kernel: Kernel,
    observer=None,
    checks: Iterable[str] | None = None,
    namespace: str = "",
) -> list[Finding]:
    """Run every (or the named) impact-scope checks; canonical order."""
    ctx = ImpactLintContext(
        report=report,
        manifest=manifest,
        old_kernel=old_kernel,
        new_kernel=new_kernel,
        namespace=namespace,
    )
    return _run("impact", ctx, observer, checks)


# ---------------------------------------------------------------------------
# The patch director


class PatchDirector:
    """Directed scheduling and steering toward a target manifest.

    Attached to a :class:`~repro.snowplow.fuzzer.SnowplowLoop`, the
    director biases frontier-target selection toward the changed
    surface (distance-weighted via :class:`DistanceField`), proposes
    directed mutations (pending-slot steering with concrete operand
    hints, plus resource-aware planting of target and producer calls),
    and tracks time-to-target per changed block.

    With ``observe_only=True`` the director draws no randomness and
    influences nothing — it only records when targets are reached, so a
    plain run stays bit-identical to an undirected baseline while still
    yielding comparable time-to-target numbers.
    """

    def __init__(
        self,
        kernel: Kernel,
        manifest: TargetManifest,
        oracle: DependencyOracle | None = None,
        observer=None,
        observe_only: bool = False,
        directed_share: float = 0.5,
        insert_prob: float = 0.35,
        max_forced_paths: int = 6,
    ):
        self.kernel = kernel
        self.manifest = manifest
        self.oracle = oracle if oracle is not None else DependencyOracle(kernel)
        self.observe_only = observe_only
        self.directed_share = directed_share
        self.insert_prob = insert_prob
        self.max_forced_paths = max_forced_paths
        self._registry = observer.registry if observer is not None else None
        self.targets: tuple[int, ...] = manifest.fuzzable_blocks()
        self.pending: set[int] = set(self.targets)
        self.reached_at: dict[int, float] = {}
        self.last_distance: float = math.inf
        self.last_proposal_paths: int = 0
        self._depths: dict[int, int] = {
            target.block_id: target.depth for target in manifest.targets
        }
        self._field: DistanceField | None = (
            DistanceField(kernel, self.pending) if self.pending else None
        )
        if self._registry is not None:
            self._registry.gauge("directed.targets_total").set(
                len(self.targets)
            )
            if self._field is not None:
                self._registry.gauge(
                    "directed.distance_finite_fraction"
                ).set(self._field.finite_fraction())

    # ----- observation -----

    @property
    def complete(self) -> bool:
        return not self.pending

    def time_to_all(self, horizon: float) -> float:
        """Virtual time until the last target was reached; the horizon
        when some target never was."""
        if self.pending or not self.targets:
            return horizon
        return max(self.reached_at.values())

    def note_coverage(self, covered: set[int], now: float) -> None:
        """Record newly reached targets and refresh the distance field.

        Called on every new-coverage admit; does not draw randomness,
        so it is safe in observe-only mode.
        """
        hit = self.pending & covered
        if hit:
            for block_id in sorted(hit):
                self.reached_at[block_id] = now
            self.pending -= hit
            self._field = (
                DistanceField(self.kernel, self.pending)
                if self.pending else None
            )
        if self._field is not None:
            self.last_distance = self._field.program_distance(covered)
        else:
            self.last_distance = 0.0
        self.publish()

    def publish(self) -> None:
        """Refresh the ``directed.*`` convergence gauges."""
        if self._registry is None:
            return
        self._registry.gauge("directed.targets_reached").set(
            len(self.reached_at)
        )
        self._registry.gauge("directed.targets_pending").set(
            len(self.pending)
        )
        if not math.isinf(self.last_distance):
            self._registry.gauge("directed.distance_min").set(
                self.last_distance
            )
        if not self.pending and self.reached_at:
            self._registry.gauge("directed.time_to_last_target").set(
                max(self.reached_at.values())
            )

    # ----- scheduling -----

    def rank_targets(self, pool: list[int], limit: int) -> list[int]:
        """The ``limit`` pool blocks nearest the pending surface,
        pending targets themselves first (distance 0)."""
        if self._field is None:
            return []
        field = self._field
        ranked = sorted(
            pool, key=lambda block_id: (field.block_distance(block_id),
                                        block_id)
        )
        return [
            block_id for block_id in ranked[:limit]
            if not math.isinf(field.block_distance(block_id))
        ]

    # ----- steering -----

    def propose(
        self,
        program: Program,
        engine: MutationEngine,
        rng: np.random.Generator,
    ) -> MutationOutcome | None:
        """One directed mutation toward a pending target, or None when
        the director has nothing useful to do for this base."""
        self.last_proposal_paths = 0
        if not self.pending:
            return None
        target = self._choose_target(rng)
        deps = self.oracle.dependencies(target)
        syscall = self.kernel.handler_of_block.get(target, "")
        missing = self._missing_producer(deps, program, rng)
        if missing is not None:
            mutated = program.clone()
            plant_target_call(mutated, engine.generator, missing, rng)
            return MutationOutcome(
                mutated, MutationType.SYSCALL_INSERTION, []
            )
        has_call = any(
            call.spec.full_name == syscall for call in program.calls
        )
        if not has_call or rng.random() < self.insert_prob:
            mutated = program.clone()
            if not plant_target_call(mutated, engine.generator, syscall, rng):
                return None
            return MutationOutcome(
                mutated, MutationType.SYSCALL_INSERTION, []
            )
        paths = deps.pending_paths(program)
        if not paths:
            paths = deps.steering_paths(program)
        if not paths:
            return None
        paths = paths[: self.max_forced_paths]
        self.last_proposal_paths = len(paths)
        return engine.mutate_test(
            program, forced_paths=paths, hints=self._hints(deps)
        )

    def _choose_target(self, rng: np.random.Generator) -> int:
        """Weight pending targets by shallowness: depth counts the
        branch predicates guarding the block, the work left to solve."""
        pending = sorted(self.pending)
        weights = [
            1.0 / (1.0 + self._depths.get(block_id, 0))
            for block_id in pending
        ]
        return choice_weighted(rng, pending, weights)

    def _missing_producer(
        self,
        deps: BlockDependencies,
        program: Program,
        rng: np.random.Generator,
    ) -> str | None:
        """A producer syscall the target's state dependencies need that
        the program never calls, if any."""
        present = {call.spec.full_name for call in program.calls}
        for dep in deps.state_deps:
            if dep.default_satisfied or not dep.producers:
                continue
            absent = [name for name in dep.producers if name not in present]
            if absent and len(absent) == len(dep.producers):
                return absent[int(rng.integers(len(absent)))]
        return None

    def _hints(self, deps: BlockDependencies) -> frozenset[int] | None:
        """Concrete operand hints from the abstract domain: a witness
        value per mandatory slot plus the raw comparison operands."""
        values: set[int] = set()
        for abstract in deps.slot_abstracts().values():
            try:
                values.add(abstract.example())
            except AnalysisError:
                continue
        for predicate in deps.predicates:
            condition = predicate.condition
            if isinstance(condition, ArgCondition):
                values.add(condition.operand)
        return frozenset(values) if values else None
