"""Pluggable lint framework over kernel builds and syz corpora.

Checks are small generator functions registered per scope (``kernel`` or
``corpus``) with a fixed severity.  Running a scope yields canonical
:class:`Finding` records — deterministically ordered, serializable to a
byte-stable ``findings.json`` — so lint output can be golden-tested and
diffed in CI exactly like observe artifacts.

Severity calibration matters: the kernel generator's random nested
conditions *routinely* produce statically-dead blocks (two branches on
the same slot with contradictory operands), so a plain contradiction is
a ``warning`` — informative, not gating.  What gates (``error``) are the
invariants the stack actually relies on: bug chains must stay reachable
(a dead crash block can never be found by any fuzzer), every
:class:`ArgCondition` must reference a real steerable slot and render
its token into the block assembly (PMM's training signal), and every
:class:`StateCondition` must have at least one producer writing its flag
(otherwise the branch is vestigial).  ``analyze kernel --strict`` fails
only on errors, so stock releases pass while an injected contradiction
that kills a bug chain fails the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.analyze.deps import DependencyOracle
from repro.analyze.reach import AbstractValue, ReachabilityAnalysis
from repro.errors import AnalysisError, SpecError
from repro.kernel.blocks import BlockRole
from repro.kernel.build import Kernel, enumerate_type_paths, resource_guard_paths
from repro.kernel.conditions import ArgCondition, CondOp, StateCondition
from repro.syzlang.program import Program, PtrValue, ResourceValue
from repro.syzlang.slots import slot_token
from repro.syzlang.spec import SyscallTable
from repro.syzlang.types import FlagsType, PtrType

__all__ = [
    "Check",
    "Finding",
    "FINDINGS_VERSION",
    "Severity",
    "findings_json",
    "kernel_check",
    "corpus_check",
    "impact_check",
    "load_findings",
    "registered_checks",
    "run_corpus_checks",
    "run_kernel_checks",
    "strict_failures",
    "table_mismatch_findings",
]

FINDINGS_VERSION = 1

SEVERITIES = ("info", "warning", "error")


class Severity:
    """Finding severities, ordered info < warning < error."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One lint result, canonical and comparable."""

    check: str
    severity: str
    scope: str
    location: str
    message: str

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "severity": self.severity,
            "scope": self.scope,
            "location": self.location,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            check=payload["check"],
            severity=payload["severity"],
            scope=payload["scope"],
            location=payload["location"],
            message=payload["message"],
        )

    def sort_key(self):
        return (self.scope, self.check, self.location, self.message)


@dataclass(frozen=True)
class Check:
    """A registered lint pass."""

    name: str
    scope: str
    severity: str
    doc: str
    fn: Callable[..., Iterator[Finding]]


_REGISTRY: dict[tuple[str, str], Check] = {}


def _register(scope: str, name: str, severity: str):
    if severity not in SEVERITIES:
        raise AnalysisError(f"unknown severity {severity!r}")

    def decorate(fn):
        check = Check(
            name=name,
            scope=scope,
            severity=severity,
            doc=(fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else "",
            fn=fn,
        )
        key = (scope, name)
        if key in _REGISTRY:
            raise AnalysisError(f"duplicate {scope} check {name!r}")
        _REGISTRY[key] = check
        return fn

    return decorate


def kernel_check(name: str, severity: str):
    """Register a kernel-scope check: ``fn(ctx) -> Iterator[Finding]``."""
    return _register("kernel", name, severity)


def corpus_check(name: str, severity: str):
    """Register a corpus-scope check: ``fn(ctx) -> Iterator[Finding]``."""
    return _register("corpus", name, severity)


def impact_check(name: str, severity: str):
    """Register an impact-scope check: ``fn(ctx) -> Iterator[Finding]``.

    Impact checks run over a release diff and its target manifest; see
    :func:`repro.analyze.impact.run_impact_checks`.
    """
    return _register("impact", name, severity)


def registered_checks(scope: str | None = None) -> list[Check]:
    checks = [
        check
        for (check_scope, _), check in sorted(_REGISTRY.items())
        if scope is None or check_scope == scope
    ]
    return checks


# ---------------------------------------------------------------------------
# Contexts


@dataclass
class KernelLintContext:
    """Shared state handed to every kernel-scope check."""

    kernel: Kernel
    reach: ReachabilityAnalysis
    oracle: DependencyOracle
    # Location prefix, e.g. "6.8/" when linting several releases at once.
    namespace: str = ""

    def finding(self, check: Check, block_id: int, message: str) -> Finding:
        syscall = self.kernel.handler_of_block.get(block_id, "?")
        return Finding(
            check=check.name,
            severity=check.severity,
            scope="kernel",
            location=f"{self.namespace}{syscall}/block/{block_id}",
            message=message,
        )


@dataclass
class CorpusLintContext:
    """Shared state handed to every corpus-scope check."""

    kernel: Kernel
    programs: list[Program]
    reach: ReachabilityAnalysis
    oracle: DependencyOracle
    namespace: str = ""

    def finding(
        self, check: Check, program: int, call: int, message: str
    ) -> Finding:
        return Finding(
            check=check.name,
            severity=check.severity,
            scope="corpus",
            location=f"{self.namespace}program/{program}/call/{call}",
            message=message,
        )


# ---------------------------------------------------------------------------
# Kernel checks


@kernel_check("unreachable-block", Severity.ERROR)
def _check_unreachable(ctx: KernelLintContext) -> Iterator[Finding]:
    """Blocks no CFG edge reaches: structurally orphaned."""
    check = _REGISTRY[("kernel", "unreachable-block")]
    for syscall, cfg in sorted(ctx.kernel.handlers.items()):
        reachable = {cfg.entry}
        stack = [cfg.entry]
        while stack:
            current = stack.pop()
            for succ in cfg.successors(current):
                if succ not in reachable:
                    reachable.add(succ)
                    stack.append(succ)
        for block_id in sorted(set(cfg.blocks) - reachable):
            yield ctx.finding(
                check, block_id,
                f"block {block_id} of {syscall} has no path from entry",
            )


@kernel_check("dead-bug-chain", Severity.ERROR)
def _check_dead_bugs(ctx: KernelLintContext) -> Iterator[Finding]:
    """Crash blocks behind contradictory predicates: unfindable bugs."""
    check = _REGISTRY[("kernel", "dead-bug-chain")]
    for block_id in sorted(ctx.reach.dead_blocks()):
        block = ctx.kernel.blocks[block_id]
        if block.role is not BlockRole.CRASH:
            continue
        bug = getattr(block.bug, "bug_id", None) or block.label
        yield ctx.finding(
            check, block_id,
            f"crash block {block_id} ({bug}) is statically unreachable: "
            "no satisfiable path resolves its guarding predicates",
        )


@kernel_check("contradictory-predicates", Severity.WARNING)
def _check_contradictions(ctx: KernelLintContext) -> Iterator[Finding]:
    """Non-crash blocks whose every entry path is contradictory."""
    check = _REGISTRY[("kernel", "contradictory-predicates")]
    for block_id in sorted(ctx.reach.dead_blocks()):
        block = ctx.kernel.blocks[block_id]
        if block.role is BlockRole.CRASH:
            continue  # reported by dead-bug-chain
        yield ctx.finding(
            check, block_id,
            f"block {block_id} ({block.role.value}) is statically dead: "
            "every entry path carries a contradictory predicate "
            "conjunction",
        )


@kernel_check("orphan-slot-token", Severity.ERROR)
def _check_orphan_slots(ctx: KernelLintContext) -> Iterator[Finding]:
    """ArgConditions must reference real slots and embed their token."""
    check = _REGISTRY[("kernel", "orphan-slot-token")]
    valid_paths: dict[str, set[tuple[int, ...]]] = {}
    for block_id in sorted(ctx.kernel.blocks):
        block = ctx.kernel.blocks[block_id]
        condition = block.condition
        if not isinstance(condition, ArgCondition):
            continue
        spec_paths = valid_paths.get(condition.syscall)
        if spec_paths is None:
            try:
                spec = ctx.kernel.table.lookup(condition.syscall)
            except SpecError:
                yield ctx.finding(
                    check, block_id,
                    f"condition references unknown syscall "
                    f"{condition.syscall!r}",
                )
                continue
            spec_paths = {path for path, _ in enumerate_type_paths(spec)}
            spec_paths.update(resource_guard_paths(spec))
            valid_paths[condition.syscall] = spec_paths
        if condition.path_elements not in spec_paths:
            yield ctx.finding(
                check, block_id,
                f"condition path {condition.path_elements} is not a "
                f"steerable slot of {condition.syscall}",
            )
            continue
        token = slot_token(condition.syscall, condition.path_elements)
        if token not in block.asm:
            yield ctx.finding(
                check, block_id,
                f"slot token {token} missing from condition assembly "
                "(PMM has no signal to learn from)",
            )


@kernel_check("state-without-producer", Severity.ERROR)
def _check_state_producers(ctx: KernelLintContext) -> Iterator[Finding]:
    """StateConditions whose flag no effect block ever writes."""
    check = _REGISTRY[("kernel", "state-without-producer")]
    for block_id in sorted(ctx.kernel.blocks):
        block = ctx.kernel.blocks[block_id]
        condition = block.condition
        if not isinstance(condition, StateCondition):
            continue
        if ctx.oracle.effect_writers(condition.key):
            continue
        yield ctx.finding(
            check, block_id,
            f"state branch on flag {condition.key!r} has no producer: "
            "no effect block in the kernel writes this flag, so the "
            "taken edge depends only on the default state",
        )


@kernel_check("unsteerable-branch", Severity.WARNING)
def _check_unsteerable(ctx: KernelLintContext) -> Iterator[Finding]:
    """Feasible branch targets that no argument slot can steer."""
    check = _REGISTRY[("kernel", "unsteerable-branch")]
    dead = ctx.reach.dead_blocks()
    for block_id in sorted(ctx.kernel.blocks):
        block = ctx.kernel.blocks[block_id]
        if block.role is not BlockRole.CONDITION:
            continue
        succs = ctx.kernel.succs.get(block_id, ())
        if len(succs) != 2 or succs[0] == succs[1]:
            continue
        taken = succs[1]
        if taken in dead:
            continue  # already reported as dead
        deps = ctx.oracle.dependencies(taken)
        if deps.slots:
            continue
        if any(dep.producer_slots for dep in deps.state_deps):
            continue
        if any(not dep.default_satisfied for dep in deps.state_deps):
            yield ctx.finding(
                check, taken,
                f"taken edge of block {block_id} depends only on state "
                "flags whose producers expose no steering slots",
            )


@kernel_check("spec-table-mismatch", Severity.WARNING)
def _check_spec_table(ctx: KernelLintContext) -> Iterator[Finding]:
    """The table's flag domains and the kernel's mask constants agree."""
    yield from table_mismatch_findings(
        ctx.kernel, ctx.kernel.table, namespace=ctx.namespace
    )


def table_mismatch_findings(
    kernel: Kernel, table: SyscallTable, namespace: str = ""
) -> list[Finding]:
    """Cross-validate any :class:`SyscallTable` against the kernel CFGs.

    Works on the table the kernel was built from *and* on externally
    supplied tables (``repro specgen infer --lint``).  Two directions:

    - kernel→table (**error**): every mask branch must land on a flags
      leaf the table can address, with operand bits inside the declared
      domain — violated only by a table that genuinely disagrees with
      the kernel it claims to describe, so this gates ``--strict``.
    - table→kernel (**warning**): declared flag bits the kernel never
      branches on.  Routine for hand-written tables (the builder
      branches on a random subset of declared bits) and exactly the
      unrecoverable remainder for inferred ones.
    """
    check = _REGISTRY[("kernel", "spec-table-mismatch")]
    findings: list[Finding] = []
    leaves_cache: dict[str, dict[tuple[int, ...], FlagsType] | None] = {}

    def flag_leaves(name: str):
        if name not in leaves_cache:
            try:
                spec = table.lookup(name)
            except SpecError:
                leaves_cache[name] = None
            else:
                leaves_cache[name] = {
                    path: leaf
                    for path, leaf in enumerate_type_paths(spec)
                    if isinstance(leaf, FlagsType)
                }
        return leaves_cache[name]

    observed: dict[tuple[str, tuple[int, ...]], int] = {}
    for block_id in sorted(kernel.blocks):
        condition = kernel.blocks[block_id].condition
        if not isinstance(condition, ArgCondition):
            continue
        if condition.op not in (CondOp.MASK_SET, CondOp.MASK_CLEAR):
            continue
        name = condition.syscall
        location = f"{namespace}{name}/block/{block_id}"
        leaves = flag_leaves(name)
        if leaves is None:
            findings.append(Finding(
                check=check.name, severity=Severity.ERROR, scope="kernel",
                location=location,
                message=f"mask branch on syscall {name!r} which the "
                        "table does not describe",
            ))
            continue
        leaf = leaves.get(condition.path_elements)
        if leaf is None:
            findings.append(Finding(
                check=check.name, severity=Severity.ERROR, scope="kernel",
                location=location,
                message=f"mask branch at path {condition.path_elements} "
                        f"of {name} does not address a flags leaf of "
                        "the table",
            ))
            continue
        key = (name, condition.path_elements)
        observed[key] = observed.get(key, 0) | condition.operand
        stray = condition.operand & ~leaf.all_bits()
        if stray == 1 and any(bit == 0 for _, bit in leaf.flags):
            # The builder substitutes operand 1 when it draws a
            # zero-valued flag from a domain whose first flag is also 0
            # (mask branches on 0 are meaningless), so bit 0x1 next to a
            # declared zero flag is kernel-builder policy, not mismatch.
            stray = 0
        if stray:
            findings.append(Finding(
                check=check.name, severity=Severity.ERROR, scope="kernel",
                location=location,
                message=f"mask constant 0x{condition.operand:x} uses "
                        f"bits 0x{stray:x} absent from the declared "
                        f"flag domain at {condition.path_elements}",
            ))

    for spec in table:
        if spec.full_name not in kernel.handlers:
            continue
        for path, leaf in enumerate_type_paths(spec):
            if not isinstance(leaf, FlagsType):
                continue
            unused = leaf.all_bits() & ~observed.get(
                (spec.full_name, path), 0
            )
            if not unused:
                continue
            names = ", ".join(leaf.names_for(unused)) or f"0x{unused:x}"
            path_text = ".".join(str(element) for element in path)
            findings.append(Finding(
                check=check.name, severity=Severity.WARNING, scope="kernel",
                location=f"{namespace}{spec.full_name}/path/{path_text}",
                message=f"declared flag bits 0x{unused:x} ({names}) are "
                        "never branched on by the kernel",
            ))

    findings.sort(key=Finding.sort_key)
    return findings


# ---------------------------------------------------------------------------
# Corpus checks


@corpus_check("resource-before-produced", Severity.ERROR)
def _check_resource_order(ctx: CorpusLintContext) -> Iterator[Finding]:
    """Resource references must point backwards at a compatible producer."""
    check = _REGISTRY[("corpus", "resource-before-produced")]
    for prog_index, program in enumerate(ctx.programs):
        for call_index in range(len(program.calls)):
            for path, value in program.walk_call(call_index):
                if not isinstance(value, ResourceValue):
                    continue
                producer = value.producer
                if producer is None:
                    continue
                if producer >= call_index or producer < 0:
                    yield ctx.finding(
                        check, prog_index, call_index,
                        f"{path} references resource from call {producer}, "
                        "which has not executed yet",
                    )
                    continue
                produced = program.calls[producer].spec.produces
                if produced is None or not produced.compatible_with(
                    value.ty.resource
                ):
                    yield ctx.finding(
                        check, prog_index, call_index,
                        f"{path} references call {producer}, which does not "
                        f"produce a {value.ty.resource.name!r} resource",
                    )


@corpus_check("dangling-resource", Severity.WARNING)
def _check_dangling(ctx: CorpusLintContext) -> Iterator[Finding]:
    """NULL resource handles in guarded positions: guaranteed EBADF."""
    check = _REGISTRY[("corpus", "dangling-resource")]
    for prog_index, program in enumerate(ctx.programs):
        for call_index, call in enumerate(program.calls):
            guards = set(resource_guard_paths(call.spec))
            if not guards:
                continue
            for arg_index in sorted(index for (index,) in guards):
                value = call.args[arg_index]
                if (
                    isinstance(value, ResourceValue)
                    and value.producer is None
                ):
                    yield ctx.finding(
                        check, prog_index, call_index,
                        f"arg {arg_index} of {call.spec.full_name} is a "
                        "NULL resource behind an fd guard: the call can "
                        "only take the EBADF path",
                    )


@corpus_check("null-pointer-blocks-predicate", Severity.WARNING)
def _check_null_pointers(ctx: CorpusLintContext) -> Iterator[Finding]:
    """NULL pointer args that pin every downstream predicate to 0."""
    check = _REGISTRY[("corpus", "null-pointer-blocks-predicate")]
    blocked_cache: dict[str, dict[int, list[str]]] = {}
    for prog_index, program in enumerate(ctx.programs):
        for call_index, call in enumerate(program.calls):
            name = call.spec.full_name
            per_arg = blocked_cache.get(name)
            if per_arg is None:
                per_arg = _blocked_pointer_args(ctx.kernel, name)
                blocked_cache[name] = per_arg
            for arg_index, tokens in sorted(per_arg.items()):
                value = call.args[arg_index]
                if not isinstance(value, PtrValue) or value.pointee is not None:
                    continue
                yield ctx.finding(
                    check, prog_index, call_index,
                    f"arg {arg_index} of {name} is NULL, so the fields "
                    "behind it read as 0 and the branches on "
                    f"{', '.join(tokens)} can never take their "
                    "non-default edge",
                )


def _blocked_pointer_args(kernel: Kernel, syscall: str) -> dict[int, list[str]]:
    """For one syscall: pointer arg indices whose NULL value makes every
    downstream ArgCondition unable to take its branch (slot reads 0)."""
    cfg = kernel.handlers.get(syscall)
    if cfg is None:
        return {}
    try:
        spec = kernel.table.lookup(syscall)
    except SpecError:
        return {}
    pointer_args = {
        index
        for index, (_, arg_ty) in enumerate(spec.args)
        if isinstance(arg_ty, PtrType)
    }
    conditions: dict[int, list[ArgCondition]] = {}
    for block_id in cfg.blocks:
        condition = cfg.blocks[block_id].condition
        if (
            isinstance(condition, ArgCondition)
            and condition.syscall == syscall
            and len(condition.path_elements) > 1
            and condition.path_elements[0] in pointer_args
        ):
            conditions.setdefault(condition.path_elements[0], []).append(
                condition
            )
    blocked: dict[int, list[str]] = {}
    for arg_index, conds in conditions.items():
        tokens = []
        for condition in conds:
            refined = AbstractValue().refine(
                condition.op, condition.operand, taken=True
            )
            if refined is not None and refined.admits(0):
                tokens = []
                break
            tokens.append(
                slot_token(condition.syscall, condition.path_elements)
            )
        if tokens:
            blocked[arg_index] = sorted(set(tokens))
    return blocked


# ---------------------------------------------------------------------------
# Runners and serialization


def run_kernel_checks(
    kernel: Kernel,
    reach: ReachabilityAnalysis | None = None,
    oracle: DependencyOracle | None = None,
    observer=None,
    checks: Iterable[str] | None = None,
    namespace: str = "",
) -> list[Finding]:
    """Run every (or the named) kernel-scope checks; canonical order."""
    ctx = KernelLintContext(
        kernel=kernel,
        reach=reach if reach is not None else ReachabilityAnalysis(kernel),
        oracle=oracle if oracle is not None else DependencyOracle(kernel),
        namespace=namespace,
    )
    return _run("kernel", ctx, observer, checks)


def run_corpus_checks(
    kernel: Kernel,
    programs: list[Program],
    reach: ReachabilityAnalysis | None = None,
    oracle: DependencyOracle | None = None,
    observer=None,
    checks: Iterable[str] | None = None,
    namespace: str = "",
) -> list[Finding]:
    """Run every (or the named) corpus-scope checks; canonical order."""
    ctx = CorpusLintContext(
        kernel=kernel,
        programs=list(programs),
        reach=reach if reach is not None else ReachabilityAnalysis(kernel),
        oracle=oracle if oracle is not None else DependencyOracle(kernel),
        namespace=namespace,
    )
    return _run("corpus", ctx, observer, checks)


def _run(scope: str, ctx, observer, checks: Iterable[str] | None):
    wanted = set(checks) if checks is not None else None
    findings: list[Finding] = []
    for check in registered_checks(scope):
        if wanted is not None and check.name not in wanted:
            continue
        produced = list(check.fn(ctx))
        findings.extend(produced)
        if observer is not None:
            observer.tracer.instant(
                "analyze", f"lint.{check.name}", 0.0, cat="analyze",
                scope=scope, findings=len(produced),
            )
    # Stable sort *then* dedupe: identical findings (e.g. the same
    # release linted twice under one namespace) collapse to one record,
    # so the output is a pure function of the finding set — independent
    # of check registration order or repetition.
    findings.sort(key=Finding.sort_key)
    findings = list(dict.fromkeys(findings))
    if observer is not None:
        registry = observer.registry
        for severity in SEVERITIES:
            count = sum(1 for f in findings if f.severity == severity)
            registry.gauge(f"analyze.findings_{severity}").set(count)
    return findings


def strict_failures(findings: Iterable[Finding]) -> list[Finding]:
    """The findings that fail ``--strict`` (errors only)."""
    return [f for f in findings if f.severity == Severity.ERROR]


def findings_json(findings: Iterable[Finding], **context) -> str:
    """Canonical findings.json: stable ordering, deduped, stable bytes."""
    ordered = sorted(set(findings), key=Finding.sort_key)
    payload = {
        "version": FINDINGS_VERSION,
        "context": dict(sorted(context.items())),
        "counts": {
            severity: sum(1 for f in ordered if f.severity == severity)
            for severity in SEVERITIES
        },
        "findings": [f.to_dict() for f in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_findings(text: str) -> list[Finding]:
    payload = json.loads(text)
    if payload.get("version") != FINDINGS_VERSION:
        raise AnalysisError(
            f"unsupported findings version {payload.get('version')!r}"
        )
    return [Finding.from_dict(entry) for entry in payload["findings"]]
