"""Reachability and solvability analysis over handler CFGs.

Handler CFGs are acyclic, so every question about a block reduces to a
question about the set of entry paths that can reach it.  Each path is a
conjunction of branch predicates — :class:`ArgCondition` comparisons on
scalar argument views plus :class:`StateCondition` equality tests on
kernel flags — and this module decides satisfiability of those
conjunctions under an interval+bitmask abstract domain:

- :class:`AbstractValue` tracks ``[lo, hi]`` bounds together with
  must-set/must-clear bit masks, covering every :class:`CondOp`
  (``EQ``/``NE``/``LT``/``GT``/``MASK_SET``/``MASK_CLEAR``) exactly for
  the refinements the synthetic kernel generates;
- flags are constant for the duration of one call (the only effect
  block sits directly before the success exit), so per-path flag
  requirements are equality/disequality sets checked against the values
  any handler in the kernel can actually write.

A block is *statically dead* when no entry path admits a satisfying
assignment.  The generator's random nested conditions produce such
blocks routinely (two branches on the same argument path with
contradictory operands), and they waste fuzzing budget: the frontier
scheduler keeps proposing them as targets that no mutation can reach.
:class:`ReachabilityAnalysis` exposes the dead set so loops can skip
them, shares the reverse-BFS distance maps directed fuzzing uses, and
hands :mod:`repro.analyze.witness` a concrete feasible path (with
per-slot abstract values) from which satisfying programs are built.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import AnalysisError
from repro.kernel.blocks import BlockRole
from repro.kernel.build import Kernel
from repro.kernel.cfg import HandlerCFG
from repro.kernel.conditions import ArgCondition, CondOp, StateCondition

__all__ = [
    "AbstractValue",
    "FlagRequirement",
    "PathState",
    "PathWitness",
    "ReachabilityAnalysis",
    "dominator_tree",
]

# Scalar views are Python ints; these bounds only exist so intervals
# have a printable "unconstrained" form.  Nothing clamps real values.
_NEG = -(1 << 63)
_POS = (1 << 63) - 1

# Per-handler cap on DFS steps.  Handlers are small DAGs (tens of
# blocks, nesting depth <= 2), so real kernels stay far below this; if
# a hand-built CFG ever exceeds it, the analysis degrades *soundly* by
# treating every unvisited block as feasible (never falsely dead).
_DFS_STEP_LIMIT = 500_000


def _popcount(value: int) -> int:
    return bin(value).count("1")


@dataclass(frozen=True)
class AbstractValue:
    """Interval + bitmask abstraction of one scalar argument view."""

    lo: int = _NEG
    hi: int = _POS
    must_set: int = 0
    must_clear: int = 0

    def is_empty(self) -> bool:
        """True when no concrete value satisfies the constraints."""
        if self.lo > self.hi:
            return True
        if self.must_set & self.must_clear:
            return True
        if self.lo == self.hi:
            value = self.lo
            if (value & self.must_set) != self.must_set:
                return True
            if value & self.must_clear:
                return True
        # A non-negative value containing all must_set bits is >= the
        # mask itself; an upper bound below the mask is a contradiction.
        if self.must_set and self.lo >= 0 and self.hi < self.must_set:
            return True
        return False

    def admits(self, value: int) -> bool:
        return (
            self.lo <= value <= self.hi
            and (value & self.must_set) == self.must_set
            and not value & self.must_clear
        )

    def refine(self, op: CondOp, operand: int, taken: bool) -> "AbstractValue | None":
        """The value set after a branch on ``op``/``operand`` resolves
        with outcome ``taken``; None when the refinement is empty."""
        lo, hi = self.lo, self.hi
        must_set, must_clear = self.must_set, self.must_clear
        if (op is CondOp.EQ and taken) or (op is CondOp.NE and not taken):
            lo = max(lo, operand)
            hi = min(hi, operand)
        elif (op is CondOp.EQ and not taken) or (op is CondOp.NE and taken):
            if lo == hi == operand:
                return None
            if lo == operand:
                lo += 1
            if hi == operand:
                hi -= 1
        elif op is CondOp.LT:
            if taken:
                hi = min(hi, operand - 1)
            else:
                lo = max(lo, operand)
        elif op is CondOp.GT:
            if taken:
                lo = max(lo, operand + 1)
            else:
                hi = min(hi, operand)
        elif op is CondOp.MASK_SET:
            if taken:
                must_set |= operand
            else:
                # "not all operand bits set": already-forced bits make
                # the branch a tautology; a single tracked bit flips to
                # must_clear, multi-bit negations stay unconstrained.
                if operand and (operand & must_set) == operand:
                    return None
                if _popcount(operand) == 1:
                    must_clear |= operand
        elif op is CondOp.MASK_CLEAR:
            if taken:
                must_clear |= operand
            else:
                if operand == 0:
                    return None  # value & 0 != 0 is unsatisfiable
                if (operand & must_clear) == operand:
                    return None
                if _popcount(operand) == 1:
                    must_set |= operand
        else:  # pragma: no cover - CondOp is closed
            raise AnalysisError(f"unhandled condition op {op!r}")
        refined = AbstractValue(lo, hi, must_set, must_clear)
        return None if refined.is_empty() else refined

    def meet(self, other: "AbstractValue") -> "AbstractValue":
        """Greatest lower bound: the conjunction of both constraint
        sets.  Exact in this domain — a value is admitted by the meet
        iff both operands admit it — because intervals intersect to
        intervals and must-bit sets union to must-bit sets."""
        return AbstractValue(
            lo=max(self.lo, other.lo),
            hi=min(self.hi, other.hi),
            must_set=self.must_set | other.must_set,
            must_clear=self.must_clear | other.must_clear,
        )

    def join(self, other: "AbstractValue") -> "AbstractValue":
        """Least upper bound: a sound over-approximation of the union.
        Any value either operand admits is admitted by the join (the
        converse does not hold — interval hulls and bit intersections
        lose the disjunction, as joins in a conjunctive domain must)."""
        return AbstractValue(
            lo=min(self.lo, other.lo),
            hi=max(self.hi, other.hi),
            must_set=self.must_set & other.must_set,
            must_clear=self.must_clear & other.must_clear,
        )

    def example(self) -> int:
        """A concrete witness value; raises on an empty abstraction."""
        candidates = (
            0,
            self.must_set,
            self.lo,
            self.lo | self.must_set,
            (self.lo | self.must_set) & ~self.must_clear,
            self.hi,
            self.hi & ~self.must_clear,
        )
        for value in candidates:
            if self.admits(value):
                return value
        value = max(self.lo, self.must_set, 0)
        for _ in range(1 << 16):
            if value > self.hi:
                break
            if self.admits(value):
                return value
            value += 1
        value = min(self.hi, -1)
        for _ in range(1 << 12):
            if value < self.lo:
                break
            if self.admits(value):
                return value
            value -= 1
        raise AnalysisError(f"no concrete witness for {self!r}")


@dataclass(frozen=True)
class FlagRequirement:
    """What one path demands of a single kernel flag.

    Flags are constant within a call, so a path's demands collapse into
    at most one required value (``eq``) plus a set of forbidden values
    (``ne``).  Achievability is checked against ``writable``: the values
    effect blocks anywhere in the kernel assign to the flag, plus the
    default 0 every fresh :class:`KernelState` starts from.
    """

    eq: frozenset[int] = frozenset()
    ne: frozenset[int] = frozenset()

    def require(self, operand: int, taken: bool) -> "FlagRequirement | None":
        if taken:
            if operand in self.ne:
                return None
            if self.eq and operand not in self.eq:
                return None
            return FlagRequirement(frozenset((operand,)), self.ne)
        if self.eq == frozenset((operand,)):
            return None
        return FlagRequirement(self.eq, self.ne | frozenset((operand,)))

    def satisfiable(self, writable: frozenset[int]) -> bool:
        achievable = writable | {0}
        if self.eq:
            (needed,) = tuple(self.eq)
            return needed in achievable
        return bool(achievable - self.ne)

    def needed_value(self, writable: frozenset[int]) -> int | None:
        """The flag value a witness program must arrange, or None when
        the default 0 already satisfies the requirement."""
        achievable = sorted(writable | {0})
        for value in achievable:
            if self.eq and value not in self.eq:
                continue
            if value in self.ne:
                continue
            return value if value != 0 else None
        raise AnalysisError(f"unsatisfiable flag requirement {self!r}")


@dataclass(frozen=True)
class PathState:
    """Accumulated constraints along one entry path."""

    slots: tuple[tuple[tuple[str, tuple[int, ...]], AbstractValue], ...] = ()
    flags: tuple[tuple[str, FlagRequirement], ...] = ()

    def slot_map(self) -> dict[tuple[str, tuple[int, ...]], AbstractValue]:
        return dict(self.slots)

    def flag_map(self) -> dict[str, FlagRequirement]:
        return dict(self.flags)

    def refine_arg(self, condition: ArgCondition, taken: bool) -> "PathState | None":
        key = (condition.syscall, condition.path_elements)
        current = dict(self.slots)
        refined = current.get(key, AbstractValue()).refine(
            condition.op, condition.operand, taken
        )
        if refined is None:
            return None
        current[key] = refined
        return replace(self, slots=tuple(sorted(current.items())))

    def refine_flag(
        self,
        condition: StateCondition,
        taken: bool,
        writable: frozenset[int],
    ) -> "PathState | None":
        current = dict(self.flags)
        requirement = current.get(condition.key, FlagRequirement()).require(
            condition.operand, taken
        )
        if requirement is None or not requirement.satisfiable(writable):
            return None
        current[condition.key] = requirement
        return replace(self, flags=tuple(sorted(current.items())))


@dataclass(frozen=True)
class PathWitness:
    """One feasible entry path to a target block."""

    syscall: str
    blocks: tuple[int, ...]
    state: PathState


def dominator_tree(cfg: HandlerCFG) -> dict[int, int | None]:
    """Immediate dominators of every reachable block (entry maps to
    None), via the Cooper–Harper–Kennedy iteration on reverse postorder.
    """
    order: list[int] = []
    seen: set[int] = set()

    def visit(block_id: int) -> None:
        stack: list[tuple[int, int]] = [(block_id, 0)]
        seen.add(block_id)
        while stack:
            current, cursor = stack.pop()
            succs = cfg.successors(current)
            if cursor < len(succs):
                stack.append((current, cursor + 1))
                succ = succs[cursor]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                order.append(current)

    visit(cfg.entry)
    rpo = list(reversed(order))
    index = {block_id: pos for pos, block_id in enumerate(rpo)}
    preds: dict[int, list[int]] = {block_id: [] for block_id in rpo}
    for block_id in rpo:
        for succ in cfg.successors(block_id):
            preds[succ].append(block_id)
    idom: dict[int, int | None] = {cfg.entry: cfg.entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block_id in rpo[1:]:
            processed = [p for p in preds[block_id] if p in idom]
            if not processed:
                continue
            new_idom = processed[0]
            for pred in processed[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(block_id) != new_idom:
                idom[block_id] = new_idom
                changed = True
    idom[cfg.entry] = None
    return idom


class ReachabilityAnalysis:
    """Cached static reachability/solvability facts about one kernel."""

    def __init__(self, kernel: Kernel, observer=None):
        self.kernel = kernel
        self.observer = observer
        self._feasible: dict[str, frozenset[int]] = {}
        self._truncated: set[str] = set()
        self._distances: dict[int, dict[int, int]] = {}
        self._dominators: dict[str, dict[int, int | None]] = {}
        self._dead: frozenset[int] | None = None
        self._writable: dict[str, frozenset[int]] | None = None

    # ----- flag writers -----

    def flag_writers(self) -> dict[str, frozenset[int]]:
        """Values each kernel flag can be set to by any effect block."""
        if self._writable is None:
            writers: dict[str, set[int]] = {}
            for block in self.kernel.blocks.values():
                for key, value in block.effects:
                    writers.setdefault(key, set()).add(value)
            self._writable = {
                key: frozenset(values) for key, values in writers.items()
            }
        return self._writable

    def writer_blocks(self, key: str, value: int) -> list[int]:
        """Blocks whose effects assign ``value`` to flag ``key``."""
        return sorted(
            block_id
            for block_id, block in self.kernel.blocks.items()
            if any(k == key and v == value for k, v in block.effects)
        )

    # ----- feasibility -----

    def _branch_states(self, block, state: PathState, writable):
        """(false-edge state, true-edge state) after a condition block."""
        condition = block.condition
        if isinstance(condition, ArgCondition):
            return (
                state.refine_arg(condition, taken=False),
                state.refine_arg(condition, taken=True),
            )
        if isinstance(condition, StateCondition):
            flags = writable.get(condition.key, frozenset())
            return (
                state.refine_flag(condition, False, flags),
                state.refine_flag(condition, True, flags),
            )
        return state, state

    def handler_feasible(self, syscall: str) -> frozenset[int]:
        """Blocks of one handler reachable by some satisfiable path."""
        cached = self._feasible.get(syscall)
        if cached is not None:
            return cached
        cfg = self.kernel.handlers[syscall]
        writable = self.flag_writers()
        feasible: set[int] = set()
        visited: set[tuple[int, PathState]] = set()
        stack: list[tuple[int, PathState]] = [(cfg.entry, PathState())]
        steps = 0
        truncated = False
        while stack:
            steps += 1
            if steps > _DFS_STEP_LIMIT:
                truncated = True
                break
            block_id, state = stack.pop()
            if (block_id, state) in visited:
                continue
            visited.add((block_id, state))
            feasible.add(block_id)
            block = cfg.blocks[block_id]
            succs = cfg.successors(block_id)
            if block.role is BlockRole.CONDITION and len(succs) == 2:
                not_taken, taken = self._branch_states(block, state, writable)
                if not_taken is not None:
                    stack.append((succs[0], not_taken))
                if taken is not None:
                    stack.append((succs[1], taken))
            else:
                for succ in succs:
                    stack.append((succ, state))
        if truncated:
            # Sound degradation: everything not proven anything stays
            # potentially reachable.
            feasible |= set(cfg.blocks)
            self._truncated.add(syscall)
        result = frozenset(feasible)
        self._feasible[syscall] = result
        return result

    def dead_blocks(self) -> frozenset[int]:
        """Blocks of every handler that no satisfiable path reaches."""
        if self._dead is None:
            dead: set[int] = set()
            total = 0
            for syscall, cfg in self.kernel.handlers.items():
                feasible = self.handler_feasible(syscall)
                dead |= set(cfg.blocks) - feasible
                total += len(cfg.blocks)
            self._dead = frozenset(dead)
            if self.observer is not None:
                registry = self.observer.registry
                registry.gauge("analyze.blocks").set(total)
                registry.gauge("analyze.dead_blocks").set(len(dead))
        return self._dead

    def is_dead(self, block_id: int) -> bool:
        """Statically dead?  Blocks outside any handler (e.g. the
        interrupt trace) are never dead."""
        syscall = self.kernel.handler_of_block.get(block_id)
        if syscall is None or syscall not in self.kernel.handlers:
            return False
        return block_id not in self.handler_feasible(syscall)

    def solvable(self, block_id: int) -> bool:
        return not self.is_dead(block_id)

    # ----- shared distance / dominators -----

    def distance_to(self, target: int) -> dict[int, int]:
        """Memoized reverse-BFS hop counts (shared with directed
        fuzzing, which otherwise recomputes the map per fuzzer)."""
        cached = self._distances.get(target)
        if cached is None:
            cached = self.kernel.distance_to(target)
            self._distances[target] = cached
        return cached

    def dominators(self, syscall: str) -> dict[int, int | None]:
        cached = self._dominators.get(syscall)
        if cached is None:
            cached = dominator_tree(self.kernel.handlers[syscall])
            self._dominators[syscall] = cached
        return cached

    # ----- witnesses -----

    def feasible_path(self, target: int) -> PathWitness | None:
        """One satisfiable entry path to ``target``, or None when the
        block is statically dead (or outside every handler)."""
        syscall = self.kernel.handler_of_block.get(target)
        if syscall is None or syscall not in self.kernel.handlers:
            return None
        cfg = self.kernel.handlers[syscall]
        if target not in cfg.blocks:
            return None
        writable = self.flag_writers()
        # Prune with plain reachability-to-target first.
        can_reach: set[int] = {target}
        order = [target]
        while order:
            current = order.pop()
            for pred in self.kernel.preds.get(current, ()):
                if pred in cfg.blocks and pred not in can_reach:
                    can_reach.add(pred)
                    order.append(pred)
        if cfg.entry not in can_reach:
            return None
        visited: set[tuple[int, PathState]] = set()
        stack: list[tuple[int, tuple[int, ...], PathState]] = [
            (cfg.entry, (cfg.entry,), PathState())
        ]
        steps = 0
        while stack and steps < _DFS_STEP_LIMIT:
            steps += 1
            block_id, trail, state = stack.pop()
            if block_id == target:
                return PathWitness(syscall=syscall, blocks=trail, state=state)
            if (block_id, state) in visited:
                continue
            visited.add((block_id, state))
            block = cfg.blocks[block_id]
            succs = cfg.successors(block_id)
            if block.role is BlockRole.CONDITION and len(succs) == 2:
                not_taken, taken = self._branch_states(block, state, writable)
                # Prefer the default (false) edge: LIFO order means the
                # last push pops first, so push taken before not-taken.
                if taken is not None and succs[1] in can_reach:
                    stack.append((succs[1], trail + (succs[1],), taken))
                if not_taken is not None and succs[0] in can_reach:
                    stack.append((succs[0], trail + (succs[0],), not_taken))
            else:
                for succ in succs:
                    if succ in can_reach:
                        stack.append((succ, trail + (succ,), state))
        return None
