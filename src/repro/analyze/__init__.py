"""repro.analyze — static analysis over synthetic kernels and corpora.

Three passes, one premise: everything PMM *learns* about the kernel is
also statically *computable* from its construction, so the analysis
layer provides the ground truth the learning stack is measured against.

- :mod:`repro.analyze.deps` — the argument-dependency oracle.  Slices
  every block's mandatory branch predicates into exact
  ``(syscall, ArgPath)`` steering slots (``ArgCondition``) and def-use
  resolved producer chains (``StateCondition``), packaged as
  :class:`StaticOracleLocalizer`, the upper-bound row of the Table-1
  selector comparison and a precise steering source for directed
  fuzzing.
- :mod:`repro.analyze.reach` — reachability and solvability.  Dominator
  trees, shared reverse-BFS distances, and per-path satisfiability under
  an interval+bitmask abstract domain; statically-dead blocks are
  exposed so fuzzing loops stop wasting budget on unreachable targets.
- :mod:`repro.analyze.witness` — concretization.  Builds a program that
  provably reaches a target block (producers, state setup, satisfying
  slot values), the executable soundness proof for the oracle.
- :mod:`repro.analyze.lint` — a pluggable check registry with severities
  and a canonical ``findings.json``, gating kernel invariants (live bug
  chains, slot tokens in condition assembly, producible state flags) and
  corpus hygiene (resource ordering, dangling fds, NULL pointers that
  pin predicates) in CI via ``analyze --strict``.
- :mod:`repro.analyze.impact` (+ :mod:`repro.analyze.distance`) — the
  patch-impact pass.  Statically diffs per-syscall CFGs between two
  releases into a canonical :class:`ImpactReport`, classifies every
  changed block (solvable / unsteerable / unreachable) into the
  :class:`TargetManifest` that ``fuzz --directed patch:<a>..<b>``
  consumes, and computes the AFLGo-style :class:`DistanceField` (CFG
  edges plus StateCondition producer edges) the
  :class:`PatchDirector` schedules against.
"""

from repro.analyze.deps import (
    BlockDependencies,
    DependencyOracle,
    Predicate,
    StateDependency,
    StaticOracleLocalizer,
    SteeringSlot,
    static_truths,
)
from repro.analyze.distance import STATE_EDGE_COST, DistanceField
from repro.analyze.impact import (
    HandlerDiff,
    ImpactReport,
    ImpactTarget,
    PatchDirector,
    PredicateChange,
    TargetManifest,
    build_target_manifest,
    classify_block,
    compute_impact,
    describe_condition,
    run_impact_checks,
)
from repro.analyze.lint import (
    Check,
    Finding,
    Severity,
    findings_json,
    load_findings,
    registered_checks,
    run_corpus_checks,
    run_kernel_checks,
    strict_failures,
    table_mismatch_findings,
)
from repro.analyze.reach import (
    AbstractValue,
    FlagRequirement,
    PathState,
    PathWitness,
    ReachabilityAnalysis,
    dominator_tree,
)
from repro.analyze.witness import WitnessBuilder, witness_program

__all__ = [
    "AbstractValue",
    "BlockDependencies",
    "Check",
    "DependencyOracle",
    "DistanceField",
    "Finding",
    "FlagRequirement",
    "HandlerDiff",
    "ImpactReport",
    "ImpactTarget",
    "PatchDirector",
    "PathState",
    "PathWitness",
    "Predicate",
    "PredicateChange",
    "ReachabilityAnalysis",
    "STATE_EDGE_COST",
    "Severity",
    "StateDependency",
    "StaticOracleLocalizer",
    "SteeringSlot",
    "TargetManifest",
    "WitnessBuilder",
    "build_target_manifest",
    "classify_block",
    "compute_impact",
    "describe_condition",
    "dominator_tree",
    "findings_json",
    "load_findings",
    "registered_checks",
    "run_corpus_checks",
    "run_kernel_checks",
    "run_impact_checks",
    "static_truths",
    "strict_failures",
    "table_mismatch_findings",
    "witness_program",
]
