"""AFLGo-style static distance field to a set of target blocks.

Directed greybox fuzzing (AFLGo, Hawkeye; see PAPERS.md) schedules
energy by a precomputed *seed distance*: a static map from every basic
block to the target set, aggregated over the callgraph.  The synthetic
kernel has no callgraph — handlers are independent DAGs — but it has
something real kernels lack statically: exact :class:`StateCondition`
producer edges.  A state-guarded target in one handler is reached by
first executing the effect block of a *producer* handler, so the
distance field threads a weighted edge from every state-condition block
to each effect block that writes its flag.  Covering a producer then
measurably shrinks a program's distance even though the target's own
handler was never entered — exactly the cross-call gradient the
directed scheduler climbs.

Concretely the field is a multi-source Dijkstra over the reversed CFG:

- every CFG edge ``u -> v`` contributes a reverse edge of weight 1;
- every state-condition block ``c`` on flag ``k`` contributes reverse
  edges of weight :data:`STATE_EDGE_COST` to each effect block writing
  ``k`` (the def-use chase of :class:`~repro.analyze.deps
  .DependencyOracle`).

Per-block distances aggregate over the target set by minimum (AFLGo's
harmonic mean degenerates to the minimum here because targets cluster
inside a handful of handlers; DESIGN.md §Patch-impact model discusses
the simplification).  :meth:`DistanceField.program_distance` is then the
minimum over a program's covered blocks — the scheduling key of the
patch director.

Dominator trees supply the second static ingredient: the *steering
spine* of a target, the chain of condition blocks every entry path must
resolve.  The director steers the first unresolved spine condition
instead of mutating blindly at the target.
"""

from __future__ import annotations

import heapq
import math

from repro.analyze.reach import dominator_tree
from repro.kernel.blocks import BlockRole
from repro.kernel.build import Kernel
from repro.kernel.conditions import StateCondition

__all__ = ["DistanceField", "STATE_EDGE_COST"]

# Weight of one producer hop relative to one CFG edge.  Crossing into a
# producer handler costs a separate call in the test program, so it is
# strictly more work than falling through a branch, but it must stay
# cheap enough that covering a producer beats covering an unrelated
# handler entry (whose distance is entry-depth many CFG edges).
STATE_EDGE_COST = 3.0


class DistanceField:
    """Static distances from every block to a target set."""

    def __init__(
        self,
        kernel: Kernel,
        targets: tuple[int, ...] | list[int] | set[int],
        state_edge_cost: float = STATE_EDGE_COST,
    ):
        self.kernel = kernel
        self.targets: tuple[int, ...] = tuple(
            sorted({t for t in targets if t in kernel.blocks})
        )
        self.state_edge_cost = float(state_edge_cost)
        self._producer_edges = self._build_producer_edges()
        self.distance: dict[int, float] = self._solve()
        self._spines: dict[int, tuple[int, ...]] = {}
        self._dom_trees: dict[str, dict[int, int | None]] = {}

    # ----- construction -----

    def _build_producer_edges(self) -> dict[int, tuple[int, ...]]:
        """Reverse producer edges: state-condition block -> effect
        blocks writing its flag."""
        writers: dict[str, list[int]] = {}
        for block_id, block in self.kernel.blocks.items():
            for key, _value in block.effects:
                writers.setdefault(key, []).append(block_id)
        edges: dict[int, tuple[int, ...]] = {}
        for block_id, block in self.kernel.blocks.items():
            condition = block.condition
            if isinstance(condition, StateCondition):
                edges[block_id] = tuple(
                    sorted(writers.get(condition.key, ()))
                )
        return edges

    def _solve(self) -> dict[int, float]:
        dist: dict[int, float] = {target: 0.0 for target in self.targets}
        heap: list[tuple[float, int]] = [
            (0.0, target) for target in self.targets
        ]
        heapq.heapify(heap)
        preds = self.kernel.preds
        while heap:
            d, block_id = heapq.heappop(heap)
            if d > dist.get(block_id, math.inf):
                continue
            for pred in preds.get(block_id, ()):
                candidate = d + 1.0
                if candidate < dist.get(pred, math.inf):
                    dist[pred] = candidate
                    heapq.heappush(heap, (candidate, pred))
            for writer in self._producer_edges.get(block_id, ()):
                candidate = d + self.state_edge_cost
                if candidate < dist.get(writer, math.inf):
                    dist[writer] = candidate
                    heapq.heappush(heap, (candidate, writer))
        return dist

    # ----- queries -----

    def block_distance(self, block_id: int) -> float:
        """Distance of one block to the target set (inf if detached)."""
        return self.distance.get(block_id, math.inf)

    def program_distance(self, covered: set[int] | frozenset[int]) -> float:
        """Distance of a program, judged by its best covered block."""
        best = math.inf
        for block_id in covered:
            d = self.distance.get(block_id)
            if d is not None and d < best:
                best = d
        return best

    def finite_fraction(self) -> float:
        """Share of kernel blocks with a finite distance — how much of
        the kernel the directed gradient can see at all."""
        total = len(self.kernel.blocks)
        return len(self.distance) / total if total else 0.0

    def steering_spine(self, target: int) -> tuple[int, ...]:
        """Condition blocks dominating ``target`` in its handler,
        entry-first: the branches every path to the target resolves, in
        the order a program meets them."""
        cached = self._spines.get(target)
        if cached is not None:
            return cached
        syscall = self.kernel.handler_of_block.get(target)
        if syscall is None or syscall not in self.kernel.handlers:
            self._spines[target] = ()
            return ()
        cfg = self.kernel.handlers[syscall]
        if target not in cfg.blocks:
            self._spines[target] = ()
            return ()
        idom = self._dom_trees.get(syscall)
        if idom is None:
            idom = dominator_tree(cfg)
            self._dom_trees[syscall] = idom
        chain: list[int] = []
        node = idom.get(target)
        while node is not None:
            if cfg.blocks[node].role is BlockRole.CONDITION:
                chain.append(node)
            node = idom.get(node)
        spine = tuple(reversed(chain))
        self._spines[target] = spine
        return spine
