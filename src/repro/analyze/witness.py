"""Concretization: build a program that provably reaches a block.

The dependency oracle names the slots that steer a block; this module
closes the loop by *constructing* a satisfying program — the executable
proof that the oracle's slice is sound and complete.  For a target
block it takes one feasible entry path from
:class:`~repro.analyze.reach.ReachabilityAnalysis`, concretizes each
slot's abstract value with :meth:`AbstractValue.example`, and recursively
prepends whatever the path's side conditions demand:

- a resource-guard predicate (``fd > 0``) needs a producer call that
  returns a live handle, which means steering the *producer* to its
  success exit — the same witness construction, one level down;
- a state predicate (``flags[key] == v``) needs a prior call that
  executes an effect block writing ``v``, located through the oracle's
  def-use index and again witnessed recursively.

Handler CFGs are shallow and producer chains short, so the recursion is
bounded; a depth/call budget guards hand-built pathological kernels.
"""

from __future__ import annotations

from repro.analyze.deps import DependencyOracle
from repro.analyze.reach import AbstractValue, PathWitness, ReachabilityAnalysis
from repro.errors import AnalysisError
from repro.kernel.blocks import BlockRole
from repro.kernel.build import Kernel
from repro.syzlang.program import (
    ArrayValue,
    BufferValue,
    Call,
    IntValue,
    Program,
    PtrValue,
    ResourceValue,
    StructValue,
    Value,
    zero_value,
)

__all__ = ["WitnessBuilder", "witness_program"]

_MAX_WITNESS_CALLS = 16
_MAX_DEPTH = 5


class WitnessBuilder:
    """Builds witness programs for blocks of one kernel."""

    def __init__(
        self,
        kernel: Kernel,
        reach: ReachabilityAnalysis | None = None,
        oracle: DependencyOracle | None = None,
    ):
        self.kernel = kernel
        self.reach = reach if reach is not None else ReachabilityAnalysis(kernel)
        self.oracle = oracle if oracle is not None else DependencyOracle(kernel)
        self._success_exits: dict[str, int] = {}
        for syscall, cfg in kernel.handlers.items():
            for block_id, block in cfg.blocks.items():
                if block.role is BlockRole.EXIT_SUCCESS:
                    self._success_exits[syscall] = block_id
                    break

    # ----- public API -----

    def witness(self, target_block: int) -> Program | None:
        """A program whose execution covers ``target_block``, or None
        when the block is statically dead / outside every handler."""
        path = self.reach.feasible_path(target_block)
        if path is None:
            return None
        program = Program()
        self._realize(program, path, depth=0, active=frozenset())
        return program

    # ----- construction -----

    def _realize(
        self,
        program: Program,
        path: PathWitness,
        depth: int,
        active: frozenset[tuple[str, int]],
    ) -> None:
        """Append the calls that drive ``path``; prerequisites first."""
        if depth > _MAX_DEPTH or len(program.calls) >= _MAX_WITNESS_CALLS:
            raise AnalysisError(
                f"witness for {path.syscall} block {path.blocks[-1]} "
                "exceeds the construction budget"
            )
        # 1. State prerequisites: flags the path needs at non-default
        #    values, produced by earlier calls reaching a writer block.
        writable = self.reach.flag_writers()
        for key, requirement in path.state.flags:
            needed = requirement.needed_value(
                writable.get(key, frozenset())
            )
            if needed is None:
                continue
            self._realize_flag(program, key, needed, depth, active)
        # 2. The call itself, slots set to satisfying values.
        spec = self.kernel.table.lookup(path.syscall)
        call = Call(spec, [zero_value(arg_ty) for _, arg_ty in spec.args])
        position = len(program.calls)
        program.calls.append(call)
        need_live: set[tuple[int, ...]] = set()
        for slot_key, abstract in path.state.slots:
            syscall, elements = slot_key
            if syscall != path.syscall:
                continue
            leaf = _materialize(call, elements)
            if isinstance(leaf, ResourceValue):
                # A guard-fail path (fd <= 0) wants the NULL handle; only
                # paths requiring a positive value get a live producer.
                if not abstract.admits(0):
                    need_live.add(elements)
                continue
            _assign_scalar(leaf, abstract)
        # 3. Resource prerequisites: constrained resource leaves get a
        #    live producer so guard predicates (fd > 0) hold.
        self._wire_resources(
            program, position, sorted(need_live), depth, active
        )

    def _realize_flag(
        self,
        program: Program,
        key: str,
        value: int,
        depth: int,
        active: frozenset[tuple[str, int]],
    ) -> None:
        writers = self.reach.writer_blocks(key, value)
        for writer in writers:
            if ("flag:" + key, writer) in active:
                continue
            sub_path = self.reach.feasible_path(writer)
            if sub_path is None:
                continue
            self._realize(
                program, sub_path, depth + 1,
                active | {("flag:" + key, writer)},
            )
            return
        raise AnalysisError(
            f"no reachable writer sets flag {key!r} to {value}"
        )

    def _wire_resources(
        self,
        program: Program,
        call_index: int,
        guarded_paths: list[tuple[int, ...]],
        depth: int,
        active: frozenset[tuple[str, int]],
    ) -> None:
        """Give the named resource leaves of one call a live producer.

        The producer calls are *inserted before* the consumer, so the
        consumer's index shifts; ``program.insert_call`` keeps every
        other resource reference consistent.
        """
        call = program.calls[call_index]
        leaves: list[ResourceValue] = []
        for elements in guarded_paths:
            leaf = _materialize(call, elements)
            if isinstance(leaf, ResourceValue):
                leaves.append(leaf)
        for leaf in leaves:
            producer_specs = self.kernel.table.producers_of(leaf.ty.resource)
            # Cheapest first: producers that consume nothing avoid
            # another level of wiring.
            producer_specs = sorted(
                (spec for spec in producer_specs
                 if spec.full_name in self._success_exits),
                key=lambda spec: (len(spec.consumes()), spec.full_name),
            )
            for spec in producer_specs:
                marker = ("res", spec.full_name)
                if marker in active:
                    continue
                exit_block = self._success_exits[spec.full_name]
                sub_path = self.reach.feasible_path(exit_block)
                if sub_path is None:
                    continue
                insert_at = self._index_of(program, call)
                prefix = Program()
                self._realize(prefix, sub_path, depth + 1, active | {marker})
                if len(program.calls) + len(prefix.calls) > _MAX_WITNESS_CALLS:
                    raise AnalysisError(
                        "witness resource wiring exceeds the call budget"
                    )
                for producer_call in prefix.calls:
                    # Prefix-internal references are prefix-relative;
                    # rebase them before transplanting.
                    _shift_resource_refs(producer_call, insert_at)
                for offset, producer_call in enumerate(prefix.calls):
                    program.insert_call(insert_at + offset, producer_call)
                leaf.producer = insert_at + len(prefix.calls) - 1
                break
            # No reachable producer: the NULL resource stays.  A guard
            # predicate on it would have made the feasible path
            # impossible, so this only happens for unguarded leaves.

    @staticmethod
    def _index_of(program: Program, call: Call) -> int:
        for index, candidate in enumerate(program.calls):
            if candidate is call:
                return index
        raise AnalysisError("witness call vanished during construction")


def _shift_resource_refs(call: Call, offset: int) -> None:
    """Rebase every resource reference inside ``call`` by ``offset``."""

    def walk(value: Value) -> None:
        if isinstance(value, ResourceValue):
            if value.producer is not None:
                value.producer += offset
        elif isinstance(value, PtrValue) and value.pointee is not None:
            walk(value.pointee)
        elif isinstance(value, StructValue):
            for child in value.fields:
                walk(child)
        elif isinstance(value, ArrayValue):
            for child in value.elems:
                walk(child)

    for arg in call.args:
        walk(arg)


def _materialize(call: Call, elements: tuple[int, ...]) -> Value:
    """The leaf value at ``elements``, creating array elements and
    pointees as needed (zero values start with minimal shapes)."""
    if not elements or not 0 <= elements[0] < len(call.args):
        raise AnalysisError(f"cannot materialize path {elements} in call")
    value = call.args[elements[0]]
    for element in elements[1:]:
        if isinstance(value, PtrValue):
            if value.pointee is None:
                value.pointee = zero_value(value.ty.elem)
            value = value.pointee
        elif isinstance(value, StructValue):
            value = value.fields[element]
        elif isinstance(value, ArrayValue):
            while len(value.elems) <= element:
                value.elems.append(zero_value(value.ty.elem))
            value = value.elems[element]
        else:
            raise AnalysisError(
                f"path {elements} descends into a leaf value"
            )
    return value


def _assign_scalar(leaf: Value, abstract: AbstractValue) -> None:
    """Set a leaf to a concrete witness of its abstract value."""
    value = abstract.example()
    if isinstance(leaf, IntValue):
        leaf.value = value
    elif isinstance(leaf, BufferValue):
        # The branch scalar view of a buffer is its length.
        length = max(0, min(value, max(leaf.ty.max_len, value)))
        leaf.data = b"\x00" * length
    elif isinstance(leaf, PtrValue):
        # Conditions never address pointers directly in generated
        # kernels; a NULL check wants address 0 (pointee dropped).
        if value == 0:
            leaf.pointee = None
    # ConstValue: pinned by the spec; nothing to assign.


def witness_program(
    kernel: Kernel,
    target_block: int,
    reach: ReachabilityAnalysis | None = None,
    oracle: DependencyOracle | None = None,
) -> Program | None:
    """One-shot helper around :class:`WitnessBuilder`."""
    return WitnessBuilder(kernel, reach, oracle).witness(target_block)
