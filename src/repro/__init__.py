"""repro — a laptop-scale reproduction of Snowplow (ASPLOS 2025).

Snowplow is a kernel fuzzer whose argument-mutation localizer is a
learned model (PMM).  This package rebuilds the full stack in pure
Python: the Syzlang test DSL and Syzkaller-style mutation engine
(:mod:`repro.syzlang`, :mod:`repro.fuzzer`), a deterministic synthetic
kernel with coverage and planted bugs (:mod:`repro.kernel`), the query
graph representation (:mod:`repro.graphs`), a numpy autodiff + model
stack (:mod:`repro.nn`, :mod:`repro.pmm`), and the hybrid fuzzer plus
experiment harness (:mod:`repro.snowplow`).

Quickstart::

    from repro.kernel import build_kernel
    from repro.snowplow import train_pmm, run_coverage_campaign, CampaignConfig

    kernel = build_kernel("6.8", seed=1)
    trained = train_pmm(kernel, seed=0)
    result = run_coverage_campaign(kernel, trained, CampaignConfig(runs=2))
    print(result.coverage_improvement, result.speedup)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
