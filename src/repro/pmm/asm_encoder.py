"""The assembly-code Transformer encoder (θ_TRANSFORMER of §3.3).

Embeds a kernel basic block — a short token sequence of x86-like
assembly — into a fixed vector.  The encoder can be pre-trained on all
assembly of a compiled kernel with the BERT masked-token recipe
(:mod:`repro.pmm.pretrain`) before joining PMM's end-to-end training.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.encode import MAX_ASM_LEN, PAD
from repro.nn.init import normal_init
from repro.nn.modules import Embedding, LayerNorm, Linear, Module, TransformerEncoderLayer
from repro.nn.tensor import Tensor

__all__ = ["AsmEncoder"]


class AsmEncoder(Module):
    """Transformer over assembly tokens with masked mean-pooling."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        heads: int,
        layers: int,
        rng: np.random.Generator,
        max_len: int = MAX_ASM_LEN,
    ):
        self.vocab_size = vocab_size
        self.dim = dim
        self.token_embedding = Embedding(vocab_size, dim, rng)
        self.position_embedding = Tensor(
            normal_init(rng, (max_len, dim)), requires_grad=True
        )
        self.layers = [
            TransformerEncoderLayer(dim, heads, 2 * dim, rng)
            for _ in range(layers)
        ]
        self.final_norm = LayerNorm(dim)

    def encode_tokens(self, token_ids: np.ndarray) -> Tensor:
        """Contextual token states [B, L, D] for ``token_ids`` [B, L]."""
        pad_mask = (token_ids != PAD).astype(np.float64)
        states = self.token_embedding(token_ids) + self.position_embedding
        for layer in self.layers:
            states = layer(states, pad_mask)
        return self.final_norm(states)

    def __call__(self, token_ids: np.ndarray) -> Tensor:
        """Pooled block embeddings [B, D] (masked mean over real tokens)."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        states = self.encode_tokens(token_ids)
        mask = (token_ids != PAD).astype(np.float64)[..., None]
        denom = np.maximum(mask.sum(axis=1), 1.0)
        pooled = (states * Tensor(mask)).sum(axis=1) * Tensor(1.0 / denom)
        return pooled


class MaskedLMHead(Module):
    """Token-prediction head for BERT-style pretraining."""

    def __init__(self, encoder: AsmEncoder, rng: np.random.Generator):
        self.projection = Linear(encoder.dim, encoder.vocab_size, rng)

    def __call__(self, states: Tensor) -> Tensor:
        return self.projection(states)
