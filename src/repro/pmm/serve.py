"""Inference serving simulation (§3.4, §5.5).

The paper deploys PMM behind torchserve on a GPU VM; Syzkaller submits
mutation queries over gRPC and continues fuzzing while inference is
pending.  This module reproduces that architecture against the virtual
clock: a fixed pool of server slots, each serving one request at a time
with the configured latency.  ``submit`` returns the virtual time at
which the prediction becomes available; ``poll`` hands back completed
predictions.  Saturation throughput is ``servers / latency`` — with the
paper's 0.69 s latency, 39 slots give the measured ≈57 queries/second.

The service is resilient by construction (the deployment's replicas
time out and crash, §5.5):

- prediction evaluation is **deferred** to ``poll`` — a request that is
  lost to an injected timeout or slot crash never computes (or pays
  for) a prediction that would be discarded;
- each request carries a **deadline** and is retried with exponential
  backoff in virtual time, up to ``max_retries`` times, all on the
  seeded :class:`~repro.faults.FaultInjector` schedule;
- a :class:`~repro.faults.CircuitBreaker` trips after consecutive
  delivery failures; while open, ``submit`` rejects immediately and the
  fuzzer routes localization to its heuristic fallback until a
  half-open probe succeeds;
- failures are observable: ``drain_failures`` hands back the lost
  queries, and :class:`InferenceStats` counts rejections, timeouts,
  slot crashes, retries, and breaker transitions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import InferenceTimeout, ModelError
from repro.faults import CircuitBreaker, FaultInjector

__all__ = ["InferenceService", "InferenceStats", "PendingPrediction"]

# Failure kinds a request can be lost to.
TIMEOUT = "timeout"
SLOT_CRASH = "slot_crash"


@dataclass
class InferenceStats:
    """Serving counters for the §5.5 characterisation.

    ``rejected`` counts queue-full rejections (previously silent),
    ``breaker_rejections`` counts submissions refused by an open
    circuit breaker; both send the fuzzer down its heuristic path.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    breaker_rejections: int = 0
    timeouts: int = 0
    slot_crashes: int = 0
    retries: int = 0
    failures: int = 0
    breaker_trips: int = 0
    breaker_state: str = "closed"
    total_latency: float = 0.0
    total_queue_delay: float = 0.0

    @property
    def mean_latency(self) -> float:
        """Mean submit→delivery latency of *completed* requests."""
        return self.total_latency / self.completed if self.completed else 0.0

    @property
    def mean_queue_delay(self) -> float:
        """Mean wait for a free slot, over all admitted requests."""
        return (
            self.total_queue_delay / self.submitted if self.submitted else 0.0
        )


@dataclass(order=True)
class PendingPrediction:
    ready_at: float
    sequence: int
    payload: object = field(compare=False)
    submitted_at: float = field(compare=False, default=0.0)
    # None for a request that will deliver; TIMEOUT/SLOT_CRASH for one
    # whose every attempt was lost (``ready_at`` is then the virtual
    # time the failure is *observed*, after retries and backoff).
    failure: str | None = field(compare=False, default=None)
    attempts: int = field(compare=False, default=1)


class InferenceService:
    """A virtual-time model server with a fixed slot pool."""

    def __init__(
        self,
        predict_fn,
        latency: float,
        servers: int = 4,
        max_queue: int = 256,
        deadline: float | None = None,
        max_retries: int = 0,
        retry_backoff: float | None = None,
        injector: FaultInjector | None = None,
        breaker: CircuitBreaker | None = None,
        strict: bool = False,
    ):
        if latency <= 0:
            raise ModelError(f"latency must be positive, got {latency}")
        if servers < 1:
            raise ModelError(f"need at least one server, got {servers}")
        if deadline is not None and deadline <= 0:
            raise ModelError(f"deadline must be positive, got {deadline}")
        if max_retries < 0:
            raise ModelError(f"max_retries must be >= 0, got {max_retries}")
        self.predict_fn = predict_fn
        self.latency = latency
        self.servers = servers
        self.max_queue = max_queue
        self.deadline = deadline
        self.max_retries = max_retries
        # First-retry delay; subsequent retries double it.
        self.retry_backoff = latency if retry_backoff is None else retry_backoff
        self.injector = injector
        self.breaker = breaker
        self.strict = strict
        self.stats = InferenceStats()
        self._server_free = [0.0] * servers
        self._pending: list[PendingPrediction] = []
        self._failures: list[tuple[object, str]] = []
        self._sequence = 0

    @property
    def saturation_throughput(self) -> float:
        """Queries/second the pool can sustain."""
        return self.servers / self.latency

    def submit(self, query, now: float) -> float | None:
        """Enqueue a query at virtual time ``now``.

        Returns the delivery time (success or observed failure), or None
        when the request is rejected — queue full, or circuit breaker
        open — in which case the fuzzer falls back to heuristic
        mutation for this base.
        """
        if self.breaker is not None and not self.breaker.allow(now):
            self.stats.breaker_rejections += 1
            self._sync_breaker()
            return None
        if len(self._pending) >= self.max_queue:
            self.stats.rejected += 1
            if self.breaker is not None:
                # The breaker admitted this request (possibly as its
                # half-open probe); un-reserve the probe so the next
                # submission can carry it instead.
                self.breaker.cancel_probe()
            return None
        slot = min(range(self.servers), key=lambda i: self._server_free[i])
        first_start = max(now, self._server_free[slot])
        start = first_start
        failure: str | None = None
        attempts = 0
        while True:
            attempts += 1
            failure = self._attempt_failure(start)
            if failure is None:
                ready = start + self.latency
                break
            # A timed-out attempt is detected after the request deadline;
            # a crashed slot only after the full service latency.
            detection = (
                self.deadline
                if failure == TIMEOUT and self.deadline is not None
                else self.latency
            )
            if attempts > self.max_retries:
                ready = start + detection
                break
            self.stats.retries += 1
            start = start + detection + self.retry_backoff * 2 ** (attempts - 1)
        self._server_free[slot] = ready
        self._sequence += 1
        heapq.heappush(
            self._pending,
            PendingPrediction(
                ready_at=ready, sequence=self._sequence, payload=query,
                submitted_at=now, failure=failure, attempts=attempts,
            ),
        )
        self.stats.submitted += 1
        self.stats.total_queue_delay += first_start - now
        return ready

    def poll(self, now: float) -> list[tuple[object, object]]:
        """All (query, prediction) pairs delivered by time ``now``.

        Predictions are computed here, lazily: requests lost to injected
        faults never invoke ``predict_fn``.  Lost queries are recorded
        for :meth:`drain_failures` and, in strict mode, raise
        :class:`~repro.errors.InferenceTimeout` instead.
        """
        done: list[tuple[object, object]] = []
        while self._pending and self._pending[0].ready_at <= now:
            item = heapq.heappop(self._pending)
            if item.failure is None:
                prediction = self.predict_fn(item.payload)
                self.stats.completed += 1
                self.stats.total_latency += item.ready_at - item.submitted_at
                if self.breaker is not None:
                    self.breaker.record_success(item.ready_at)
                done.append((item.payload, prediction))
                continue
            self.stats.failures += 1
            if item.failure == TIMEOUT:
                self.stats.timeouts += 1
            else:
                self.stats.slot_crashes += 1
            if self.breaker is not None:
                self.breaker.record_failure(item.ready_at)
            self._failures.append((item.payload, item.failure))
            if self.strict:
                self._sync_breaker()
                raise InferenceTimeout(
                    f"request lost to {item.failure} after "
                    f"{item.attempts} attempt(s)"
                )
        self._sync_breaker()
        return done

    def drain_failures(self) -> list[tuple[object, str]]:
        """Queries lost since the last drain, with their failure kind."""
        failures = self._failures
        self._failures = []
        return failures

    def pending_count(self) -> int:
        return len(self._pending)

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        """Serializable service state.  In-flight requests are *not*
        captured — a crashed worker loses them (§3.4's degradation
        story); the count is recorded so a resumed campaign can account
        the loss."""
        return {
            "server_free": list(self._server_free),
            "sequence": self._sequence,
            "lost_in_flight": len(self._pending),
            "stats": {
                key: getattr(self.stats, key)
                for key in (
                    "submitted", "completed", "rejected",
                    "breaker_rejections", "timeouts", "slot_crashes",
                    "retries", "failures", "breaker_trips", "breaker_state",
                    "total_latency", "total_queue_delay",
                )
            },
            "breaker": (
                self.breaker.state_dict() if self.breaker is not None else None
            ),
        }

    def restore(self, state: dict) -> int:
        """Restore :meth:`state_dict`; returns the lost in-flight count."""
        self._server_free = [float(value) for value in state["server_free"]]
        self._sequence = int(state["sequence"])
        self._pending = []
        self._failures = []
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)
        if state.get("breaker") is not None and self.breaker is not None:
            self.breaker.restore(state["breaker"])
        return int(state.get("lost_in_flight", 0))

    # ----- internals -----

    def _attempt_failure(self, start: float) -> str | None:
        """Fault decision for one service attempt starting at ``start``."""
        if self.injector is None:
            return None
        if self.injector.fires("inference", start):
            return TIMEOUT
        if self.injector.fires("server_slot", start):
            return SLOT_CRASH
        return None

    def _sync_breaker(self) -> None:
        if self.breaker is not None:
            self.stats.breaker_trips = self.breaker.trips
            self.stats.breaker_state = self.breaker.state.value
