"""Inference serving simulation (§3.4, §5.5).

The paper deploys PMM behind torchserve on a GPU VM; Syzkaller submits
mutation queries over gRPC and continues fuzzing while inference is
pending.  This module reproduces that architecture against the virtual
clock: a fixed pool of server slots, each serving one request at a time
with the configured latency.  ``submit`` returns the virtual time at
which the prediction becomes available; ``poll`` hands back completed
predictions.  Saturation throughput is ``servers / latency`` — with the
paper's 0.69 s latency, 39 slots give the measured ≈57 queries/second.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ModelError

__all__ = ["InferenceService", "InferenceStats", "PendingPrediction"]


@dataclass
class InferenceStats:
    """Serving counters for the §5.5 characterisation."""

    submitted: int = 0
    completed: int = 0
    total_latency: float = 0.0
    total_queue_delay: float = 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.completed if self.completed else 0.0


@dataclass(order=True)
class PendingPrediction:
    ready_at: float
    sequence: int
    payload: object = field(compare=False)


class InferenceService:
    """A virtual-time model server with a fixed slot pool."""

    def __init__(
        self,
        predict_fn,
        latency: float,
        servers: int = 4,
        max_queue: int = 256,
    ):
        if latency <= 0:
            raise ModelError(f"latency must be positive, got {latency}")
        if servers < 1:
            raise ModelError(f"need at least one server, got {servers}")
        self.predict_fn = predict_fn
        self.latency = latency
        self.servers = servers
        self.max_queue = max_queue
        self.stats = InferenceStats()
        self._server_free = [0.0] * servers
        self._pending: list[PendingPrediction] = []
        self._sequence = 0

    @property
    def saturation_throughput(self) -> float:
        """Queries/second the pool can sustain."""
        return self.servers / self.latency

    def submit(self, query, now: float) -> float | None:
        """Enqueue a query at virtual time ``now``.

        Returns the completion time, or None when the queue is full (the
        fuzzer then falls back to heuristic mutation for this base).
        """
        if len(self._pending) >= self.max_queue:
            return None
        slot = min(range(self.servers), key=lambda i: self._server_free[i])
        start = max(now, self._server_free[slot])
        ready = start + self.latency
        self._server_free[slot] = ready
        self._sequence += 1
        prediction = self.predict_fn(query)
        heapq.heappush(
            self._pending,
            PendingPrediction(ready_at=ready, sequence=self._sequence,
                              payload=(query, prediction)),
        )
        self.stats.submitted += 1
        self.stats.total_queue_delay += start - now
        self.stats.total_latency += ready - now
        return ready

    def poll(self, now: float) -> list[tuple[object, object]]:
        """All (query, prediction) pairs completed by time ``now``."""
        done: list[tuple[object, object]] = []
        while self._pending and self._pending[0].ready_at <= now:
            item = heapq.heappop(self._pending)
            done.append(item.payload)
            self.stats.completed += 1
        return done

    def pending_count(self) -> int:
        return len(self._pending)
