"""Inference serving simulation (§3.4, §5.5).

The paper deploys PMM behind torchserve on a GPU VM; Syzkaller submits
mutation queries over gRPC and continues fuzzing while inference is
pending.  This module reproduces that architecture against the virtual
clock: a fixed pool of server slots, each serving one request at a time
with the configured latency.  ``submit`` returns the virtual time at
which the prediction becomes available; ``poll`` hands back completed
predictions.  Saturation throughput is ``servers / latency`` — with the
paper's 0.69 s latency, 39 slots give the measured ≈57 queries/second.

The service is resilient by construction (the deployment's replicas
time out and crash, §5.5):

- prediction evaluation is **deferred** to ``poll`` — a request that is
  lost to an injected timeout or slot crash never computes (or pays
  for) a prediction that would be discarded;
- each request carries a **deadline** and is retried with exponential
  backoff in virtual time, up to ``max_retries`` times, all on the
  seeded :class:`~repro.faults.FaultInjector` schedule;
- a :class:`~repro.faults.CircuitBreaker` trips after consecutive
  delivery failures; while open, ``submit`` rejects immediately and the
  fuzzer routes localization to its heuristic fallback until a
  half-open probe succeeds;
- failures are observable: ``drain_failures`` hands back the lost
  queries, and :class:`InferenceStats` counts rejections, timeouts,
  slot crashes, retries, and breaker transitions, and records the full
  queue-delay distribution plus a batch-size histogram.

:class:`BatchingInferenceService` adds **dynamic batching** on top: the
GPU tier amortizes its fixed per-pass cost over many requests, so
requests queue until ``max_batch_size`` accumulate or ``batch_timeout``
virtual seconds elapse, and a batch of ``b`` occupies one slot for
``base_latency + b * marginal_latency``.  Saturation throughput rises
from ``servers / latency`` to
``servers * max_batch_size / latency_of(max_batch_size)`` — the
mechanism that lets one serving tier absorb a whole fuzzing fleet's
query stream.  Under fault injection a failed slot loses the *whole*
batch; retries re-enqueue the member requests individually.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import InferenceTimeout, ModelError
from repro.faults import CircuitBreaker, FaultInjector
from repro.observe import LabeledCounterMap, MetricsRegistry, Tracer

__all__ = [
    "BatchingInferenceService",
    "InferenceService",
    "InferenceStats",
    "PendingPrediction",
]

# Failure kinds a request can be lost to.
TIMEOUT = "timeout"
SLOT_CRASH = "slot_crash"

# Every InferenceStats counter: a ``serve.<name>`` registry series.
_SERVE_COUNTERS = (
    "submitted",
    "completed",
    "rejected",
    "shed",
    "breaker_rejections",
    "timeouts",
    "slot_crashes",
    "retries",
    "failures",
    "breaker_trips",
)


class InferenceStats:
    """Serving counters for the §5.5 characterisation.

    ``rejected`` counts queue-full rejections (previously silent),
    ``breaker_rejections`` counts submissions refused by an open
    circuit breaker; both send the fuzzer down its heuristic path.

    Backed by a :class:`~repro.observe.MetricsRegistry`: counters are
    ``serve.*`` series, the queue-delay distribution is a streaming
    histogram (``serve.queue_delay`` — p50/p95/p99 without storing
    samples), and the dispatched-batch-size histogram is the labeled
    family ``serve.batches{size=...}``.  The attribute surface of the
    old dataclass is preserved as thin views.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        labels: dict | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = dict(labels or {})
        self._instruments = {
            name: self.registry.counter(f"serve.{name}", **self.labels)
            for name in _SERVE_COUNTERS
        }
        self._latency = self.registry.counter(
            "serve.total_latency", **self.labels
        )
        # One sample per dispatched request (per attempt under batching),
        # so the tail of the queueing distribution is observable, not
        # just the mean.
        self._queue_delay = self.registry.histogram(
            "serve.queue_delay", **self.labels
        )
        # The unbatched service dispatches every request as a batch of 1.
        self._batch_sizes = LabeledCounterMap(
            self.registry, "serve.batches", "size", self.labels, key_type=int
        )
        self.breaker_state = "closed"

    @property
    def total_latency(self) -> float:
        return self._latency.value

    @total_latency.setter
    def total_latency(self, value: float) -> None:
        self._latency.set(value)

    @property
    def total_queue_delay(self) -> float:
        return self._queue_delay.total

    @property
    def queue_delay(self):
        """The underlying streaming histogram (``serve.queue_delay``)."""
        return self._queue_delay

    @property
    def batch_sizes(self):
        """{batch size: batches dispatched} view."""
        return self._batch_sizes

    @batch_sizes.setter
    def batch_sizes(self, mapping) -> None:
        self._batch_sizes.replace(
            {int(size): count for size, count in mapping.items()}
        )

    @property
    def mean_latency(self) -> float:
        """Mean submit→delivery latency of *completed* requests."""
        return self.total_latency / self.completed if self.completed else 0.0

    @property
    def mean_queue_delay(self) -> float:
        """Mean wait for dispatch, over all dispatched requests."""
        return self._queue_delay.mean

    @property
    def p50_queue_delay(self) -> float:
        return self._queue_delay.p50

    @property
    def p95_queue_delay(self) -> float:
        return self._queue_delay.p95

    @property
    def p99_queue_delay(self) -> float:
        return self._queue_delay.p99

    @property
    def max_queue_delay(self) -> float:
        return self._queue_delay.vmax

    @property
    def mean_batch_size(self) -> float:
        """Mean size of dispatched batches (1.0 for unbatched serving)."""
        sizes = dict(self._batch_sizes)
        batches = sum(sizes.values())
        if not batches:
            return 0.0
        weighted = sum(size * count for size, count in sizes.items())
        return weighted / batches

    def record_queue_delay(self, delay: float) -> None:
        # Cross-worker virtual-clock skew in a shared tier can dispatch
        # a batch marginally "before" a laggard's request arrived; the
        # distribution tracks real waiting, so skew clamps to zero.
        self._queue_delay.add(max(0.0, delay))

    def record_batch(self, size: int) -> None:
        self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        return {
            "counters": {
                name: instrument.value
                for name, instrument in self._instruments.items()
            },
            "breaker_state": self.breaker_state,
            "total_latency": self.total_latency,
            "queue_delay": self._queue_delay.state_dict(),
            "batch_sizes": {
                str(size): count for size, count in self._batch_sizes.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        for name, value in state["counters"].items():
            self._instruments[name].set(value)
        self.breaker_state = state["breaker_state"]
        self.total_latency = float(state["total_latency"])
        self._queue_delay.restore(state["queue_delay"])
        self.batch_sizes = state["batch_sizes"]


def _serve_counter_property(name: str) -> property:
    def _get(self):
        return self._instruments[name].value

    def _set(self, value):
        self._instruments[name].set(value)

    return property(_get, _set, doc=f"view over the serve.{name} series")


for _counter_name in _SERVE_COUNTERS:
    setattr(InferenceStats, _counter_name, _serve_counter_property(_counter_name))
del _counter_name


@dataclass(order=True)
class PendingPrediction:
    ready_at: float
    sequence: int
    payload: object = field(compare=False)
    submitted_at: float = field(compare=False, default=0.0)
    # None for a request that will deliver; TIMEOUT/SLOT_CRASH for one
    # whose every attempt was lost (``ready_at`` is then the virtual
    # time the failure is *observed*, after retries and backoff).
    failure: str | None = field(compare=False, default=None)
    attempts: int = field(compare=False, default=1)


class InferenceService:
    """A virtual-time model server with a fixed slot pool."""

    def __init__(
        self,
        predict_fn,
        latency: float,
        servers: int = 4,
        max_queue: int = 256,
        deadline: float | None = None,
        max_retries: int = 0,
        retry_backoff: float | None = None,
        injector: FaultInjector | None = None,
        breaker: CircuitBreaker | None = None,
        strict: bool = False,
        shed_timeout: float | None = None,
        registry: MetricsRegistry | None = None,
        labels: dict | None = None,
        tracer: Tracer | None = None,
        track: str = "serve",
    ):
        if latency <= 0:
            raise ModelError(f"latency must be positive, got {latency}")
        if servers < 1:
            raise ModelError(f"need at least one server, got {servers}")
        if deadline is not None and deadline <= 0:
            raise ModelError(f"deadline must be positive, got {deadline}")
        if max_retries < 0:
            raise ModelError(f"max_retries must be >= 0, got {max_retries}")
        if shed_timeout is not None and shed_timeout <= 0:
            raise ModelError(
                f"shed_timeout must be positive, got {shed_timeout}"
            )
        self.predict_fn = predict_fn
        self.latency = latency
        self.servers = servers
        self.max_queue = max_queue
        self.deadline = deadline
        self.max_retries = max_retries
        # First-retry delay; subsequent retries double it.
        self.retry_backoff = latency if retry_backoff is None else retry_backoff
        self.injector = injector
        self.breaker = breaker
        self.strict = strict
        # Deadline-aware load shedding: a submission whose projected
        # wait for a free slot exceeds this is refused up front (the
        # caller degrades to its heuristic path) instead of queueing
        # work that would arrive too late to matter.  None disables.
        self.shed_timeout = shed_timeout
        self.stats = InferenceStats(registry=registry, labels=labels)
        self.tracer = tracer
        self.track = track
        self._server_free = [0.0] * servers
        self._pending: list[PendingPrediction] = []
        self._failures: list[tuple[object, str]] = []
        self._sequence = 0

    @property
    def saturation_throughput(self) -> float:
        """Queries/second the pool can sustain."""
        return self.servers / self.latency

    def submit(self, query, now: float) -> float | None:
        """Enqueue a query at virtual time ``now``.

        Returns the delivery time (success or observed failure), or None
        when the request is rejected — queue full, or circuit breaker
        open — in which case the fuzzer falls back to heuristic
        mutation for this base.
        """
        if self.breaker is not None and not self.breaker.allow(now):
            self.stats.breaker_rejections += 1
            self._sync_breaker()
            return None
        if len(self._pending) >= self.max_queue:
            self.stats.rejected += 1
            if self.breaker is not None:
                # The breaker admitted this request (possibly as its
                # half-open probe); un-reserve the probe so the next
                # submission can carry it instead.
                self.breaker.cancel_probe()
            return None
        if self._shed(now):
            return None
        slot = min(range(self.servers), key=lambda i: self._server_free[i])
        first_start = max(now, self._server_free[slot])
        start = first_start
        failure: str | None = None
        attempts = 0
        while True:
            attempts += 1
            failure = self._attempt_failure(start)
            if failure is None:
                ready = start + self.latency
                break
            # A timed-out attempt is detected after the request deadline;
            # a crashed slot only after the full service latency.
            detection = (
                self.deadline
                if failure == TIMEOUT and self.deadline is not None
                else self.latency
            )
            if attempts > self.max_retries:
                ready = start + detection
                break
            self.stats.retries += 1
            start = start + detection + self.retry_backoff * 2 ** (attempts - 1)
        self._server_free[slot] = ready
        self._sequence += 1
        heapq.heappush(
            self._pending,
            PendingPrediction(
                ready_at=ready, sequence=self._sequence, payload=query,
                submitted_at=now, failure=failure, attempts=attempts,
            ),
        )
        self.stats.submitted += 1
        self.stats.record_queue_delay(first_start - now)
        self.stats.record_batch(1)
        return ready

    def _shed(self, now: float) -> bool:
        """Deadline-aware admission control at submit time.

        The projected wait is how long the earliest-free slot stays
        busy; when that already exceeds ``shed_timeout`` the request is
        shed — counted separately from queue-full ``rejected`` — and
        the caller degrades to its heuristic path immediately instead
        of waiting on a saturated tier.
        """
        if self.shed_timeout is None:
            return False
        projected = min(self._server_free) - now
        if projected <= self.shed_timeout:
            return False
        self.stats.shed += 1
        if self.breaker is not None:
            self.breaker.cancel_probe()
        if self.tracer is not None:
            self.tracer.instant(
                self.track, "shed", now, cat="serve", wait=projected,
            )
        return True

    def poll(self, now: float) -> list[tuple[object, object]]:
        """All (query, prediction) pairs delivered by time ``now``.

        Predictions are computed here, lazily: requests lost to injected
        faults never invoke ``predict_fn``.  Lost queries are recorded
        for :meth:`drain_failures` and, in strict mode, raise
        :class:`~repro.errors.InferenceTimeout` instead.
        """
        done: list[tuple[object, object]] = []
        while self._pending and self._pending[0].ready_at <= now:
            item = heapq.heappop(self._pending)
            if item.failure is None:
                prediction = self.predict_fn(item.payload)
                self.stats.completed += 1
                self.stats.total_latency += item.ready_at - item.submitted_at
                if self.breaker is not None:
                    self.breaker.record_success(item.ready_at)
                if self.tracer is not None:
                    self.tracer.record(
                        self.track, "inference", item.submitted_at,
                        item.ready_at, cat="inference",
                        attempts=item.attempts,
                    )
                done.append((item.payload, prediction))
                continue
            self.stats.failures += 1
            if item.failure == TIMEOUT:
                self.stats.timeouts += 1
            else:
                self.stats.slot_crashes += 1
            if self.tracer is not None:
                self.tracer.instant(
                    self.track, "inference_loss", item.ready_at, cat="fault",
                    kind=item.failure, attempts=item.attempts,
                )
            self._record_breaker_failure(item.ready_at)
            self._failures.append((item.payload, item.failure))
            if self.strict:
                self._sync_breaker()
                raise InferenceTimeout(
                    f"request lost to {item.failure} after "
                    f"{item.attempts} attempt(s)"
                )
        self._sync_breaker()
        return done

    def drain_failures(self) -> list[tuple[object, str]]:
        """Queries lost since the last drain, with their failure kind."""
        failures = self._failures
        self._failures = []
        return failures

    def pending_count(self) -> int:
        return len(self._pending)

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        """Serializable service state.  In-flight requests are *not*
        captured — a crashed worker loses them (§3.4's degradation
        story); the count is recorded so a resumed campaign can account
        the loss."""
        return {
            "server_free": list(self._server_free),
            "sequence": self._sequence,
            "lost_in_flight": len(self._pending),
            "stats": self.stats.state_dict(),
            "breaker": (
                self.breaker.state_dict() if self.breaker is not None else None
            ),
        }

    def restore(self, state: dict) -> int:
        """Restore :meth:`state_dict`; returns the lost in-flight count."""
        self._server_free = [float(value) for value in state["server_free"]]
        self._sequence = int(state["sequence"])
        self._pending = []
        self._failures = []
        self.stats.restore_state(state["stats"])
        if state.get("breaker") is not None and self.breaker is not None:
            self.breaker.restore(state["breaker"])
        return int(state.get("lost_in_flight", 0))

    # ----- internals -----

    def _attempt_failure(self, start: float) -> str | None:
        """Fault decision for one service attempt starting at ``start``."""
        if self.injector is None:
            return None
        if self.injector.fires("inference", start):
            return TIMEOUT
        if self.injector.fires("server_slot", start):
            return SLOT_CRASH
        return None

    def _record_breaker_failure(self, time: float) -> None:
        """Feed the breaker, emitting a trip instant if this failure
        pushed it open."""
        if self.breaker is None:
            return
        trips_before = self.breaker.trips
        self.breaker.record_failure(time)
        if self.tracer is not None and self.breaker.trips > trips_before:
            self.tracer.instant(
                self.track, "breaker_trip", time, cat="fault",
            )

    def _sync_breaker(self) -> None:
        if self.breaker is not None:
            self.stats.breaker_trips = self.breaker.trips
            self.stats.breaker_state = self.breaker.state.value


# ----- dynamic batching -----


@dataclass
class _QueuedRequest:
    """A request waiting in the forming batch."""

    payload: object
    arrival: float        # when it (re-)entered the queue
    submitted_at: float   # original submission time, for latency stats
    attempts: int = 0     # failed batch attempts so far


@dataclass(order=True)
class _PendingBatch:
    """A dispatched batch occupying one slot until ``ready_at``."""

    ready_at: float
    sequence: int
    requests: list = field(compare=False, default_factory=list)
    failure: str | None = field(compare=False, default=None)
    # Virtual time the batch started occupying its slot (trace span).
    started: float = field(compare=False, default=0.0)


class BatchingInferenceService(InferenceService):
    """An :class:`InferenceService` with dynamic request batching.

    Requests queue until ``max_batch_size`` accumulate or
    ``batch_timeout`` virtual seconds pass since the oldest queued
    request; the batch then occupies the earliest-free slot for
    ``base_latency + len(batch) * marginal_latency``.  With a marginal
    cost well below the base cost this raises saturation throughput far
    above the unbatched ``servers / latency`` — the paper's GPU tier
    serving an entire fleet of fuzzing VMs.

    Failure semantics follow the deployment: an injected fault loses the
    *whole* batch (the replica crashed holding it), and each member
    request re-enqueues individually at the detection time, up to
    ``max_retries`` times, before being reported through
    ``drain_failures``.

    ``submit`` returns a worst-case delivery estimate for requests still
    queueing (the batch may leave earlier if it fills); exact delivery
    order is what ``poll`` observes, and it is deterministic.
    """

    def __init__(
        self,
        predict_fn,
        base_latency: float,
        marginal_latency: float,
        max_batch_size: int = 8,
        batch_timeout: float | None = None,
        servers: int = 4,
        max_queue: int = 256,
        deadline: float | None = None,
        max_retries: int = 0,
        retry_backoff: float | None = None,
        injector: FaultInjector | None = None,
        breaker: CircuitBreaker | None = None,
        strict: bool = False,
        shed_timeout: float | None = None,
        registry: MetricsRegistry | None = None,
        labels: dict | None = None,
        tracer: Tracer | None = None,
        track: str = "serve",
    ):
        if base_latency <= 0:
            raise ModelError(
                f"base latency must be positive, got {base_latency}"
            )
        if marginal_latency < 0:
            raise ModelError(
                f"marginal latency must be >= 0, got {marginal_latency}"
            )
        if max_batch_size < 1:
            raise ModelError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        single = base_latency + marginal_latency
        super().__init__(
            predict_fn,
            latency=single,
            servers=servers,
            max_queue=max_queue,
            deadline=deadline,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            injector=injector,
            breaker=breaker,
            strict=strict,
            shed_timeout=shed_timeout,
            registry=registry,
            labels=labels,
            tracer=tracer,
            track=track,
        )
        self.base_latency = base_latency
        self.marginal_latency = marginal_latency
        self.max_batch_size = max_batch_size
        self.batch_timeout = single if batch_timeout is None else batch_timeout
        if self.batch_timeout <= 0:
            raise ModelError(
                f"batch_timeout must be positive, got {self.batch_timeout}"
            )
        self._queue: list[_QueuedRequest] = []
        self._batches: list[_PendingBatch] = []
        self._completed: list[tuple[object, object]] = []
        self._last_dispatch_ready = 0.0

    def latency_of(self, batch_size: int) -> float:
        """Slot occupancy of one batch of ``batch_size`` requests."""
        return self.base_latency + self.marginal_latency * batch_size

    @property
    def saturation_throughput(self) -> float:
        """Queries/second at full batches — the batching win."""
        return (
            self.servers * self.max_batch_size
            / self.latency_of(self.max_batch_size)
        )

    # ----- the service interface -----

    def submit(self, query, now: float) -> float | None:
        if self.breaker is not None and not self.breaker.allow(now):
            self.stats.breaker_rejections += 1
            self._sync_breaker()
            return None
        # Dispatch batches that should already have left, so a late
        # submission never joins a batch whose deadline has passed.
        self._advance(now)
        if len(self._queue) + self._in_flight() >= self.max_queue:
            self.stats.rejected += 1
            if self.breaker is not None:
                self.breaker.cancel_probe()
            return None
        if self._shed(now):
            return None
        self._queue.append(
            _QueuedRequest(payload=query, arrival=now, submitted_at=now)
        )
        self.stats.submitted += 1
        if len(self._queue) >= self.max_batch_size:
            self._dispatch(now)
        return self._estimate_ready(now)

    def poll(self, now: float) -> list[tuple[object, object]]:
        self._advance(now)
        self._sync_breaker()
        done = self._completed
        self._completed = []
        return done

    def pending_count(self) -> int:
        return len(self._queue) + self._in_flight()

    # ----- checkpointing -----

    def state_dict(self) -> dict:
        state = super().state_dict()
        # Queued and in-flight requests all die with the worker.
        state["lost_in_flight"] = self.pending_count()
        return state

    def restore(self, state: dict) -> int:
        lost = super().restore(state)
        self._queue = []
        self._batches = []
        self._completed = []
        return lost

    # ----- internals -----

    def _in_flight(self) -> int:
        return sum(len(batch.requests) for batch in self._batches)

    def _estimate_ready(self, now: float) -> float:
        """Worst-case delivery time of the newest request."""
        if not self._queue:
            # The request dispatched immediately (batch filled).
            return self._last_dispatch_ready
        deadline = (
            min(request.arrival for request in self._queue)
            + self.batch_timeout
        )
        start = max(deadline, min(self._server_free))
        return start + self.latency_of(len(self._queue))

    def _advance(self, now: float) -> None:
        """Process every dispatch/completion event due by ``now``.

        Events are consumed in virtual-time order, so completions that
        re-enqueue retries interleave correctly with timeout-driven
        dispatches — the whole cascade is deterministic.
        """
        while True:
            deadline = (
                min(request.arrival for request in self._queue)
                + self.batch_timeout
                if self._queue else float("inf")
            )
            ready = (
                self._batches[0].ready_at if self._batches else float("inf")
            )
            event = min(deadline, ready)
            if event > now:
                return
            if ready <= deadline:
                self._complete(heapq.heappop(self._batches))
            else:
                self._dispatch(deadline)

    def _dispatch(self, time: float) -> None:
        """Move up to ``max_batch_size`` queued requests onto a slot."""
        batch_requests = self._queue[: self.max_batch_size]
        del self._queue[: self.max_batch_size]
        size = len(batch_requests)
        slot = min(range(self.servers), key=lambda i: self._server_free[i])
        start = max(time, self._server_free[slot])
        failure = self._attempt_failure(start)
        if failure is None:
            ready = start + self.latency_of(size)
        else:
            detection = (
                self.deadline
                if failure == TIMEOUT and self.deadline is not None
                else self.latency_of(size)
            )
            ready = start + detection
        self._server_free[slot] = ready
        self._last_dispatch_ready = ready
        for request in batch_requests:
            self.stats.record_queue_delay(start - request.arrival)
        self.stats.record_batch(size)
        self._sequence += 1
        heapq.heappush(
            self._batches,
            _PendingBatch(
                ready_at=ready, sequence=self._sequence,
                requests=batch_requests, failure=failure, started=start,
            ),
        )

    def _complete(self, batch: _PendingBatch) -> None:
        if batch.failure is None:
            for request in batch.requests:
                prediction = self.predict_fn(request.payload)
                self.stats.completed += 1
                self.stats.total_latency += (
                    batch.ready_at - request.submitted_at
                )
                self._completed.append((request.payload, prediction))
            if self.breaker is not None:
                self.breaker.record_success(batch.ready_at)
            if self.tracer is not None:
                self.tracer.record(
                    self.track, "inference_batch", batch.started,
                    batch.ready_at, cat="inference",
                    size=len(batch.requests),
                )
            return
        # The slot died holding the batch: every member is lost together
        # and retries individually.
        if batch.failure == TIMEOUT:
            self.stats.timeouts += 1
        else:
            self.stats.slot_crashes += 1
        if self.tracer is not None:
            self.tracer.instant(
                self.track, "batch_lost", batch.ready_at, cat="fault",
                kind=batch.failure, size=len(batch.requests),
            )
        self._record_breaker_failure(batch.ready_at)
        for request in batch.requests:
            if request.attempts < self.max_retries:
                request.attempts += 1
                request.arrival = batch.ready_at
                self.stats.retries += 1
                self._queue.append(request)
            else:
                self.stats.failures += 1
                self._failures.append((request.payload, batch.failure))
                if self.strict:
                    self._sync_breaker()
                    raise InferenceTimeout(
                        f"batched request lost to {batch.failure} after "
                        f"{request.attempts + 1} attempt(s)"
                    )
        # Re-enqueued retries may already fill a batch.
        while len(self._queue) >= self.max_batch_size:
            self._dispatch(batch.ready_at)
