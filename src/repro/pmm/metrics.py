"""Selector performance metrics (Table 1).

For each example, the true set ŷ is the ground-truth argument selection
and y the model's prediction; per-example precision, recall, F1, and
Jaccard are computed exactly as §5.1 defines and then averaged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SelectorMetrics", "score_sets", "evaluate_selector"]


@dataclass
class SelectorMetrics:
    """Mean per-example metrics across an evaluation set."""

    f1: float
    precision: float
    recall: float
    jaccard: float
    examples: int

    def row(self, name: str) -> str:
        """One Table 1 row."""
        return (
            f"{name:<10} {self.f1 * 100:5.1f}% {self.precision * 100:8.1f}% "
            f"{self.recall * 100:6.1f}% {self.jaccard * 100:7.1f}%"
        )


def score_sets(predicted: set, truth: set) -> tuple[float, float, float, float]:
    """(precision, recall, f1, jaccard) for one example."""
    if not predicted and not truth:
        return 1.0, 1.0, 1.0, 1.0
    intersection = len(predicted & truth)
    precision = intersection / len(predicted) if predicted else 0.0
    recall = intersection / len(truth) if truth else 0.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    union = len(predicted | truth)
    jaccard = intersection / union if union else 1.0
    return precision, recall, f1, jaccard


def evaluate_selector(predictions: list[set], truths: list[set]) -> SelectorMetrics:
    """Average per-example metrics over parallel prediction/truth lists."""
    if len(predictions) != len(truths):
        raise ValueError(
            f"{len(predictions)} predictions for {len(truths)} truths"
        )
    if not predictions:
        raise ValueError("cannot evaluate an empty prediction set")
    scores = np.array(
        [score_sets(pred, truth) for pred, truth in zip(predictions, truths)]
    )
    return SelectorMetrics(
        precision=float(scores[:, 0].mean()),
        recall=float(scores[:, 1].mean()),
        f1=float(scores[:, 2].mean()),
        jaccard=float(scores[:, 3].mean()),
        examples=len(predictions),
    )
