"""PMM — the Program Mutation Model (§3).

The learned white-box localizer: a Transformer encoder embeds each kernel
block's assembly (pre-trainable with a BERT-style masked-token objective,
§3.3), learned tables embed system-call variants, argument kinds/slots,
and edge types, and a relational GNN message-passes over the joint
program+coverage graph.  A target-attention readout scores every mutable
argument node MUTATE / NOT-MUTATE.

The package also contains the §3.1 mutation-dataset pipeline, the
training loop with F1-guided model selection, the Table 1 metrics, and a
virtual-time inference service that reproduces the asynchronous serving
architecture of §3.4/§5.5.
"""

from repro.pmm.asm_encoder import AsmEncoder
from repro.pmm.model import PMM, PMMConfig
from repro.pmm.dataset import (
    DatasetConfig,
    MutationDataset,
    MutationExample,
    MutationSample,
    harvest_mutations,
    make_examples,
)
from repro.pmm.metrics import SelectorMetrics, evaluate_selector, score_sets
from repro.pmm.train import Trainer, TrainConfig
from repro.pmm.serve import InferenceService, InferenceStats
from repro.pmm.pretrain import masked_lm_pretrain
from repro.pmm.checkpoint import load_pmm, save_pmm

__all__ = [
    "AsmEncoder",
    "DatasetConfig",
    "InferenceService",
    "InferenceStats",
    "MutationDataset",
    "MutationExample",
    "MutationSample",
    "PMM",
    "PMMConfig",
    "SelectorMetrics",
    "Trainer",
    "TrainConfig",
    "evaluate_selector",
    "harvest_mutations",
    "load_pmm",
    "make_examples",
    "masked_lm_pretrain",
    "save_pmm",
    "score_sets",
]
