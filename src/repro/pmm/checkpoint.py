"""Model checkpointing: save/load a trained PMM with its vocabularies.

The paper amortises PMM's training cost by reusing one model across
kernel releases and institutions ("potentially sharing the model weights
among different institutions", §6); that requires a durable, versioned
on-disk format.  Checkpoints are a single ``.npz`` holding the weight
arrays plus a JSON header with the architecture, the assembly
vocabulary, the syscall table fingerprint, and the calibrated decision
threshold.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.graphs.encode import AsmVocab, GraphEncoder
from repro.pmm.model import PMM, PMMConfig
from repro.syzlang.spec import SyscallTable

__all__ = ["save_pmm", "load_pmm"]

_FORMAT_VERSION = 1


def _table_fingerprint(table: SyscallTable) -> list[str]:
    return sorted(spec.full_name for spec in table.specs)


def save_pmm(
    path: str | Path,
    model: PMM,
    vocab: AsmVocab,
    table: SyscallTable,
) -> None:
    """Write ``model`` (+ vocab and table fingerprint) to ``path``."""
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(model.config),
        "decision_threshold": model.decision_threshold,
        "vocab": sorted(
            vocab.token_to_id, key=lambda token: vocab.token_to_id[token]
        ),
        "syscalls": _table_fingerprint(table),
    }
    arrays = {
        f"param_{index:04d}": array
        for index, array in enumerate(model.state_arrays())
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path, header=np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        ), **arrays,
    )


def load_pmm(
    path: str | Path, table: SyscallTable
) -> tuple[PMM, AsmVocab, GraphEncoder]:
    """Load a checkpoint and rebuild (model, vocab, encoder).

    ``table`` must carry at least the syscalls the model was trained
    with; a changed table would silently shift syscall embedding ids, so
    mismatches raise :class:`ModelError`.
    """
    path = Path(path)
    if not path.exists():
        raise ModelError(f"checkpoint {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["header"]).decode())
        if header.get("format_version") != _FORMAT_VERSION:
            raise ModelError(
                f"unsupported checkpoint version "
                f"{header.get('format_version')!r}"
            )
        arrays = [
            archive[key]
            for key in sorted(k for k in archive.files if k.startswith("param_"))
        ]
    trained_on = header["syscalls"]
    current = set(_table_fingerprint(table))
    missing = [name for name in trained_on if name not in current]
    if missing:
        raise ModelError(
            f"table is missing syscalls the checkpoint was trained with: "
            f"{missing[:5]}{'...' if len(missing) > 5 else ''}"
        )
    vocab = AsmVocab(
        token_to_id={token: i for i, token in enumerate(header["vocab"])}
    )
    # Rebuild the encoder from the *training-time* syscall list so the
    # embedding ids line up even when the deployment table grew.
    encoder = GraphEncoder.from_names(vocab, trained_on)
    model = PMM(
        len(vocab), encoder.num_syscalls, PMMConfig(**header["config"])
    )
    model.load_state_arrays(arrays)
    model.decision_threshold = float(header["decision_threshold"])
    return model, vocab, encoder
