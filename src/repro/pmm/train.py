"""PMM training (§3.3/§5.1).

Minimises the binary cross-entropy between predicted and ground-truth
argument selections with Adam, accumulating gradients over small graph
batches.  Validation F1 guides model selection, exactly as the paper's
hyperparameter search does; the trainer keeps the best-F1 checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.graphs.encode import GraphEncoder
from repro.kernel.build import Kernel
from repro.nn.optim import Adam
from repro.pmm.dataset import MutationDataset, MutationExample
from repro.pmm.metrics import SelectorMetrics, evaluate_selector
from repro.pmm.model import PMM
from repro.rng import split

__all__ = ["TrainConfig", "Trainer"]


@dataclass
class TrainConfig:
    epochs: int = 4
    batch_size: int = 8
    learning_rate: float = 2e-3
    # Cap per-epoch examples to bound wall time; 0 = use everything.
    max_examples_per_epoch: int = 0
    # Validation subset size for per-epoch F1 (0 = all).
    max_validation_examples: int = 500
    seed: int = 0


@dataclass
class EpochReport:
    epoch: int
    mean_loss: float
    validation: SelectorMetrics | None


@dataclass
class Trainer:
    """Trains a PMM on a mutation dataset."""

    model: PMM
    dataset: MutationDataset
    kernel: Kernel
    encoder: GraphEncoder
    config: TrainConfig = field(default_factory=TrainConfig)

    def __post_init__(self) -> None:
        if not self.dataset.train:
            raise ModelError("dataset has no training examples")
        self._optimizer = Adam(
            self.model.parameters(), lr=self.config.learning_rate
        )
        self._best_f1 = -1.0
        self._best_state: list[np.ndarray] | None = None
        self.reports: list[EpochReport] = []

    def train(self) -> list[EpochReport]:
        """Run all epochs; restores the best-validation-F1 weights."""
        rng = split(self.config.seed, "trainer")
        for epoch in range(self.config.epochs):
            examples = list(self.dataset.train)
            order = rng.permutation(len(examples))
            if self.config.max_examples_per_epoch:
                order = order[: self.config.max_examples_per_epoch]
            losses = self._run_epoch([examples[int(i)] for i in order])
            validation = self._validate(rng)
            self.reports.append(
                EpochReport(
                    epoch=epoch,
                    mean_loss=float(np.mean(losses)) if losses else 0.0,
                    validation=validation,
                )
            )
            if validation is not None and validation.f1 > self._best_f1:
                self._best_f1 = validation.f1
                self._best_state = [
                    array.copy() for array in self.model.state_arrays()
                ]
        if self._best_state is not None:
            self.model.load_state_arrays(self._best_state)
        self.calibrate_threshold()
        return self.reports

    def calibrate_threshold(
        self, thresholds: tuple[float, ...] = (0.25, 0.3, 0.35, 0.4, 0.45,
                                               0.5, 0.55, 0.6, 0.7),
    ) -> float:
        """Pick the decision threshold maximising validation F1.

        Logits are computed once per validation example and reused for
        every candidate threshold.
        """
        import numpy as np
        from repro.nn.tensor import no_grad
        from repro.pmm.metrics import score_sets

        examples = self.dataset.validation[: self.config.max_validation_examples or None]
        if not examples:
            return self.model.decision_threshold
        cached = []
        for example in examples:
            encoded = self.dataset.encode_example(
                example, self.kernel, self.encoder
            )
            with no_grad():
                logits = self.model.forward(encoded)
            probabilities = 1.0 / (1.0 + np.exp(-logits.data))
            arg_rows = np.flatnonzero(encoded.arg_mask)
            paths = [encoded.arg_paths[row] for row in arg_rows]
            cached.append((probabilities, paths, set(example.labels)))
        best_threshold = self.model.decision_threshold
        best_f1 = -1.0
        for threshold in thresholds:
            f1_sum = 0.0
            for probabilities, paths, truth in cached:
                predicted = {
                    path for path, prob in zip(paths, probabilities)
                    if prob >= threshold and path is not None
                }
                if not predicted and paths:
                    top = int(np.argmax(probabilities))
                    if paths[top] is not None:
                        predicted = {paths[top]}
                _, _, f1, _ = score_sets(predicted, truth)
                f1_sum += f1
            mean_f1 = f1_sum / len(cached)
            if mean_f1 > best_f1:
                best_f1 = mean_f1
                best_threshold = threshold
        self.model.decision_threshold = best_threshold
        return best_threshold

    def _run_epoch(self, examples: list[MutationExample]) -> list[float]:
        losses: list[float] = []
        batch: list[MutationExample] = []
        for example in examples:
            batch.append(example)
            if len(batch) >= self.config.batch_size:
                losses.append(self._step(batch))
                batch = []
        if batch:
            losses.append(self._step(batch))
        return losses

    def _step(self, batch: list[MutationExample]) -> float:
        self._optimizer.zero_grad()
        total = 0.0
        scale = 1.0 / len(batch)
        for example in batch:
            encoded = self.dataset.encode_example(
                example, self.kernel, self.encoder
            )
            loss = self.model.loss(encoded) * scale
            loss.backward()
            total += loss.item()
        self._optimizer.step()
        return total

    def _validate(self, rng: np.random.Generator) -> SelectorMetrics | None:
        examples = self.dataset.validation
        if not examples:
            return None
        limit = self.config.max_validation_examples
        if limit and len(examples) > limit:
            picks = rng.permutation(len(examples))[:limit]
            examples = [examples[int(i)] for i in picks]
        return self.evaluate(examples)

    def evaluate(self, examples: list[MutationExample]) -> SelectorMetrics:
        """Per-example metrics of the current model on ``examples``."""
        predictions: list[set] = []
        truths: list[set] = []
        for example in examples:
            encoded = self.dataset.encode_example(
                example, self.kernel, self.encoder
            )
            predicted = set(self.model.predict_paths(encoded))
            predictions.append(predicted)
            truths.append(set(example.labels))
        return evaluate_selector(predictions, truths)
