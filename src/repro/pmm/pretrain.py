"""BERT-style masked-token pretraining of the assembly encoder (§3.3).

The paper pre-trains its Transformer encoder on all x86 assembly of a
compiled Linux kernel.  Here the corpus is every basic block of a built
synthetic kernel; 15 % of tokens are masked (80 % → <mask>, 10 % →
random token, 10 % unchanged) and the encoder is trained to recover
them with a cross-entropy objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.graphs.encode import AsmVocab, MASK, MAX_ASM_LEN, PAD
from repro.kernel.build import Kernel
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.pmm.asm_encoder import AsmEncoder, MaskedLMHead
from repro.rng import split

__all__ = ["PretrainConfig", "masked_lm_pretrain"]

_MASK_PROB = 0.15


@dataclass
class PretrainConfig:
    steps: int = 60
    batch_size: int = 32
    learning_rate: float = 2e-3
    seed: int = 0


def _block_token_matrix(kernel: Kernel, vocab: AsmVocab) -> np.ndarray:
    rows = [
        vocab.encode(block.asm)
        for block in kernel.blocks.values()
        if block.asm
    ]
    if not rows:
        raise ModelError("kernel has no assembly to pretrain on")
    return np.asarray(rows, dtype=np.int64)


def masked_lm_pretrain(
    encoder: AsmEncoder,
    kernel: Kernel,
    vocab: AsmVocab,
    config: PretrainConfig | None = None,
) -> list[float]:
    """Pretrain ``encoder`` in place; returns the per-step loss series."""
    config = config or PretrainConfig()
    corpus = _block_token_matrix(kernel, vocab)
    rng = split(config.seed, "mlm")
    head = MaskedLMHead(encoder, rng)
    optimizer = Adam(
        encoder.parameters() + head.parameters(), lr=config.learning_rate
    )
    losses: list[float] = []
    for _ in range(config.steps):
        rows = rng.integers(0, len(corpus), size=config.batch_size)
        batch = corpus[rows].copy()
        masked, mask_positions, original = _mask_tokens(batch, rng, len(vocab))
        if not mask_positions.any():
            continue
        optimizer.zero_grad()
        states = encoder.encode_tokens(masked)
        logits = head(states)  # [B, L, V]
        loss = _masked_cross_entropy(logits, original, mask_positions)
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses


def _mask_tokens(
    batch: np.ndarray, rng: np.random.Generator, vocab_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    original = batch.copy()
    can_mask = batch != PAD
    chosen = (rng.random(batch.shape) < _MASK_PROB) & can_mask
    roll = rng.random(batch.shape)
    masked = batch.copy()
    masked[chosen & (roll < 0.8)] = MASK
    random_positions = chosen & (roll >= 0.8) & (roll < 0.9)
    masked[random_positions] = rng.integers(
        3, vocab_size, size=int(random_positions.sum())
    )
    return masked, chosen, original


def _masked_cross_entropy(
    logits: Tensor, original: np.ndarray, positions: np.ndarray
) -> Tensor:
    log_probs = (logits.softmax(axis=-1) + 1e-12).log()
    one_hot = np.zeros(logits.shape)
    batch_idx, token_idx = np.nonzero(positions)
    one_hot[batch_idx, token_idx, original[batch_idx, token_idx]] = 1.0
    picked = (log_probs * Tensor(one_hot)).sum()
    return -picked * (1.0 / max(len(batch_idx), 1))
