"""The mutation dataset pipeline (§3.1).

Harvesting: each base test in a seed corpus is executed once for its
baseline coverage, then mutated many times with the fuzzer's *random*
argument localization + instantiation.  Every mutant whose coverage
contains blocks the base missed yields a successful-mutation sample
⟨s_i, c_i, a_ij, c_ij \\ c_i⟩; mutations of the same base reaching the
same new coverage are merged, so a_ij may contain several arguments.

Example construction inverts the samples into training queries using the
paper's option (c): the target set is drawn from the *noisy* frontier —
all uncovered blocks one branch away from c_i — at 1-element, 25 %, 50 %,
75 %, or 100 % sampling, forced to overlap the actually-achieved nearby
new coverage.  Examples whose targets are over-popular kernel blocks are
capped, and splits are made per base test so no base leaks across
train/validation/evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError, MutationError
from repro.fuzzer.mutations import ArgumentInstantiator
from repro.graphs.build import build_query_graph
from repro.graphs.encode import EncodedGraph, GraphEncoder
from repro.kernel.build import Kernel
from repro.kernel.coverage import Coverage
from repro.kernel.executor import Executor
from repro.rng import split
from repro.syzlang.generator import ProgramGenerator
from repro.syzlang.program import ArgPath, Program

__all__ = [
    "DatasetConfig",
    "MutationSample",
    "MutationExample",
    "MutationDataset",
    "harvest_mutations",
    "make_examples",
]

_SAMPLE_FRACTIONS = (None, 0.25, 0.50, 0.75, 1.00)  # None = single block


@dataclass(frozen=True)
class MutationSample:
    """One successful argument mutation ⟨s_i, c_i, a_ij, c_ij \\ c_i⟩."""

    base_index: int
    mutated_paths: frozenset[ArgPath]
    new_blocks: frozenset[int]


@dataclass
class MutationExample:
    """One training query: base + coverage + targets → MUTATE labels."""

    base_index: int
    targets: frozenset[int]
    labels: frozenset[ArgPath]


@dataclass
class DatasetConfig:
    """Pipeline knobs (paper values in comments)."""

    mutations_per_test: int = 200          # paper: 1000
    max_examples_per_block: int = 40       # popularity cap
    train_fraction: float = 0.8
    validation_fraction: float = 0.1
    # §3.1 target construction: "noisy" is the paper's chosen option (c)
    # — frontier sampling at 1/25/50/75/100 % with forced overlap;
    # "exact" is the rejected option (a) — the target set is exactly the
    # mutation's new coverage.  Kept for the design ablation.
    target_strategy: str = "noisy"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.target_strategy not in ("noisy", "exact"):
            raise DatasetError(
                f"unknown target strategy {self.target_strategy!r}"
            )


@dataclass
class MutationDataset:
    """The full dataset: base tests, their coverage, and split examples."""

    programs: list[Program]
    coverages: list[Coverage]
    samples: list[MutationSample]
    train: list[MutationExample] = field(default_factory=list)
    validation: list[MutationExample] = field(default_factory=list)
    evaluation: list[MutationExample] = field(default_factory=list)

    def encode_example(
        self,
        example: MutationExample,
        kernel: Kernel,
        encoder: GraphEncoder,
    ) -> EncodedGraph:
        """Build + encode the query graph of one example, with labels."""
        program = self.programs[example.base_index]
        coverage = self.coverages[example.base_index]
        graph = build_query_graph(
            program, coverage, kernel, set(example.targets)
        )
        labels = {path: True for path in example.labels}
        return encoder.encode(graph, labels=labels)

    def stats(self) -> dict[str, float]:
        """Summary statistics (the §5.1 dataset characterisation)."""
        sites = [len(p.mutation_sites()) for p in self.programs]
        merged_sizes = [len(s.mutated_paths) for s in self.samples]
        per_base: dict[int, int] = {}
        for sample in self.samples:
            per_base[sample.base_index] = per_base.get(sample.base_index, 0) + 1
        return {
            "base_tests": len(self.programs),
            "avg_mutation_sites": float(np.mean(sites)) if sites else 0.0,
            "samples": len(self.samples),
            "avg_samples_per_base": (
                float(np.mean(list(per_base.values()))) if per_base else 0.0
            ),
            "avg_label_size": (
                float(np.mean(merged_sizes)) if merged_sizes else 0.0
            ),
            "train_examples": len(self.train),
            "validation_examples": len(self.validation),
            "evaluation_examples": len(self.evaluation),
        }


def harvest_mutations(
    kernel: Kernel,
    executor: Executor,
    generator: ProgramGenerator,
    corpus: list[Program],
    config: DatasetConfig,
) -> MutationDataset:
    """Run the §3.1 harvesting campaign over ``corpus``."""
    if not corpus:
        raise DatasetError("harvesting needs a non-empty corpus")
    rng = split(config.seed, "harvest")
    instantiator = ArgumentInstantiator(generator, rng)
    programs: list[Program] = []
    coverages: list[Coverage] = []
    samples: list[MutationSample] = []
    for base_index, base in enumerate(corpus):
        base_result = executor.run(base)
        if base_result.crashed:
            # §5.1: crashing base tests are excluded from data generation.
            continue
        kept_index = len(programs)
        programs.append(base)
        coverages.append(base_result.coverage)
        sites = base.mutation_sites()
        if not sites:
            continue
        merged: dict[frozenset[int], set[ArgPath]] = {}
        for _ in range(config.mutations_per_test):
            path = sites[int(rng.integers(len(sites)))]
            mutant = base.clone()
            try:
                instantiator.instantiate(mutant, path)
            except MutationError:
                continue
            result = executor.run(mutant)
            new_blocks = result.coverage.blocks - base_result.coverage.blocks
            if not new_blocks:
                continue
            merged.setdefault(frozenset(new_blocks), set()).add(path)
        for new_blocks, paths in merged.items():
            samples.append(
                MutationSample(
                    base_index=kept_index,
                    mutated_paths=frozenset(paths),
                    new_blocks=new_blocks,
                )
            )
    dataset = MutationDataset(
        programs=programs, coverages=coverages, samples=samples
    )
    _build_examples(dataset, kernel, config)
    return dataset


def make_examples(
    sample: MutationSample,
    base_samples: list[MutationSample],
    coverage: Coverage,
    kernel: Kernel,
    rng: np.random.Generator,
) -> list[MutationExample]:
    """Invert one sample into training examples (§3.1 option (c)).

    The noisy target pool is the one-branch frontier of the base
    coverage; the achieved part is the sample's new blocks that lie in
    that frontier.  Samples without any near new coverage are skipped.

    The MUTATE label of an example is the union of mutated arguments
    across *all* of the base's samples whose near new coverage overlaps
    the chosen targets — i.e. every argument known to steer the test into
    some targeted block — which is the quantity the localizer is asked to
    predict ("which arguments, when mutated, would lead the test to reach
    the desired target coverage", §3).
    """
    frontier = kernel.frontier(coverage.blocks)
    achieved_near = sample.new_blocks & frontier
    if not achieved_near:
        return []
    pool = sorted(frontier)
    achieved_list = sorted(achieved_near)
    examples: list[MutationExample] = []
    for fraction in _SAMPLE_FRACTIONS:
        if fraction is None:
            targets = {achieved_list[int(rng.integers(len(achieved_list)))]}
        else:
            count = max(1, int(round(fraction * len(pool))))
            picks = rng.permutation(len(pool))[:count]
            targets = {pool[int(pick)] for pick in picks}
            if not targets & achieved_near:
                # Force the required overlap with achieved new coverage.
                targets.add(
                    achieved_list[int(rng.integers(len(achieved_list)))]
                )
        labels: set[ArgPath] = set()
        for peer in base_samples:
            if (peer.new_blocks & frontier) & targets:
                labels.update(peer.mutated_paths)
        examples.append(
            MutationExample(
                base_index=sample.base_index,
                targets=frozenset(targets),
                labels=frozenset(labels),
            )
        )
    return examples


def _build_examples(
    dataset: MutationDataset, kernel: Kernel, config: DatasetConfig
) -> None:
    rng = split(config.seed, "examples")
    by_base: dict[int, list[MutationSample]] = {}
    for sample in dataset.samples:
        by_base.setdefault(sample.base_index, []).append(sample)
    all_examples: list[MutationExample] = []
    for sample in dataset.samples:
        coverage = dataset.coverages[sample.base_index]
        if config.target_strategy == "exact":
            all_examples.append(
                MutationExample(
                    base_index=sample.base_index,
                    targets=sample.new_blocks,
                    labels=sample.mutated_paths,
                )
            )
            continue
        all_examples.extend(
            make_examples(
                sample, by_base[sample.base_index], coverage, kernel, rng
            )
        )
    capped = _apply_popularity_cap(
        all_examples, config.max_examples_per_block, rng
    )
    _split_examples(dataset, capped, config)


def _apply_popularity_cap(
    examples: list[MutationExample], cap: int, rng: np.random.Generator
) -> list[MutationExample]:
    """Discard examples whose targets are already over-represented."""
    if cap <= 0:
        raise DatasetError(f"popularity cap must be positive, got {cap}")
    counts: dict[int, int] = {}
    kept: list[MutationExample] = []
    order = rng.permutation(len(examples))
    for index in order:
        example = examples[int(index)]
        if any(counts.get(block, 0) >= cap for block in example.targets):
            continue
        for block in example.targets:
            counts[block] = counts.get(block, 0) + 1
        kept.append(example)
    return kept


def _split_examples(
    dataset: MutationDataset,
    examples: list[MutationExample],
    config: DatasetConfig,
) -> None:
    """Per-base-test split: all examples of a base land in one split."""
    if not 0 < config.train_fraction < 1:
        raise DatasetError("train_fraction must be in (0, 1)")
    rng = split(config.seed, "split")
    base_indices = sorted({example.base_index for example in examples})
    order = rng.permutation(len(base_indices))
    shuffled = [base_indices[int(i)] for i in order]
    n_train = int(config.train_fraction * len(shuffled))
    n_val = int(config.validation_fraction * len(shuffled))
    train_bases = set(shuffled[:n_train])
    val_bases = set(shuffled[n_train : n_train + n_val])
    for example in examples:
        if example.base_index in train_bases:
            dataset.train.append(example)
        elif example.base_index in val_bases:
            dataset.validation.append(example)
        else:
            dataset.evaluation.append(example)
