"""The Program Mutation Model.

Architecture (the three learnable components of §3.3):

- θ_TRANSFORMER — :class:`~repro.pmm.asm_encoder.AsmEncoder` embeds each
  block's assembly;
- θ_Emb — learned tables for node kinds, system-call variants, argument
  kinds, argument slots, a target marker vector, and per-relation GNN
  weights (edge-type embedding);
- θ_GNN — relational message-passing layers over the query graph,
  followed by a target-attention readout: every mutable argument node
  attends over the (target-marked) alternative block states, so the model
  can match an argument's slot against the code of the branch guarding
  the desired block, and a 2-layer MLP scores MUTATE / NOT-MUTATE.

The readout attention is the one deliberate architectural deviation from
"plain GCN": with the shallow GNNs trainable on a laptop, argument nodes
are many hops from the condition blocks encoding their slot, so a direct
argument→target comparison stage replaces extra depth (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.graphs.encode import NUM_EDGE_TYPES, EncodedGraph
from repro.nn.init import normal_init
from repro.nn.modules import Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor, concat, scatter_add
from repro.pmm.asm_encoder import AsmEncoder

__all__ = ["PMM", "PMMConfig", "RelationalGNNLayer"]

_NUM_NODE_KINDS = 4
_NUM_ARG_KINDS = 16  # ArgKind cardinality + none, with headroom


@dataclass
class PMMConfig:
    """Hyperparameters of PMM (the §5.1 search tunes these)."""

    dim: int = 48
    gnn_layers: int = 3
    asm_heads: int = 4
    asm_layers: int = 2
    readout_hidden: int = 64
    # Loss weight of the positive (MUTATE) class.
    positive_weight: float = 3.0
    seed: int = 0


class RelationalGNNLayer(Module):
    """One relational message-passing step.

    h'_v = LayerNorm(ReLU(W_self h_v + Σ_r mean_{(u,v) ∈ r} W_r h_u)).
    """

    def __init__(self, dim: int, num_relations: int, rng: np.random.Generator):
        self.self_loop = Linear(dim, dim, rng)
        self.relation_weights = [
            Linear(dim, dim, rng, bias=False) for _ in range(num_relations)
        ]
        self.norm = LayerNorm(dim)

    def __call__(
        self,
        states: Tensor,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_type: np.ndarray,
        num_nodes: int,
        in_degree: np.ndarray,
    ) -> Tensor:
        aggregated = self.self_loop(states)
        for relation, weight in enumerate(self.relation_weights):
            mask = edge_type == relation
            if not mask.any():
                continue
            src = edge_src[mask]
            dst = edge_dst[mask]
            messages = weight(states.index_select(src))
            aggregated = aggregated + scatter_add(messages, dst, num_nodes)
        scale = Tensor((1.0 / np.maximum(in_degree, 1.0))[:, None])
        return self.norm((aggregated * scale).relu() + states)


class PMM(Module):
    """The learned argument-mutation localizer."""

    def __init__(
        self,
        asm_vocab_size: int,
        num_syscalls: int,
        config: PMMConfig | None = None,
        asm_encoder: AsmEncoder | None = None,
    ):
        # Decision threshold for MUTATE; calibrated on validation F1 by
        # the trainer (§5.1's hyperparameter selection).
        self.decision_threshold = 0.5
        self.config = config or PMMConfig()
        cfg = self.config
        rng = np.random.Generator(np.random.PCG64(cfg.seed))
        dim = cfg.dim
        self.asm_encoder = asm_encoder or AsmEncoder(
            asm_vocab_size, dim, cfg.asm_heads, cfg.asm_layers, rng
        )
        if self.asm_encoder.dim != dim:
            raise ModelError(
                f"assembly encoder dim {self.asm_encoder.dim} != model dim {dim}"
            )
        self.kind_embedding = Embedding(_NUM_NODE_KINDS, dim, rng)
        self.syscall_embedding = Embedding(num_syscalls, dim, rng)
        self.arg_kind_embedding = Embedding(_NUM_ARG_KINDS, dim, rng)
        self.target_marker = Tensor(
            normal_init(rng, (dim,), std=0.1), requires_grad=True
        )
        self.gnn_layers = [
            RelationalGNNLayer(dim, NUM_EDGE_TYPES, rng)
            for _ in range(cfg.gnn_layers)
        ]
        # Target-attention readout.
        self.query_proj = Linear(dim, dim, rng)
        self.key_proj = Linear(dim, dim, rng)
        self.value_proj = Linear(dim, dim, rng)
        self.score_hidden = Linear(2 * dim, cfg.readout_hidden, rng)
        self.score_out = Linear(cfg.readout_hidden, 1, rng)

    # ----- forward -----

    def node_states(self, graph: EncodedGraph) -> Tensor:
        """Initial node features + GNN message passing."""
        block_rows = np.flatnonzero(graph.node_kind >= 2)
        states = self.kind_embedding(graph.node_kind)
        states = states + self.syscall_embedding(graph.syscall_id)
        states = states + self.arg_kind_embedding(graph.arg_kind_id)
        states = states + self._slot_vectors(graph.slot)
        if len(block_rows):
            block_embeddings = self.asm_encoder(graph.asm_tokens[block_rows])
            expanded = scatter_add(block_embeddings, block_rows, graph.num_nodes)
            states = states + expanded
        states = states + Tensor(graph.target_flag[:, None]) * self.target_marker
        in_degree = np.bincount(graph.edge_dst, minlength=graph.num_nodes).astype(
            np.float64
        )
        for layer in self.gnn_layers:
            states = layer(
                states, graph.edge_src, graph.edge_dst, graph.edge_type,
                graph.num_nodes, in_degree,
            )
        return states

    def _slot_vectors(self, slots: np.ndarray) -> Tensor:
        """Argument-slot embeddings, weight-tied to the assembly token
        table's ``off_*`` rows.

        In a compiled kernel the "slot" of an argument *is* the memory
        offset the handler's compare instructions reference textually, so
        the same vector representing the token ``off_03f2`` in a block's
        assembly also represents an argument living at that offset.
        Tying the tables lets a single learned matching pattern cover all
        slots instead of requiring per-slot co-occurrence data.  Encoded
        slots are stored shifted by +1 (0 = none); ``off_s`` sits at
        vocab row 3 + s (after <pad>/<unk>/<mask>), hence the +2 below.
        Slot 0 ("none") maps to the <pad> row, which is near-constant.
        """
        vocab_rows = np.where(slots > 0, slots + 2, 0)
        return self.asm_encoder.token_embedding(vocab_rows)

    def forward(self, graph: EncodedGraph) -> Tensor:
        """MUTATE logits for the mutable argument nodes ([A] tensor,
        ordered as ``np.flatnonzero(graph.arg_mask)``)."""
        states = self.node_states(graph)
        arg_rows = np.flatnonzero(graph.arg_mask)
        if len(arg_rows) == 0:
            raise ModelError("graph has no mutable argument nodes")
        arg_states = states.index_select(arg_rows)
        context = self._target_context(graph, states, arg_states)
        combined = concat([arg_states, context], axis=-1)
        hidden = self.score_hidden(combined).relu()
        return self.score_out(hidden).reshape(-1)

    def _target_context(
        self, graph: EncodedGraph, states: Tensor, arg_states: Tensor
    ) -> Tensor:
        """Token-level attention of argument nodes over the target code.

        Keys/values are the raw assembly-token embeddings of the target
        blocks *and* of the condition blocks guarding them (the sources
        of uncovered edges into targets) — where the compare instruction
        referencing the steering argument's slot lives.  Because the
        token table is weight-tied with the argument slot embedding, a
        single learned query/key pattern suffices to match any argument
        against the offset its branch tests, independent of how often
        that particular slot appeared in training.
        """
        target_rows = np.flatnonzero(graph.target_flag > 0)
        if len(target_rows) == 0:
            target_rows = np.flatnonzero(graph.node_kind == 3)
        if len(target_rows) == 0:
            return arg_states * 0.0
        key_rows = self._context_rows(graph, target_rows)
        tokens = graph.asm_tokens[key_rows].reshape(-1)  # [T*L]
        pad_mask = tokens != 0
        if not pad_mask.any():
            return arg_states * 0.0
        token_states = self.asm_encoder.token_embedding(tokens)
        queries = self.query_proj(arg_states)            # [A, d]
        keys = self.key_proj(token_states)               # [T*L, d]
        values = self.value_proj(token_states)           # [T*L, d]
        scale = 1.0 / np.sqrt(queries.shape[-1])
        scores = (queries @ keys.transpose()) * scale
        bias = np.where(pad_mask, 0.0, -1e9)[None, :]
        attention = (scores + Tensor(bias)).softmax(axis=-1)
        return attention @ values

    @staticmethod
    def _context_rows(
        graph: EncodedGraph, target_rows: np.ndarray
    ) -> np.ndarray:
        """Targets plus the condition blocks guarding them."""
        from repro.graphs.encode import _EDGE_KIND_IDS
        from repro.graphs.schema import EdgeKind

        uncovered = _EDGE_KIND_IDS[EdgeKind.UNCOVERED_FLOW]
        mask = graph.edge_type == uncovered
        into_targets = np.isin(graph.edge_dst[mask], target_rows)
        guard_rows = graph.edge_src[mask][into_targets]
        return np.unique(np.concatenate([target_rows, guard_rows]))

    # ----- inference -----

    def predict_paths(
        self, graph: EncodedGraph, threshold: float | None = None
    ) -> list:
        """Argument paths predicted MUTATE (decoded from arg_mask rows)."""
        from repro.nn.tensor import no_grad

        if threshold is None:
            threshold = self.decision_threshold
        with no_grad():
            logits = self.forward(graph)
        probabilities = 1.0 / (1.0 + np.exp(-logits.data))
        arg_rows = np.flatnonzero(graph.arg_mask)
        order = np.argsort(-probabilities)
        selected = []
        for rank in order:
            row = arg_rows[int(rank)]
            if (
                probabilities[int(rank)] >= threshold
                and graph.arg_paths[row] is not None
            ):
                selected.append(graph.arg_paths[row])
        if not selected:
            # Always return the single most likely argument; an empty
            # localization would stall the mutation engine.
            best = arg_rows[int(order[0])]
            if graph.arg_paths[best] is not None:
                selected.append(graph.arg_paths[best])
        return selected

    def loss(self, graph: EncodedGraph) -> Tensor:
        """Weighted BCE over the mutable argument nodes (§3.3)."""
        if graph.labels is None:
            raise ModelError("graph was encoded without labels")
        logits = self.forward(graph)
        arg_rows = np.flatnonzero(graph.arg_mask)
        targets = graph.labels[arg_rows]
        weights = np.where(targets > 0, self.config.positive_weight, 1.0)
        return logits.bce_with_logits(targets, weights)
