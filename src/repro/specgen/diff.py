"""Fidelity scoring: inferred tables vs. the ground-truth stdlib.

Pure functions of the two tables — no RNG, no execution — so the same
pair always produces byte-identical reports.  Three paper-style metrics:

- **argument-kind accuracy**: per aligned argument index, does the
  inferred coarse kind match the ground truth?  Length fields and
  const args are fundamentally unrecoverable from branch evidence
  (they read as plain ints / are invisible), so this sits below 1.0
  by construction and measures exactly that gap.
- **flag-domain recall**: of the flag bits declared at ground-truth
  flag leaves, how many did inference recover at the same flattened
  path?  Only bits the kernel branches on are recoverable.
- **resource-edge precision/recall**: producer→consumer syscall pairs
  implied by each table's resource kinds, compared as edge sets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.syzlang.spec import SyscallSpec, SyscallTable
from repro.syzlang.types import ArgKind, FlagsType

__all__ = [
    "TableFidelity",
    "diff_tables",
    "fidelity_json",
    "resource_edges",
]


@dataclass(frozen=True)
class TableFidelity:
    """Fidelity of one inferred table against one ground-truth table."""

    version: str
    truth_syscalls: int
    inferred_syscalls: int
    matched_syscalls: int
    args_total: int
    args_matched: int
    flag_bits_total: int
    flag_bits_recovered: int
    truth_edges: int
    inferred_edges: int
    edge_intersection: int

    @property
    def syscall_coverage(self) -> float:
        return _ratio(self.matched_syscalls, self.truth_syscalls)

    @property
    def kind_accuracy(self) -> float:
        return _ratio(self.args_matched, self.args_total)

    @property
    def flag_recall(self) -> float:
        return _ratio(self.flag_bits_recovered, self.flag_bits_total)

    @property
    def resource_precision(self) -> float:
        return _ratio(self.edge_intersection, self.inferred_edges)

    @property
    def resource_recall(self) -> float:
        return _ratio(self.edge_intersection, self.truth_edges)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "truth_syscalls": self.truth_syscalls,
            "inferred_syscalls": self.inferred_syscalls,
            "matched_syscalls": self.matched_syscalls,
            "syscall_coverage": round(self.syscall_coverage, 6),
            "args_total": self.args_total,
            "args_matched": self.args_matched,
            "kind_accuracy": round(self.kind_accuracy, 6),
            "flag_bits_total": self.flag_bits_total,
            "flag_bits_recovered": self.flag_bits_recovered,
            "flag_recall": round(self.flag_recall, 6),
            "truth_edges": self.truth_edges,
            "inferred_edges": self.inferred_edges,
            "edge_intersection": self.edge_intersection,
            "resource_precision": round(self.resource_precision, 6),
            "resource_recall": round(self.resource_recall, 6),
        }


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def resource_edges(table: SyscallTable) -> set[tuple[str, str]]:
    """(producer, consumer) syscall pairs the table's kinds permit."""
    edges: set[tuple[str, str]] = set()
    for consumer in table:
        for kind in consumer.consumes():
            for producer in table.producers_of(kind):
                edges.add((producer.full_name, consumer.full_name))
    return edges


def _flag_leaves(spec: SyscallSpec) -> dict[tuple[int, ...], FlagsType]:
    from repro.kernel.build import enumerate_type_paths

    return {
        path: leaf
        for path, leaf in enumerate_type_paths(spec)
        if isinstance(leaf, FlagsType)
    }


def _popcount(value: int) -> int:
    return bin(value).count("1")


def diff_tables(
    inferred: SyscallTable, truth: SyscallTable, version: str = ""
) -> TableFidelity:
    """Score ``inferred`` against ``truth`` (see module docstring)."""
    matched = 0
    args_total = 0
    args_matched = 0
    flag_bits_total = 0
    flag_bits_recovered = 0

    for truth_spec in truth:
        inferred_spec: SyscallSpec | None = None
        if truth_spec.full_name in inferred:
            inferred_spec = inferred.lookup(truth_spec.full_name)
            matched += 1

        args_total += truth_spec.arity
        if inferred_spec is not None:
            for index, (_, truth_ty) in enumerate(truth_spec.args):
                if index >= inferred_spec.arity:
                    continue
                inferred_ty = inferred_spec.args[index][1]
                if _kind_class(truth_ty.kind) == _kind_class(inferred_ty.kind):
                    args_matched += 1

        truth_flags = _flag_leaves(truth_spec)
        inferred_flags = (
            _flag_leaves(inferred_spec) if inferred_spec is not None else {}
        )
        for path, truth_leaf in truth_flags.items():
            truth_bits = truth_leaf.all_bits()
            flag_bits_total += _popcount(truth_bits)
            inferred_leaf = inferred_flags.get(path)
            if inferred_leaf is not None:
                flag_bits_recovered += _popcount(
                    truth_bits & inferred_leaf.all_bits()
                )

    truth_edge_set = resource_edges(truth)
    inferred_edge_set = resource_edges(inferred)

    return TableFidelity(
        version=version,
        truth_syscalls=len(truth),
        inferred_syscalls=len(inferred),
        matched_syscalls=matched,
        args_total=args_total,
        args_matched=args_matched,
        flag_bits_total=flag_bits_total,
        flag_bits_recovered=flag_bits_recovered,
        truth_edges=len(truth_edge_set),
        inferred_edges=len(inferred_edge_set),
        edge_intersection=len(truth_edge_set & inferred_edge_set),
    )


def _kind_class(kind: ArgKind) -> str:
    """Coarse comparison classes; buffer flavours collapse together."""
    if kind in (ArgKind.BUFFER, ArgKind.STRING, ArgKind.FILENAME):
        return "buffer"
    return kind.value


def fidelity_json(fidelities: list[TableFidelity], **context) -> str:
    """Canonical per-release fidelity report (byte-stable)."""
    payload = {
        "context": dict(sorted(context.items())),
        "releases": [fid.to_dict() for fid in fidelities],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
