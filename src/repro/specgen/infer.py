"""Static spec inference: recover syzlang from the kernel's CFGs.

This is the repro-scale analogue of KernelGPT / syzdescriptor: given
*only* a built kernel (handler CFGs, branch conditions, state effects —
never the ground-truth :class:`~repro.syzlang.spec.SyscallTable` the
builder consumed), reconstruct a table good enough to fuzz with.

What the CFG gives away, and how we read it:

- **Arity and shapes.**  Every :class:`ArgCondition` embeds the flattened
  path of the slot it tests (the compiled-kernel property that a branch
  textually references the offset it loads).  The union of observed
  paths per handler is a path trie; interior nodes become structs,
  top-level compound args become pointers (the calling convention for
  compound arguments), leaves become scalars.
- **Scalar domains.**  EQ/NE/LT/GT operands are the constants the kernel
  actually compares against — they become ``IntType.interesting`` and
  pin the inferred width.  MASK_SET/MASK_CLEAR operands are flag bits —
  the leaf becomes a :class:`FlagsType` whose domain is exactly the
  branched-on bits.
- **Resources.**  Handlers guard resource args with a dedicated
  ``GT 0`` condition in an ``:fdget`` block before any other branch;
  those top-level paths become :class:`ResourceType` args.  Producers
  are recovered lexically (``open``/``socket``/``create``/... — the
  KernelGPT-style naming prior), and :class:`StateCondition` def-use
  chains (``subsystem:producer:done`` keys resolved through the PR-5
  dependency oracle) corroborate which subsystems actually share
  state, yielding one inferred resource kind per subsystem that has
  both a producer and a guarded consumer, all parented on a generic
  kind so cross-subsystem consumers still wire.

What is *fundamentally* ambiguous (scored by :mod:`repro.specgen.diff`
and discussed in DESIGN.md): buffers vs. opaque pointers (conditions
only ever see a buffer's length), length fields vs. plain ints, const
args (never branched on, hence invisible), and the exact resource
taxonomy beyond subsystem granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyze.deps import DependencyOracle
from repro.kernel.build import Kernel
from repro.kernel.conditions import ArgCondition, CondOp, StateCondition
from repro.syzlang.spec import SyscallSpec, SyscallTable
from repro.syzlang.types import (
    FlagsType,
    IntType,
    PtrType,
    ResourceKind,
    ResourceType,
    StructType,
    Type,
)

__all__ = [
    "GENERIC_RESOURCE",
    "InferenceReport",
    "PRODUCER_LEXEMES",
    "infer_specs",
    "infer_table",
]

# The root of the inferred resource hierarchy; plays the role stdlib's
# ``fd`` plays in the ground truth.
GENERIC_RESOURCE = ResourceKind("res")

# Lexical producer prior: base names containing one of these lexemes are
# assumed to return a handle (KernelGPT's "creation function" heuristic).
PRODUCER_LEXEMES = ("open", "socket", "dup", "pipe", "create", "setup", "accept")

_MAX_INTERESTING = 16


@dataclass
class InferenceReport:
    """Aggregate inference-quality numbers for one kernel.

    ``state_edges`` are (producer_syscall, consumer_syscall) pairs
    recovered from :class:`StateCondition` keys — the def-use relation
    the resource-kind grouping rests on.
    """

    version: str
    syscalls: int = 0
    args_total: int = 0
    resource_args: int = 0
    flag_leaves: int = 0
    flag_bits: int = 0
    int_leaves: int = 0
    interesting_values: int = 0
    struct_nodes: int = 0
    opaque_args: int = 0
    producers: int = 0
    state_edges: set = field(default_factory=set)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "syscalls": self.syscalls,
            "args_total": self.args_total,
            "resource_args": self.resource_args,
            "flag_leaves": self.flag_leaves,
            "flag_bits": self.flag_bits,
            "int_leaves": self.int_leaves,
            "interesting_values": self.interesting_values,
            "struct_nodes": self.struct_nodes,
            "opaque_args": self.opaque_args,
            "producers": self.producers,
            "state_edges": len(self.state_edges),
        }

    def export_gauges(self, observer, prefix: str = "specgen") -> None:
        """Publish inference-quality gauges to an observer registry."""
        registry = observer.registry
        for key, value in self.to_dict().items():
            if key == "version":
                continue
            registry.gauge(f"{prefix}.{key}").set(value)


class _TrieNode:
    """One node of the observed-path trie of a single argument."""

    __slots__ = ("children", "evidence")

    def __init__(self) -> None:
        self.children: dict[int, _TrieNode] = {}
        self.evidence: list[tuple[CondOp, int]] = []

    def child(self, index: int) -> "_TrieNode":
        node = self.children.get(index)
        if node is None:
            node = _TrieNode()
            self.children[index] = node
        return node


def _split_full_name(full_name: str) -> tuple[str, str]:
    if "$" in full_name:
        name, variant = full_name.split("$", 1)
        return name, variant
    return full_name, ""


def _sanitize(token: str) -> str:
    return token.replace("$", "_").replace(".", "_")


def _int_bits(bound: int) -> int:
    for bits in (8, 16, 32, 64):
        if bound < (1 << bits):
            return bits
    return 64


def _leaf_from_evidence(
    evidence: list[tuple[CondOp, int]], report: InferenceReport
) -> Type:
    """Type one scalar leaf from the (op, operand) pairs branching on it."""
    mask_operands = [
        operand
        for op, operand in evidence
        if op in (CondOp.MASK_SET, CondOp.MASK_CLEAR) and operand > 0
    ]
    if mask_operands:
        union = 0
        for operand in mask_operands:
            union |= operand
        bits = tuple(
            1 << position for position in range(64) if (union >> position) & 1
        )
        flags = tuple((f"BIT_{bit:X}", bit) for bit in bits)
        report.flag_leaves += 1
        report.flag_bits += len(bits)
        return FlagsType(flags=flags, bits=64 if union >= (1 << 32) else 32)

    interesting: set[int] = {0}
    bound = 1
    for op, operand in evidence:
        bound = max(bound, operand + 1)
        if op in (CondOp.EQ, CondOp.NE):
            interesting.add(operand)
        elif op is CondOp.GT:
            interesting.add(operand)
            interesting.add(operand + 1)
        elif op is CondOp.LT:
            interesting.add(max(operand - 1, 0))
        elif op is CondOp.MASK_CLEAR:
            interesting.add(0)
    values = tuple(sorted(interesting))[:_MAX_INTERESTING]
    report.int_leaves += 1
    report.interesting_values += len(values)
    return IntType(bits=_int_bits(bound), interesting=values)


def _opaque_scalar() -> IntType:
    """Placeholder for slots the kernel never branches on."""
    return IntType(bits=64)


def _node_type(
    node: _TrieNode, name_base: str, report: InferenceReport
) -> Type:
    """An interior trie node becomes a struct; a leaf becomes a scalar.

    Interior structs always index children directly, so the inferred
    value tree flattens to exactly the observed condition paths —
    regardless of whether the ground truth used a pointer, an array, or
    a nested struct at that position (those shapes are observationally
    equivalent through flattened slots; see DESIGN.md).
    """
    if node.children:
        width = max(node.children) + 1
        fields: list[tuple[str, Type]] = []
        for index in range(width):
            child = node.children.get(index)
            if child is None:
                fields.append((f"f{index}", _opaque_scalar()))
            else:
                fields.append(
                    (f"f{index}", _node_type(child, f"{name_base}_{index}", report))
                )
        report.struct_nodes += 1
        return StructType(name=name_base, fields=tuple(fields))
    if node.evidence:
        return _leaf_from_evidence(node.evidence, report)
    return _opaque_scalar()


def _handler_evidence(
    kernel: Kernel, full_name: str
) -> tuple[set[tuple[int, ...]], dict[tuple[int, ...], list[tuple[CondOp, int]]], set[str]]:
    """Scan one handler CFG: guard paths, scalar evidence, state keys."""
    cfg = kernel.handlers[full_name]
    guards: set[tuple[int, ...]] = set()
    evidence: dict[tuple[int, ...], list[tuple[CondOp, int]]] = {}
    state_keys: set[str] = set()
    for block_id in sorted(cfg.blocks):
        block = cfg.blocks[block_id]
        condition = block.condition
        if isinstance(condition, StateCondition):
            state_keys.add(condition.key)
            continue
        if not isinstance(condition, ArgCondition):
            continue
        if condition.syscall != full_name:
            continue
        path = condition.path_elements
        is_guard = (
            block.label.endswith(":fdget")
            and len(path) == 1
            and condition.op is CondOp.GT
            and condition.operand == 0
        )
        if is_guard:
            guards.add(path)
        else:
            evidence.setdefault(path, []).append(
                (condition.op, condition.operand)
            )
    return guards, evidence, state_keys


def _is_producer(full_name: str) -> bool:
    base, _ = _split_full_name(full_name)
    return any(lexeme in base for lexeme in PRODUCER_LEXEMES)


def infer_specs(
    kernel: Kernel,
    oracle: DependencyOracle | None = None,
    observer=None,
) -> tuple[SyscallTable, InferenceReport]:
    """Infer a :class:`SyscallTable` from ``kernel``'s CFGs alone.

    ``oracle`` (built on demand) resolves state-condition def-use chains
    so the report's producer/consumer edges only include flags some
    effect block actually writes.  Returns the table plus an
    :class:`InferenceReport`; with ``observer`` set, the report is also
    published as ``specgen.*`` gauges.
    """
    if oracle is None:
        oracle = DependencyOracle(kernel)
    report = InferenceReport(version=kernel.version)

    handlers = sorted(kernel.handlers)
    subsystem_of: dict[str, str] = {}
    guards_of: dict[str, set[tuple[int, ...]]] = {}
    evidence_of: dict[str, dict[tuple[int, ...], list[tuple[CondOp, int]]]] = {}
    for full_name in handlers:
        cfg = kernel.handlers[full_name]
        subsystem_of[full_name] = cfg.blocks[cfg.entry].subsystem
        guards, evidence, state_keys = _handler_evidence(kernel, full_name)
        guards_of[full_name] = guards
        evidence_of[full_name] = evidence
        # State keys follow the `{subsystem}:{producer}:done` convention;
        # chase them through the oracle so only keys with live effect
        # writers become producer->consumer edges.
        for key in sorted(state_keys):
            if not oracle.effect_writers(key):
                continue
            parts = key.split(":")
            if len(parts) >= 3 and parts[-1] == "done":
                producer = ":".join(parts[1:-1])
                if producer != full_name:
                    report.state_edges.add((producer, full_name))

    # Resource kinds: one per subsystem with a lexical producer, rooted
    # on the generic kind so consumers in producer-less subsystems
    # (mm, ext4, watch_queue, ...) still wire to *some* handle source.
    producer_subsystems = {
        subsystem_of[full_name]
        for full_name in handlers
        if _is_producer(full_name)
    }
    kinds = {
        subsystem: ResourceKind(_sanitize(subsystem), parent=GENERIC_RESOURCE)
        for subsystem in sorted(producer_subsystems)
    }

    specs: list[SyscallSpec] = []
    for full_name in handlers:
        name, variant = _split_full_name(full_name)
        subsystem = subsystem_of[full_name]
        guards = guards_of[full_name]
        evidence = evidence_of[full_name]
        kind = kinds.get(subsystem, GENERIC_RESOURCE)

        observed = [path[0] for path in guards] + [
            path[0] for path in evidence
        ]
        arity = (max(observed) + 1) if observed else 0

        tries: dict[int, _TrieNode] = {}
        for path, pairs in sorted(evidence.items()):
            node = tries.setdefault(path[0], _TrieNode())
            for element in path[1:]:
                node = node.child(element)
            node.evidence.extend(pairs)

        args: list[tuple[str, Type]] = []
        for index in range(arity):
            if (index,) in guards:
                args.append((f"res{index}", ResourceType(kind)))
                report.resource_args += 1
                continue
            node = tries.get(index)
            if node is None:
                args.append((f"a{index}", _opaque_scalar()))
                report.opaque_args += 1
                continue
            if node.children:
                # Compound argument: the calling convention passes
                # compounds by pointer, so the first deref level is a
                # ptr; everything deeper is modelled as structs.
                base = f"s_{_sanitize(full_name)}_{index}"
                if set(node.children) == {0}:
                    elem = _node_type(node.children[0], base, report)
                else:
                    elem = _node_type(node, base, report)
                args.append((f"a{index}", PtrType(elem)))
            else:
                args.append((f"a{index}", _leaf_from_evidence(node.evidence, report)))

        produces = kind if _is_producer(full_name) else None
        if produces is not None:
            report.producers += 1
        specs.append(
            SyscallSpec(
                name=name,
                args=tuple(args),
                variant=variant,
                produces=produces,
                subsystem=subsystem,
            )
        )
        report.syscalls += 1
        report.args_total += arity

    table = SyscallTable(specs)
    if observer is not None:
        report.export_gauges(observer)
    return table, report


def infer_table(
    kernel: Kernel,
    oracle: DependencyOracle | None = None,
    observer=None,
) -> SyscallTable:
    """Just the inferred table (see :func:`infer_specs`)."""
    table, _ = infer_specs(kernel, oracle=oracle, observer=observer)
    return table
