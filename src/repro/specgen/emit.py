"""Serialize syscall tables to syzlang-style text, and parse it back.

The format is line-oriented and self-describing — resource declarations
first (parents before children), then one syscall per line::

    # repro syzlang table v1
    resource res
    resource scsi : res
    open$scsi(a0 : ptr[in, int[8]], a1 : flags[BIT_40=0x40, 32]) -> scsi @scsi
    ioctl$SCSI_IOCTL_SEND_COMMAND(res0 : res[scsi], ...) @scsi

Every type constructor the repro type system knows is covered (not just
the subset inference produces), so the same emitter renders ground-truth
stdlib tables for diff artifacts.  The grammar is designed for lossless
structural round-trips: ``parse_table(serialize_table(t)) == t`` holds
for any table built from the :mod:`repro.syzlang.types` constructors,
because all frozen type dataclasses compare structurally and every
non-default field is emitted explicitly.
"""

from __future__ import annotations

import string as _string

from repro.errors import ParseError, SpecError
from repro.syzlang.spec import SyscallSpec, SyscallTable
from repro.syzlang.types import (
    ArrayType,
    BufferKind,
    BufferType,
    ConstType,
    Direction,
    FlagsType,
    IntType,
    LenType,
    PtrType,
    ResourceKind,
    ResourceType,
    StructType,
    Type,
)

__all__ = ["TABLE_HEADER", "parse_table", "serialize_table"]

TABLE_HEADER = "# repro syzlang table v1"


# --------------------------------------------------------------------
# Serialization
# --------------------------------------------------------------------


def _collect_kinds(table: SyscallTable) -> list[ResourceKind]:
    """All resource kinds a table references, parents before children."""
    seen: dict[str, ResourceKind] = {}

    def add(kind: ResourceKind) -> None:
        if kind.parent is not None:
            add(kind.parent)
        if kind.name in seen:
            if seen[kind.name] != kind:
                raise SpecError(
                    f"conflicting resource kinds named {kind.name!r}"
                )
            return
        seen[kind.name] = kind

    def walk(ty: Type) -> None:
        if isinstance(ty, ResourceType):
            add(ty.resource)
        elif isinstance(ty, PtrType):
            walk(ty.elem)
        elif isinstance(ty, StructType):
            for _, field_ty in ty.fields:
                walk(field_ty)
        elif isinstance(ty, ArrayType):
            walk(ty.elem)

    for spec in table:
        if spec.produces is not None:
            add(spec.produces)
        for _, arg_ty in spec.args:
            walk(arg_ty)

    ordered: list[ResourceKind] = []
    emitted: set[str] = set()

    def emit(kind: ResourceKind) -> None:
        if kind.name in emitted:
            return
        if kind.parent is not None:
            emit(kind.parent)
        emitted.add(kind.name)
        ordered.append(kind)

    for name in sorted(seen):
        emit(seen[name])
    return ordered


def _hex(value: int) -> str:
    return f"0x{value:x}"


def _serialize_type(ty: Type) -> str:
    if isinstance(ty, IntType):
        parts = [str(ty.bits)]
        if ty.minimum != 0:
            parts.append(f"min={_hex(ty.minimum)}")
        if ty.maximum is not None:
            parts.append(f"max={_hex(ty.maximum)}")
        if ty.align != 1:
            parts.append(f"align={_hex(ty.align)}")
        if ty.interesting:
            parts.append(
                "interesting=" + "|".join(_hex(v) for v in ty.interesting)
            )
        return f"int[{', '.join(parts)}]"
    if isinstance(ty, FlagsType):
        flags = "|".join(f"{name}={_hex(value)}" for name, value in ty.flags)
        return f"flags[{flags}, {ty.bits}]"
    if isinstance(ty, ConstType):
        return f"const[{_hex(ty.value)}, {ty.bits}]"
    if isinstance(ty, LenType):
        return f"len[{ty.path}, {ty.bits}]"
    if isinstance(ty, BufferType):
        parts = [
            ty.buffer_kind.value,
            _hex(ty.min_len),
            _hex(ty.max_len),
        ]
        if ty.values:
            for value in ty.values:
                if not value:
                    raise SpecError("cannot serialize an empty buffer value")
            parts.append("values=" + "|".join(v.hex() for v in ty.values))
        return f"buffer[{', '.join(parts)}]"
    if isinstance(ty, PtrType):
        parts = [ty.direction.value]
        if ty.optional:
            parts.append("opt")
        parts.append(_serialize_type(ty.elem))
        return f"ptr[{', '.join(parts)}]"
    if isinstance(ty, StructType):
        fields = ", ".join(
            f"{name} : {_serialize_type(field_ty)}"
            for name, field_ty in ty.fields
        )
        return f"struct {ty.name} {{{fields}}}"
    if isinstance(ty, ArrayType):
        return (
            f"array[{_serialize_type(ty.elem)}, "
            f"{_hex(ty.min_len)}, {_hex(ty.max_len)}]"
        )
    if isinstance(ty, ResourceType):
        return f"res[{ty.resource.name}]"
    raise SpecError(f"cannot serialize type {ty!r}")


def serialize_table(table: SyscallTable, comment: str = "") -> str:
    """Render ``table`` as syzlang-style text (see module docstring)."""
    lines = [TABLE_HEADER]
    if comment:
        for raw in comment.splitlines():
            lines.append(f"# {raw}")
    for kind in _collect_kinds(table):
        if kind.parent is None:
            lines.append(f"resource {kind.name}")
        else:
            lines.append(f"resource {kind.name} : {kind.parent.name}")
    for spec in table:
        args = ", ".join(
            f"{name} : {_serialize_type(arg_ty)}" for name, arg_ty in spec.args
        )
        line = f"{spec.full_name}({args})"
        if spec.produces is not None:
            line += f" -> {spec.produces.name}"
        line += f" @{spec.subsystem}"
        lines.append(line)
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------


class _Cursor:
    """A scanning cursor over one table line (parser.py idiom)."""

    def __init__(self, text: str, line: int):
        self.text = text
        self.pos = 0
        self.line = line

    def error(self, message: str) -> ParseError:
        return ParseError(f"{message} (at column {self.pos})", self.line)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_spaces(self) -> None:
        while self.peek() == " ":
            self.pos += 1

    def expect(self, char: str) -> None:
        self.skip_spaces()
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def try_consume(self, char: str) -> bool:
        self.skip_spaces()
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    def ident(self) -> str:
        self.skip_spaces()
        start = self.pos
        while self.peek() and (self.peek().isalnum() or self.peek() in "_$"):
            self.pos += 1
        if start == self.pos:
            raise self.error("expected an identifier")
        return self.text[start : self.pos]

    def number(self) -> int:
        self.skip_spaces()
        start = self.pos
        if self.text.startswith("0x", self.pos):
            self.pos += 2
            while self.peek() in _string.hexdigits:
                self.pos += 1
            if self.pos == start + 2:
                raise self.error("expected hex digits after 0x")
            return int(self.text[start + 2 : self.pos], 16)
        while self.peek().isdigit():
            self.pos += 1
        if start == self.pos:
            raise self.error("expected a number")
        return int(self.text[start : self.pos])

    def hex_bytes(self) -> bytes:
        self.skip_spaces()
        start = self.pos
        while self.peek() and self.peek() in _string.hexdigits:
            self.pos += 1
        literal = self.text[start : self.pos]
        if not literal or len(literal) % 2:
            raise self.error("expected an even-length hex byte string")
        return bytes.fromhex(literal)

    def at_end(self) -> bool:
        self.skip_spaces()
        return self.pos >= len(self.text)


def _parse_type(cursor: _Cursor, kinds: dict[str, ResourceKind]) -> Type:
    head = cursor.ident()
    if head == "int":
        cursor.expect("[")
        bits = cursor.number()
        minimum, maximum, align = 0, None, 1
        interesting: tuple[int, ...] = ()
        while cursor.try_consume(","):
            key = cursor.ident()
            cursor.expect("=")
            if key == "min":
                minimum = cursor.number()
            elif key == "max":
                maximum = cursor.number()
            elif key == "align":
                align = cursor.number()
            elif key == "interesting":
                values = [cursor.number()]
                while cursor.try_consume("|"):
                    values.append(cursor.number())
                interesting = tuple(values)
            else:
                raise cursor.error(f"unknown int attribute {key!r}")
        cursor.expect("]")
        return IntType(
            bits=bits, minimum=minimum, maximum=maximum, align=align,
            interesting=interesting,
        )
    if head == "flags":
        cursor.expect("[")
        flags = []
        while True:
            name = cursor.ident()
            cursor.expect("=")
            flags.append((name, cursor.number()))
            if not cursor.try_consume("|"):
                break
        cursor.expect(",")
        bits = cursor.number()
        cursor.expect("]")
        return FlagsType(flags=tuple(flags), bits=bits)
    if head == "const":
        cursor.expect("[")
        value = cursor.number()
        cursor.expect(",")
        bits = cursor.number()
        cursor.expect("]")
        return ConstType(value, bits=bits)
    if head == "len":
        cursor.expect("[")
        path = cursor.ident()
        cursor.expect(",")
        bits = cursor.number()
        cursor.expect("]")
        return LenType(path=path, bits=bits)
    if head == "buffer":
        cursor.expect("[")
        kind_name = cursor.ident()
        try:
            buffer_kind = BufferKind(kind_name)
        except ValueError:
            raise cursor.error(f"unknown buffer kind {kind_name!r}") from None
        cursor.expect(",")
        min_len = cursor.number()
        cursor.expect(",")
        max_len = cursor.number()
        values: tuple[bytes, ...] = ()
        if cursor.try_consume(","):
            key = cursor.ident()
            if key != "values":
                raise cursor.error(f"unknown buffer attribute {key!r}")
            cursor.expect("=")
            collected = [cursor.hex_bytes()]
            while cursor.try_consume("|"):
                collected.append(cursor.hex_bytes())
            values = tuple(collected)
        cursor.expect("]")
        return BufferType(
            buffer_kind=buffer_kind, min_len=min_len, max_len=max_len,
            values=values,
        )
    if head == "ptr":
        cursor.expect("[")
        direction = Direction(cursor.ident())
        cursor.expect(",")
        optional = False
        mark = cursor.pos
        probe = cursor.ident()
        if probe == "opt":
            optional = True
            cursor.expect(",")
        else:
            cursor.pos = mark
        elem = _parse_type(cursor, kinds)
        cursor.expect("]")
        return PtrType(elem=elem, direction=direction, optional=optional)
    if head == "struct":
        name = cursor.ident()
        cursor.expect("{")
        fields = []
        while True:
            field_name = cursor.ident()
            cursor.expect(":")
            fields.append((field_name, _parse_type(cursor, kinds)))
            if not cursor.try_consume(","):
                break
        cursor.expect("}")
        return StructType(name=name, fields=tuple(fields))
    if head == "array":
        cursor.expect("[")
        elem = _parse_type(cursor, kinds)
        cursor.expect(",")
        min_len = cursor.number()
        cursor.expect(",")
        max_len = cursor.number()
        cursor.expect("]")
        return ArrayType(elem=elem, min_len=min_len, max_len=max_len)
    if head == "res":
        cursor.expect("[")
        kind_name = cursor.ident()
        cursor.expect("]")
        kind = kinds.get(kind_name)
        if kind is None:
            raise cursor.error(f"undeclared resource kind {kind_name!r}")
        return ResourceType(kind)
    raise cursor.error(f"unknown type constructor {head!r}")


def parse_table(text: str) -> SyscallTable:
    """Parse syzlang-style table ``text`` back into a :class:`SyscallTable`."""
    kinds: dict[str, ResourceKind] = {}
    specs: list[SyscallSpec] = []
    line_number = 0
    for raw_line in text.splitlines():
        line_number += 1
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        cursor = _Cursor(line, line_number)
        if line.startswith("resource "):
            cursor.pos = len("resource ")
            name = cursor.ident()
            parent: ResourceKind | None = None
            if cursor.try_consume(":"):
                parent_name = cursor.ident()
                parent = kinds.get(parent_name)
                if parent is None:
                    raise cursor.error(
                        f"parent resource {parent_name!r} not yet declared"
                    )
            if name in kinds:
                raise cursor.error(f"duplicate resource {name!r}")
            kinds[name] = ResourceKind(name, parent=parent)
            if not cursor.at_end():
                raise cursor.error("trailing characters after resource")
            continue
        full_name = cursor.ident()
        cursor.expect("(")
        args: list[tuple[str, Type]] = []
        if not cursor.try_consume(")"):
            while True:
                arg_name = cursor.ident()
                cursor.expect(":")
                args.append((arg_name, _parse_type(cursor, kinds)))
                if cursor.try_consume(")"):
                    break
                cursor.expect(",")
        produces: ResourceKind | None = None
        cursor.skip_spaces()
        if cursor.peek() == "-":
            cursor.expect("-")
            cursor.expect(">")
            kind_name = cursor.ident()
            produces = kinds.get(kind_name)
            if produces is None:
                raise cursor.error(
                    f"undeclared produced resource {kind_name!r}"
                )
        cursor.expect("@")
        subsystem = cursor.ident()
        if not cursor.at_end():
            raise cursor.error("trailing characters after syscall")
        name, variant = (
            full_name.split("$", 1) if "$" in full_name else (full_name, "")
        )
        specs.append(
            SyscallSpec(
                name=name,
                args=tuple(args),
                variant=variant,
                produces=produces,
                subsystem=subsystem,
            )
        )
    return SyscallTable(specs)
