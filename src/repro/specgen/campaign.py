"""The spec-inference evaluation campaign: inferred vs. ground truth.

For each kernel release, build the kernel, infer a table from its CFGs,
then run two *identically seeded* baseline fuzzing campaigns against the
same kernel — one generating programs from the ground-truth table, one
from the inferred table.  The executor dispatches on syscall full names
and resolves handles at runtime, so programs built from the inferred
table drive the unmodified ground-truth kernel; the only difference
between the two runs is the spec knowledge the generator/mutator has.
The coverage ratio (inferred final edges / truth final edges) is the
headline number: how much fuzzing power survives losing the hand-written
descriptions.

Everything derives from one campaign seed, so the whole evaluation —
fidelity scores *and* coverage/bug gaps — replays bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.kernel import build_kernel
from repro.kernel.build import Kernel
from repro.rng import derive_seed
from repro.snowplow.campaign import build_fuzz_loop, fuzz_campaign_config
from repro.specgen.diff import TableFidelity, diff_tables
from repro.specgen.infer import InferenceReport, infer_specs
from repro.syzlang.spec import SyscallTable
from repro.syzlang.stdlib import KNOWN_VERSIONS, build_standard_table

__all__ = [
    "SpecgenCampaignResult",
    "SpecgenRunResult",
    "kernel_with_table",
    "run_specgen_campaign",
    "specgen_run_seed",
]


def kernel_with_table(kernel: Kernel, table: SyscallTable) -> Kernel:
    """A view of ``kernel`` that fuzzes under a different syscall table.

    Handlers, blocks, bugs, and the precomputed CFG maps are shared (the
    kernel itself is unchanged); only the table the program generator
    and mutation engine consult is swapped.  Requires the table's full
    names to match the handler names, which inferred tables satisfy by
    construction.
    """
    return Kernel(
        version=kernel.version,
        table=table,
        handlers=kernel.handlers,
        blocks=kernel.blocks,
        bugs=kernel.bugs,
        bug_blocks=kernel.bug_blocks,
        interrupt_trace=kernel.interrupt_trace,
        handler_of_block=kernel.handler_of_block,
        succs=kernel.succs,
        preds=kernel.preds,
    )


def specgen_run_seed(seed: int, version: str) -> int:
    """The per-release run-seed derivation of the specgen campaign."""
    return derive_seed(seed, "specgen", version)


@dataclass(frozen=True)
class SpecgenRunResult:
    """One release's inferred-vs-truth comparison."""

    version: str
    fidelity: TableFidelity
    report: InferenceReport
    truth_edges: int
    inferred_edges: int
    truth_executions: int
    inferred_executions: int
    truth_crashes: int
    inferred_crashes: int
    truth_bugs: tuple[str, ...]
    inferred_bugs: tuple[str, ...]

    @property
    def coverage_ratio(self) -> float:
        if not self.truth_edges:
            return 0.0
        return self.inferred_edges / self.truth_edges

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "fidelity": self.fidelity.to_dict(),
            "inference": self.report.to_dict(),
            "truth_edges": self.truth_edges,
            "inferred_edges": self.inferred_edges,
            "coverage_ratio": round(self.coverage_ratio, 6),
            "truth_executions": self.truth_executions,
            "inferred_executions": self.inferred_executions,
            "truth_crashes": self.truth_crashes,
            "inferred_crashes": self.inferred_crashes,
            "truth_bugs": list(self.truth_bugs),
            "inferred_bugs": list(self.inferred_bugs),
        }


@dataclass
class SpecgenCampaignResult:
    """The full multi-release evaluation."""

    seed: int
    kernel_seed: int
    size: str
    hours: float
    seed_corpus: int
    runs: list[SpecgenRunResult] = field(default_factory=list)

    def run_for(self, version: str) -> SpecgenRunResult:
        for run in self.runs:
            if run.version == version:
                return run
        raise KeyError(version)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "kernel_seed": self.kernel_seed,
            "size": self.size,
            "hours": self.hours,
            "seed_corpus": self.seed_corpus,
            "runs": [run.to_dict() for run in self.runs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _distinct_bugs(stats) -> tuple[str, ...]:
    return tuple(
        sorted({crash.bug_id for crash in stats.crashes if crash.bug_id})
    )


def run_specgen_campaign(
    versions: tuple[str, ...] | None = None,
    seed: int = 0,
    kernel_seed: int = 1,
    size: str = "small",
    hours: float = 0.5,
    seed_corpus: int = 15,
    observer=None,
) -> SpecgenCampaignResult:
    """Run the seeded inferred-vs-ground-truth evaluation (module doc)."""
    if versions is None:
        versions = KNOWN_VERSIONS
    result = SpecgenCampaignResult(
        seed=seed, kernel_seed=kernel_seed, size=size, hours=hours,
        seed_corpus=seed_corpus,
    )
    for version in versions:
        kernel = build_kernel(version, seed=kernel_seed, size=size)
        inferred, report = infer_specs(kernel, observer=observer)
        fidelity = diff_tables(
            inferred, build_standard_table(version), version=version
        )
        run_seed = specgen_run_seed(seed, version)
        config = fuzz_campaign_config(hours=hours, seed=seed, seed_corpus=seed_corpus)
        truth_stats = build_fuzz_loop(
            kernel, None, run_seed, config, baseline=True,
        ).run()
        inferred_stats = build_fuzz_loop(
            kernel_with_table(kernel, inferred), None, run_seed, config,
            baseline=True,
        ).run()
        run = SpecgenRunResult(
            version=version,
            fidelity=fidelity,
            report=report,
            truth_edges=truth_stats.final_edges,
            inferred_edges=inferred_stats.final_edges,
            truth_executions=truth_stats.executions,
            inferred_executions=inferred_stats.executions,
            truth_crashes=len(truth_stats.crashes),
            inferred_crashes=len(inferred_stats.crashes),
            truth_bugs=_distinct_bugs(truth_stats),
            inferred_bugs=_distinct_bugs(inferred_stats),
        )
        result.runs.append(run)
        if observer is not None:
            registry = observer.registry
            registry.gauge(f"specgen.coverage_ratio_{version}").set(
                run.coverage_ratio
            )
            registry.gauge(f"specgen.kind_accuracy_{version}").set(
                fidelity.kind_accuracy
            )
            registry.gauge(f"specgen.flag_recall_{version}").set(
                fidelity.flag_recall
            )
            registry.gauge(f"specgen.resource_recall_{version}").set(
                fidelity.resource_recall
            )
    return result
