"""Spec inference: derive syzlang descriptions from the kernel itself.

``repro.specgen`` is the no-ground-truth scenario axis: given only a
built synthetic kernel (handler CFGs, branch conditions, state effects),
recover a fuzzable :class:`~repro.syzlang.spec.SyscallTable`
(:mod:`.infer`), emit it as round-trippable syzlang text (:mod:`.emit`),
score it against the hand-written stdlib (:mod:`.diff`), and measure the
coverage/bug cost of fuzzing with it (:mod:`.campaign`).
"""

from repro.specgen.campaign import (
    SpecgenCampaignResult,
    SpecgenRunResult,
    kernel_with_table,
    run_specgen_campaign,
    specgen_run_seed,
)
from repro.specgen.diff import (
    TableFidelity,
    diff_tables,
    fidelity_json,
    resource_edges,
)
from repro.specgen.emit import parse_table, serialize_table
from repro.specgen.infer import (
    GENERIC_RESOURCE,
    InferenceReport,
    PRODUCER_LEXEMES,
    infer_specs,
    infer_table,
)

__all__ = [
    "GENERIC_RESOURCE",
    "InferenceReport",
    "PRODUCER_LEXEMES",
    "SpecgenCampaignResult",
    "SpecgenRunResult",
    "TableFidelity",
    "diff_tables",
    "fidelity_json",
    "infer_specs",
    "infer_table",
    "kernel_with_table",
    "parse_table",
    "resource_edges",
    "run_specgen_campaign",
    "serialize_table",
    "specgen_run_seed",
]
