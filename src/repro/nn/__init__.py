"""A minimal neural-network substrate on numpy.

The paper builds PMM on fairseq (Transformer encoder) and PyTorch
Geometric (GCN); neither is available offline, so this package provides
the pieces they supply: a reverse-mode autodiff tensor, standard layers
(Linear, Embedding, LayerNorm, multi-head attention, Transformer encoder
layers), weight initialisers, and the Adam/SGD optimizers.  Everything is
plain numpy — small, deterministic, and fast enough for the laptop-scale
models this reproduction trains.
"""

from repro.nn.tensor import Tensor, concat, scatter_add, stack
from repro.nn.modules import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    MultiHeadSelfAttention,
    Sequential,
    TransformerEncoderLayer,
)
from repro.nn.optim import SGD, Adam
from repro.nn.init import kaiming_uniform, normal_init, xavier_uniform

__all__ = [
    "Adam",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "MultiHeadSelfAttention",
    "SGD",
    "Sequential",
    "Tensor",
    "TransformerEncoderLayer",
    "concat",
    "kaiming_uniform",
    "normal_init",
    "scatter_add",
    "stack",
    "xavier_uniform",
]
